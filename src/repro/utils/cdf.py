"""Empirical CDF and rank-curve helpers used by the experiment harness.

The paper's Figures 1a and 1b plot per-session goodput against the *rank* of
the transport session (sessions sorted from worst to best goodput).  The
:func:`rank_curve` helper produces exactly that series; :class:`Cdf` is the
more conventional empirical-distribution view used by reports and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Cdf:
    """An empirical cumulative distribution over a set of samples."""

    values: tuple[float, ...]

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Cdf":
        """Build a CDF from an iterable of samples (sorted internally)."""
        return cls(values=tuple(sorted(samples)))

    def __len__(self) -> int:
        return len(self.values)

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile (0 <= q <= 1) using nearest-rank."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            raise ValueError("cannot take a quantile of an empty CDF")
        if q == 0.0:
            return self.values[0]
        index = max(0, min(len(self.values) - 1, int(round(q * len(self.values))) - 1))
        return self.values[index]

    def median(self) -> float:
        """Convenience accessor for the 0.5 quantile."""
        return self.quantile(0.5)

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self.values:
            raise ValueError("cannot take the mean of an empty CDF")
        return sum(self.values) / len(self.values)

    def fraction_at_or_below(self, threshold: float) -> float:
        """Return the empirical probability that a sample is <= ``threshold``."""
        if not self.values:
            raise ValueError("cannot evaluate an empty CDF")
        count = sum(1 for value in self.values if value <= threshold)
        return count / len(self.values)

    def points(self) -> list[tuple[float, float]]:
        """Return (value, cumulative probability) pairs suitable for plotting."""
        total = len(self.values)
        return [(value, (index + 1) / total) for index, value in enumerate(self.values)]


def rank_curve(samples: Sequence[float]) -> list[tuple[int, float]]:
    """Return (rank, value) pairs with samples sorted from worst to best.

    This matches the x-axis of the paper's Figures 1a/1b ("Rank of transport
    session"): rank 0 is the slowest session.
    """
    ordered = sorted(samples)
    return list(enumerate(ordered))


def confidence_interval_95(samples: Sequence[float]) -> tuple[float, float]:
    """Return (mean, half-width) of a 95% confidence interval.

    Uses the normal approximation (1.96 standard errors), which is what the
    paper's Figure 1c error bars represent across 5 repetitions.
    """
    n = len(samples)
    if n == 0:
        raise ValueError("cannot compute a confidence interval of no samples")
    mean = sum(samples) / n
    if n == 1:
        return mean, 0.0
    variance = sum((value - mean) ** 2 for value in samples) / (n - 1)
    std_error = (variance / n) ** 0.5
    return mean, 1.96 * std_error
