"""Units and conversions used across the simulator.

The simulator's canonical units are:

* time     -- seconds (floats)
* size     -- bytes (ints)
* rate     -- bits per second (floats)

All helpers in this module convert to and from those canonical units so that
experiment configuration can be written in natural units (``1 * GBPS``,
``4 * MEGABYTE``, ``10 * MICROSECOND``).
"""

from __future__ import annotations

BITS_PER_BYTE = 8

# Time units expressed in seconds.
SECOND = 1.0
MILLISECOND = 1e-3
MICROSECOND = 1e-6
NANOSECOND = 1e-9

# Sizes expressed in bytes.
KILOBYTE = 1_000
MEGABYTE = 1_000_000
GIGABYTE = 1_000_000_000

# Rates expressed in bits per second.
MBPS = 1e6
GBPS = 1e9


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a size in bytes to a size in bits."""
    return num_bytes * BITS_PER_BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Convert a size in bits to a size in bytes."""
    return num_bits / BITS_PER_BYTE


def serialization_delay(num_bytes: float, rate_bps: float) -> float:
    """Time (seconds) needed to serialise ``num_bytes`` onto a link.

    Args:
        num_bytes: payload size in bytes.
        rate_bps: link rate in bits per second.

    Raises:
        ValueError: if ``rate_bps`` is not strictly positive.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return bytes_to_bits(num_bytes) / rate_bps


def format_time(seconds: float) -> str:
    """Render a duration with an appropriate SI prefix (for logs/reports)."""
    if seconds == 0:
        return "0s"
    magnitude = abs(seconds)
    if magnitude >= 1:
        return f"{seconds:.3f}s"
    if magnitude >= MILLISECOND:
        return f"{seconds / MILLISECOND:.3f}ms"
    if magnitude >= MICROSECOND:
        return f"{seconds / MICROSECOND:.3f}us"
    return f"{seconds / NANOSECOND:.1f}ns"


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with an appropriate SI prefix."""
    if abs(num_bytes) >= GIGABYTE:
        return f"{num_bytes / GIGABYTE:.2f}GB"
    if abs(num_bytes) >= MEGABYTE:
        return f"{num_bytes / MEGABYTE:.2f}MB"
    if abs(num_bytes) >= KILOBYTE:
        return f"{num_bytes / KILOBYTE:.2f}KB"
    return f"{num_bytes:.0f}B"


def format_rate(rate_bps: float) -> str:
    """Render a rate with an appropriate SI prefix."""
    if abs(rate_bps) >= GBPS:
        return f"{rate_bps / GBPS:.3f}Gbps"
    if abs(rate_bps) >= MBPS:
        return f"{rate_bps / MBPS:.3f}Mbps"
    return f"{rate_bps:.0f}bps"
