"""Small cross-cutting utilities: units, CDF helpers and validation."""

from repro.utils.units import (
    BITS_PER_BYTE,
    GBPS,
    GIGABYTE,
    KILOBYTE,
    MBPS,
    MEGABYTE,
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_rate,
    format_time,
    serialization_delay,
)
from repro.utils.cdf import Cdf, rank_curve
from repro.utils.validation import check_non_negative, check_positive, check_probability

__all__ = [
    "BITS_PER_BYTE",
    "GBPS",
    "GIGABYTE",
    "KILOBYTE",
    "MBPS",
    "MEGABYTE",
    "MICROSECOND",
    "MILLISECOND",
    "NANOSECOND",
    "SECOND",
    "bits_to_bytes",
    "bytes_to_bits",
    "format_bytes",
    "format_rate",
    "format_time",
    "serialization_delay",
    "Cdf",
    "rank_curve",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
