"""Tiny argument-validation helpers shared by configuration objects."""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, otherwise raise ``ValueError``."""
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, otherwise raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Return ``value`` if it lies in [0, 1], otherwise raise ``ValueError``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value
