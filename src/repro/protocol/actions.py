"""Typed actions emitted by the protocol cores.

A core never touches a clock, a socket or an event heap.  Instead every
input event appends zero or more of these action records to an internal
buffer; the driver drains the buffer with
:meth:`~repro.protocol.actions.ActionEmitter.poll_actions` and applies each
action to its transport **in emission order**.  Order is part of the
contract: the sim driver reproduces the pre-refactor simulator schedules
byte-identically only because schedule/cancel/send side effects happen in
exactly the sequence the old monolithic sessions performed them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

#: ``SendPacket.kind`` values -- plain strings so the protocol package does
#: not depend on the simulator's packet model.
KIND_DATA = "data"
KIND_CONTROL = "control"


@dataclass(frozen=True)
class SendPacket:
    """Transmit one protocol packet.

    ``payload`` is one of the :mod:`repro.core.packets` dataclasses; the
    driver wraps it in its own framing (a sim ``Packet`` or a wire frame).
    Exactly one of ``dest`` / ``multicast_group`` is set.
    """

    payload: Any
    kind: str
    size_bytes: int
    dest: Optional[int] = None
    multicast_group: Optional[int] = None


@dataclass(frozen=True)
class SetTimer:
    """(Re)arm the named one-shot session timer ``delay_s`` from now."""

    name: str
    delay_s: float


@dataclass(frozen=True)
class StopTimer:
    """Disarm the named session timer (a no-op if it is not armed)."""

    name: str


@dataclass(frozen=True)
class EnqueuePull:
    """Add one pull toward ``target_sender`` to the host's shared pull pacer.

    The pull packet itself is built at *send* time via
    :meth:`~repro.protocol.receiver.ReceiverCore.build_pull`, so the block
    hint and congestion echo reflect the receiver's latest state.
    """

    session_id: int
    target_sender: int


@dataclass(frozen=True)
class CancelPulls:
    """Discard every pending pull of the session (used on completion)."""

    session_id: int


@dataclass(frozen=True)
class TransportFeedback:
    """Congestion-control inputs for the host-level rate controller.

    The receiver core does not own the TFRC controller (in the sim one
    controller per host paces all sessions); it reports what it observed and
    the driver feeds whatever controller is in force, in field order:
    packets, then the RTT sample, then the congestion signal.
    """

    packets: int = 1
    rtt_sample_s: Optional[float] = None
    congestion: bool = False
    now_s: float = 0.0


@dataclass(frozen=True)
class SessionCompleted:
    """The session reached its terminal state at ``time_s``.

    Emitted last: every packet/timer action of the completing transition
    precedes it, so a driver's completion callback observes fully applied
    state.
    """

    session_id: int
    time_s: float


Action = Any


class ActionEmitter:
    """Base class: an append-only action buffer drained by the driver."""

    def __init__(self) -> None:
        self._actions: List[Action] = []

    def _emit(self, action: Action) -> None:
        self._actions.append(action)

    def poll_actions(self) -> List[Action]:
        """Return and clear the buffered actions (oldest first)."""
        drained = self._actions
        self._actions = []
        return drained
