"""The transport-agnostic Polyraptor sender state machine.

A sender session pushes an initial window of encoding symbols at line rate
and afterwards emits exactly one new symbol per pull request ("pull
clocking").  Three shapes exist, all handled by this class:

* **unicast push** -- one receiver, symbols sent as unicast data packets;
* **multicast push** -- several receivers reached through a multicast group;
  the sender aggregates pulls and multicasts a new symbol only after every
  active receiver has pulled (stragglers can be detached, see
  :mod:`repro.core.straggler`);
* **fetch serving** -- the sender is one of N replica holders answering a
  receiver-initiated multi-source fetch; it serves the symbol-space partition
  assigned to it (``sender_index`` / ``num_senders``), so symbols from
  different senders never collide.

This core is pure: inputs arrive through :meth:`SenderCore.start`,
:meth:`SenderCore.on_pull`, :meth:`SenderCore.on_done` and
:meth:`SenderCore.on_timer` (each stamped with the driver's clock), and all
side effects leave as :mod:`~repro.protocol.actions`.  Two named timers
exist: ``"startup"`` (receiver-liveness probing with exponential backoff)
and ``"paced"`` (TFRC pacing of the initial window).  The paced timer is
deliberately *not* stopped on completion -- a pending expiry simply no-ops
-- which mirrors the historical simulator schedules exactly.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

from repro.core.config import PolyraptorConfig
from repro.core.packets import DoneAckPayload, DonePayload, PullPayload, SymbolPayload
from repro.core.straggler import StragglerPolicy
from repro.protocol.actions import (
    KIND_CONTROL,
    KIND_DATA,
    ActionEmitter,
    SendPacket,
    SessionCompleted,
    SetTimer,
    StopTimer,
)
from repro.rq.block import ObjectEncoder, partition_object
from repro.transport.tfrc import TfrcController


class SenderCore(ActionEmitter):
    """Sender-side protocol state for one Polyraptor session."""

    #: probes receivers that have never been heard from (exponential backoff)
    TIMER_STARTUP = "startup"
    #: paces the initial window at the TFRC-allowed rate
    TIMER_PACED = "paced"

    def __init__(
        self,
        config: PolyraptorConfig,
        session_id: int,
        object_bytes: int,
        receiver_host_ids: list[int],
        local_host: int,
        link_rate_bps: float,
        multicast_group: Optional[int] = None,
        sender_index: int = 0,
        num_senders: int = 1,
        object_data: Optional[bytes] = None,
        codec=None,
    ) -> None:
        super().__init__()
        if not receiver_host_ids:
            raise ValueError("a sender session needs at least one receiver")
        if num_senders < 1 or not 0 <= sender_index < num_senders:
            raise ValueError("invalid sender_index / num_senders")
        if multicast_group is not None and num_senders != 1:
            raise ValueError("multicast sessions have a single sender")

        self.config = config
        self.session_id = session_id
        self.local_host = local_host
        self.object_bytes = object_bytes
        self.receiver_host_ids = list(receiver_host_ids)
        self.multicast_group = multicast_group
        self.sender_index = sender_index
        self.num_senders = num_senders

        self.oti = partition_object(
            object_bytes, self.config.symbol_size_bytes, self.config.max_symbols_per_block
        )
        # Per-block sending state: remaining source ESIs of this sender's
        # partition, and the next repair ESI (repair ESIs are strided by the
        # number of senders so different senders never emit the same symbol).
        self._pending_source: dict[int, deque[int]] = {}
        self._next_repair_esi: dict[int, int] = {}
        for block in range(self.oti.num_source_blocks):
            k = self.oti.block_symbol_count(block)
            self._pending_source[block] = deque(
                esi for esi in range(k) if esi % num_senders == sender_index
            )
            self._next_repair_esi[block] = k + sender_index

        # Multicast aggregation state.
        self._active_receivers: set[int] = set(receiver_host_ids)
        self._done_receivers: set[int] = set()
        self._detached_receivers: set[int] = set()
        self._pull_credits: dict[int, int] = {r: 0 for r in receiver_host_ids}
        self._pulls_by_receiver: dict[int, int] = {r: 0 for r in receiver_host_ids}
        self._last_hint: dict[int, Optional[int]] = {r: None for r in receiver_host_ids}
        self._default_hint: Optional[int] = None
        self.straggler_policy = StragglerPolicy.from_config(self.config)
        #: latest per-receiver loss estimate echoed on pulls (gray detection)
        self._loss_estimates: dict[int, float] = {}
        #: per-stream emission counters stamped onto SymbolPayload.sequence:
        #: key None = the multicast stream, receiver id = its unicast stream
        self._sequence_streams: dict[Optional[int], int] = {}

        #: equation-based pacing of the initial window (pulls clock the rest)
        self.tfrc: Optional[TfrcController] = None
        if self.config.tfrc_pacing:
            self.tfrc = TfrcController(
                segment_bytes=self.config.symbol_packet_bytes,
                max_rate_bps=link_rate_bps,
            )
        self._paced_window: deque = deque()

        self._encoder: Optional[ObjectEncoder] = None
        if self.config.carry_payload:
            if object_data is None:
                raise ValueError("carry_payload mode requires the object bytes")
            if len(object_data) != object_bytes:
                raise ValueError("object_data length does not match object_bytes")
            self._encoder = ObjectEncoder(
                object_data,
                symbol_size=self.config.symbol_size_bytes,
                max_symbols_per_block=self.config.max_symbols_per_block,
                context=codec,
            )

        self.completed = False
        self.completion_time: Optional[float] = None
        self.symbols_sent = 0
        self.source_symbols_sent = 0
        self.repair_symbols_sent = 0
        self.pulls_received = 0
        self.multicast_rounds = 0
        self.detached_count = 0
        #: receivers detached because their echoed path-loss estimate crossed
        #: the gray threshold (subset of ``detached_count``)
        self.gray_detected = 0
        #: startup-stall recovery: a receiver that never gets a single
        #: symbol -- e.g. its (or this sender's) rack lost power the moment
        #: the session started -- does not even know the session exists, so
        #: nothing on its side can unblock it.  Probing is cancelled
        #: per-receiver: the timer stops only once every receiver has been
        #: heard from (a pull or a DONE), so a multicast session with one
        #: dark receiver keeps probing that receiver alone.
        self.startup_retries = 0
        self._heard_receivers: set[int] = set()
        #: whether the startup timer is logically armed (the core tracks this
        #: itself so probing decisions never have to ask the driver's clock)
        self._startup_armed = False

    # Public API ------------------------------------------------------------------

    @property
    def is_multicast(self) -> bool:
        """True if this session multicasts symbols through a group."""
        return self.multicast_group is not None

    def start(self, now: float) -> None:
        """Push the initial window of symbols at line rate.

        The window's (block, esi) sequence is chosen first, then payloads for
        all of it are produced per block through
        :meth:`~repro.rq.block.ObjectEncoder.symbol_block` -- one batched
        symbol-plane pass per block instead of a per-symbol encode call --
        and finally the packets are emitted in the original order.
        """
        window = self.config.initial_window_symbols
        if self.num_senders > 1 and self.config.divide_initial_window_among_senders:
            window = max(1, math.ceil(window / self.num_senders))
        picks = [self._next_symbol(None) for _ in range(window)]
        emissions = list(zip(picks, self._batch_payloads(picks)))
        if self.tfrc is None:
            for (block, esi), data in emissions:
                self._emit_symbol(block, esi, data=data)
        else:
            # TFRC pacing: the window leaves at the controller's allowed
            # rate (the line rate until congestion signals arrive) instead
            # of as one back-to-back burst into the NIC queue.
            self._paced_window.extend(emissions)
            self._emit_paced_window()
        if self.config.startup_retry_limit > 0:
            self._arm_startup(self.config.stall_timeout_s)

    def on_timer(self, name: str, now: float) -> None:
        """Handle the expiry of one of this session's named timers."""
        if name == self.TIMER_PACED:
            self._emit_paced_window()
        elif name == self.TIMER_STARTUP:
            self._startup_armed = False
            self._on_startup_stall(now)
        else:  # pragma: no cover - drivers only route the two known names
            raise ValueError(f"unknown sender timer {name!r}")

    def _emit_paced_window(self) -> None:
        """Emit the next initial-window symbol at the TFRC-allowed rate."""
        if self.completed or not self._paced_window:
            return
        (block, esi), data = self._paced_window.popleft()
        self._emit_symbol(block, esi, data=data)
        if self._paced_window:
            self._emit(SetTimer(self.TIMER_PACED, self.tfrc.send_interval_s()))

    def on_pull(self, pull: PullPayload, now: float) -> None:
        """Handle a pull request from a receiver."""
        # A pull proves *this* receiver learned of the session; probing
        # stops only once every receiver has been heard from.
        self._note_receiver_heard(pull.receiver_host)
        if self.completed:
            return
        self.pulls_received += 1
        receiver = pull.receiver_host
        self._loss_estimates[receiver] = pull.loss_estimate
        if self.tfrc is not None:
            self.tfrc.on_packet()
            if pull.congestion_echo > 0:
                self.tfrc.on_congestion(now)
        if receiver in self._done_receivers:
            return
        if not self.is_multicast:
            block, esi = self._next_symbol(pull.block_hint)
            self._emit_symbol(block, esi, unicast_to=receiver)
            return
        if receiver in self._detached_receivers:
            block, esi = self._next_symbol(pull.block_hint)
            self._emit_symbol(block, esi, unicast_to=receiver)
            return
        self._pulls_by_receiver[receiver] = self._pulls_by_receiver.get(receiver, 0) + 1
        self._pull_credits[receiver] = self._pull_credits.get(receiver, 0) + 1
        self._last_hint[receiver] = pull.block_hint
        self._run_multicast_rounds()
        self._detach_stragglers()

    def on_done(self, done: DonePayload, now: float) -> None:
        """Handle a receiver's DONE notification."""
        self._note_receiver_heard(done.receiver_host)
        receiver = done.receiver_host
        # Always acknowledge, duplicates included: the receiver retransmits
        # DONE until an ack arrives, and an earlier ack may itself have been
        # lost to the fabric.
        self._emit(
            SendPacket(
                payload=DoneAckPayload(
                    session_id=self.session_id, sender_host=self.local_host
                ),
                kind=KIND_CONTROL,
                size_bytes=self.config.control_bytes,
                dest=receiver,
            )
        )
        if receiver in self._done_receivers:
            return
        self._done_receivers.add(receiver)
        self._active_receivers.discard(receiver)
        self._detached_receivers.discard(receiver)
        self._pull_credits.pop(receiver, None)
        if self.is_multicast:
            # The finished receiver can no longer block aggregation.
            self._run_multicast_rounds()
        if set(self.receiver_host_ids) <= self._done_receivers:
            self._complete(now)

    # Symbol sequencing -------------------------------------------------------------

    def _next_symbol(self, block_hint: Optional[int]) -> tuple[int, int]:
        """Pick the next (block, esi) to emit, honouring the receiver's hint."""
        block = self._choose_block(block_hint)
        pending = self._pending_source[block]
        if pending:
            esi = pending.popleft()
        else:
            esi = self._next_repair_esi[block]
            self._next_repair_esi[block] += self.num_senders
        return block, esi

    def _choose_block(self, block_hint: Optional[int]) -> int:
        if block_hint is not None and 0 <= block_hint < self.oti.num_source_blocks:
            self._default_hint = block_hint
            return block_hint
        for block in range(self.oti.num_source_blocks):
            if self._pending_source[block]:
                return block
        if self._default_hint is not None:
            return self._default_hint
        return 0

    def _batch_payloads(self, picks: list[tuple[int, int]]) -> list[Optional[bytes]]:
        """Encode the payloads for a run of (block, esi) picks, batched per block.

        Returns one entry per pick, in pick order (``None`` everywhere in
        identity-tracking mode).  ``ObjectEncoder.symbol_block`` preserves the
        ESI order it is given, so per-block queues map straight back.
        """
        if self._encoder is None:
            return [None] * len(picks)
        esis_by_block: dict[int, list[int]] = {}
        for block, esi in picks:
            esis_by_block.setdefault(block, []).append(esi)
        encoded = {
            block: deque(self._encoder.symbol_block(block, esis))
            for block, esis in esis_by_block.items()
        }
        return [encoded[block].popleft().data for block, _ in picks]

    def _emit_symbol(self, block: int, esi: int, unicast_to: Optional[int] = None,
                     data: Optional[bytes] = None) -> None:
        if data is None and self._encoder is not None:
            data = self._encoder.symbol(block, esi).data
        k = self.oti.block_symbol_count(block)
        if unicast_to is None and self.is_multicast:
            destination = None
            group = self.multicast_group
        else:
            destination = unicast_to if unicast_to is not None else self.receiver_host_ids[0]
            group = None
        # One emission counter per stream (multicast vs each unicast leg):
        # receivers difference consecutive values to estimate path loss.
        stream = destination
        sequence = self._sequence_streams.get(stream, 0) + 1
        self._sequence_streams[stream] = sequence
        payload = SymbolPayload(
            session_id=self.session_id,
            sender_host=self.local_host,
            block_number=block,
            esi=esi,
            block_symbol_count=k,
            num_blocks=self.oti.num_source_blocks,
            object_bytes=self.object_bytes,
            data=data,
            sequence=sequence,
        )
        self._emit(
            SendPacket(
                payload=payload,
                kind=KIND_DATA,
                size_bytes=self.config.symbol_packet_bytes,
                dest=destination,
                multicast_group=group,
            )
        )
        self.symbols_sent += 1
        if esi < k:
            self.source_symbols_sent += 1
        else:
            self.repair_symbols_sent += 1

    # Multicast aggregation -----------------------------------------------------------

    def _aggregated_hint(self) -> Optional[int]:
        hints = [
            self._last_hint.get(receiver)
            for receiver in self._active_receivers
            if self._last_hint.get(receiver) is not None
        ]
        return min(hints) if hints else None

    def _run_multicast_rounds(self) -> None:
        """Multicast one symbol for every full round of pulls available."""
        if self.completed:
            return
        active = [r for r in self._active_receivers if r not in self._detached_receivers]
        if not active:
            return
        while all(self._pull_credits.get(receiver, 0) >= 1 for receiver in active):
            for receiver in active:
                self._pull_credits[receiver] -= 1
            block, esi = self._next_symbol(self._aggregated_hint())
            self._emit_symbol(block, esi)
            self.multicast_rounds += 1

    def _detach_stragglers(self) -> None:
        policy = self.straggler_policy
        if not (policy.enabled or policy.loss_detection):
            return
        attached = {
            r for r in self._active_receivers if r not in self._detached_receivers
        }
        stragglers = policy.find_stragglers(self._pulls_by_receiver, attached)
        lossy = policy.find_lossy(self._loss_estimates, attached) - stragglers
        self.gray_detected += len(lossy)
        # Iterate lag stragglers in set order (the historical behaviour, kept
        # so pre-existing straggler scenarios replay byte-identically), then
        # the gray-lossy receivers in sorted order.
        for receiver in list(stragglers) + sorted(lossy):
            self._detached_receivers.add(receiver)
            self.detached_count += 1
            # Serve any credits the detached receiver had accumulated as
            # unicast symbols.
            credits = self._pull_credits.get(receiver, 0)
            self._pull_credits[receiver] = 0
            for _ in range(credits):
                block, esi = self._next_symbol(self._last_hint.get(receiver))
                self._emit_symbol(block, esi, unicast_to=receiver)
        if stragglers or lossy:
            # Aggregation may now be unblocked for the remaining receivers.
            self._run_multicast_rounds()

    # Startup-stall recovery ------------------------------------------------------------

    def _arm_startup(self, delay_s: float) -> None:
        self._startup_armed = True
        self._emit(SetTimer(self.TIMER_STARTUP, delay_s))

    def _note_receiver_heard(self, receiver: int) -> None:
        """Stop startup probing once every receiver has proven it knows us."""
        if not self._startup_armed:
            return
        self._heard_receivers.add(receiver)
        if set(self.receiver_host_ids) <= (self._heard_receivers | self._done_receivers):
            self._startup_armed = False
            self._emit(StopTimer(self.TIMER_STARTUP))

    def _on_startup_stall(self, now: float) -> None:
        """Some receiver has never been heard from: its symbols all died.

        This is the sender-side twin of the receiver's stall timer, needed
        because that timer only exists once a receiver has *learned of* the
        session -- a sender that starts inside a dead rack (rack power
        fault) announces to nobody, and a receiver whose own rack was dark
        misses the whole initial window even while its group mates pull
        happily.  Re-probe each unheard receiver with one unicast symbol,
        backing off exponentially; probing stops per receiver as pulls or
        DONEs arrive, and the retry cap keeps the event heap finite when a
        receiver stays unreachable to the end of the run.
        """
        if self.completed:
            return
        targets = [
            r for r in self.receiver_host_ids
            if r not in self._heard_receivers and r not in self._done_receivers
        ]
        if not targets:
            return
        self.startup_retries += 1
        picks = [self._next_symbol(None) for _ in targets]
        payloads = self._batch_payloads(picks)
        for receiver, (block, esi), data in zip(targets, picks, payloads):
            self._emit_symbol(block, esi, unicast_to=receiver, data=data)
        if self.startup_retries < self.config.startup_retry_limit:
            self._arm_startup(
                self.config.stall_timeout_s * (2 ** self.startup_retries)
            )

    # Completion -----------------------------------------------------------------------

    def _complete(self, now: float) -> None:
        if self.completed:
            return
        self.completed = True
        self.completion_time = now
        self._startup_armed = False
        self._emit(StopTimer(self.TIMER_STARTUP))
        self._emit(SessionCompleted(self.session_id, now))
