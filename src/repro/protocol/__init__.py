"""Transport-agnostic Polyraptor protocol core.

The session state machines in this package are *pure*: events go in
(symbols, pulls, DONEs, timer expiries -- each stamped with the caller's
clock), and typed :mod:`~repro.protocol.actions` come out (packets to send,
timers to arm, pulls to enqueue).  Nothing in here imports the simulator or
any real transport, which is what lets the exact same decision logic run

* inside the discrete-event simulator (:mod:`repro.core` wraps each core in
  a thin sim-clock driver), and
* on a real wire (:mod:`repro.net` drives the cores from asyncio UDP
  endpoints).

The conformance suite under ``tests/protocol/`` replays identical scripted
event traces through both drivers and asserts the cores emitted identical
decision sequences.
"""

from repro.protocol.actions import (
    CancelPulls,
    EnqueuePull,
    SendPacket,
    SessionCompleted,
    SetTimer,
    StopTimer,
    TransportFeedback,
)
from repro.protocol.pacer import PacedPullQueue
from repro.protocol.receiver import ReceiverCore
from repro.protocol.sender import SenderCore

__all__ = [
    "CancelPulls",
    "EnqueuePull",
    "PacedPullQueue",
    "ReceiverCore",
    "SendPacket",
    "SenderCore",
    "SessionCompleted",
    "SetTimer",
    "StopTimer",
    "TransportFeedback",
]
