"""The transport-agnostic Polyraptor receiver state machine.

A receiver session:

* tracks, per source block, which encoding symbols have arrived (or actually
  feeds them to a RaptorQ decoder in payload mode);
* requests one pull for every **full or trimmed** symbol that arrives while
  the session is incomplete -- a trimmed header still tells the receiver
  that a symbol was sent (and lost), so the pull keeps the self-clocking
  loop running without ever re-requesting the specific lost symbol;
* declares a block complete once it holds all K source symbols, or any
  K + overhead distinct symbols otherwise;
* when every block is complete, sends DONE to every sender, cancels pending
  pulls, and reports completion.

For many-to-one (multi-source) sessions the receiver is the initiator: it
sends a REQUEST to each replica holder, then pulls from whichever sender's
symbols arrive -- a fast sender's symbols arrive more often, so it receives
more pulls, which is the paper's "natural load balancing" mechanism.

This core is pure: inputs arrive through :meth:`ReceiverCore.on_symbol`,
:meth:`ReceiverCore.on_done_ack` and :meth:`ReceiverCore.on_timer`, and all
side effects leave as :mod:`~repro.protocol.actions`.  Pulls are *deferred*:
the core emits :class:`~repro.protocol.actions.EnqueuePull` and the driver's
pacer calls :meth:`ReceiverCore.build_pull` back at send time, so the block
hint and congestion echo always reflect the latest state.  Two named timers
exist: ``"stall"`` (re-issue pulls when nothing arrives) and ``"done"``
(retransmit unacknowledged DONEs with exponential backoff).
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import PolyraptorConfig
from repro.core.packets import (
    DoneAckPayload,
    DonePayload,
    PullPayload,
    RequestPayload,
    SymbolPayload,
)
from repro.core.straggler import PathLossEstimator
from repro.protocol.actions import (
    KIND_CONTROL,
    ActionEmitter,
    CancelPulls,
    EnqueuePull,
    SendPacket,
    SessionCompleted,
    SetTimer,
    StopTimer,
    TransportFeedback,
)
from repro.rq.block import EncodedSymbol, ObjectDecoder, partition_object
from repro.rq.decoder import DecodeFailure


class ReceiverCore(ActionEmitter):
    """Receiver-side protocol state for one Polyraptor session."""

    #: re-issues pulls when nothing has arrived for a stall timeout
    TIMER_STALL = "stall"
    #: retransmits unacknowledged DONEs with exponential backoff
    TIMER_DONE = "done"

    def __init__(
        self,
        config: PolyraptorConfig,
        session_id: int,
        object_bytes: int,
        local_host: int,
        expected_senders: Optional[list[int]] = None,
        codec=None,
        now: float = 0.0,
    ) -> None:
        super().__init__()
        self.config = config
        self.session_id = session_id
        self.local_host = local_host
        self.object_bytes = object_bytes
        self.expected_senders = list(expected_senders) if expected_senders else []

        self.oti = partition_object(
            object_bytes, self.config.symbol_size_bytes, self.config.max_symbols_per_block
        )
        self._received: list[set[int]] = [set() for _ in range(self.oti.num_source_blocks)]
        self._complete_blocks: set[int] = set()
        self._known_senders: set[int] = set(self.expected_senders)
        self._stall_sender_cursor = 0
        self._pull_sequence = 0

        self._decoder: Optional[ObjectDecoder] = None
        if self.config.carry_payload:
            self._decoder = ObjectDecoder(self.oti, context=codec)
        self.received_data: Optional[bytes] = None

        self.completed = False
        self.completion_time: Optional[float] = None
        self.start_time = now
        self.symbols_received = 0
        self.trimmed_received = 0
        self.duplicate_symbols = 0
        self.stall_events = 0
        self.done_retries = 0
        self.ce_received = 0
        self._done_acked: set[int] = set()

        #: per-path loss state, keyed by (sender, stream) where stream is
        #: ``None`` for the sender's multicast emission stream and this
        #: host's id for symbols the sender unicast to us -- the two streams
        #: carry independent sequence counters.  The estimate echoed back on
        #: pulls is the one of the stream that delivered most recently.
        self._loss_estimators: dict[tuple[int, Optional[int]], PathLossEstimator] = {}
        self._last_stream: dict[int, Optional[int]] = {}
        #: congestion signals (CE marks + trims) seen per sender since the
        #: last pull we built toward that sender.
        self._congestion_since_pull: dict[int, int] = {}

        self._emit(SetTimer(self.TIMER_STALL, self.config.stall_timeout_s))

    # Public state -----------------------------------------------------------------

    @property
    def done_fully_acked(self) -> bool:
        """True once every known or expected sender has acknowledged our DONE.

        Before completion this is simply "no sender still owes an ack" --
        trivially True when no senders are known yet -- so callers should
        combine it with :attr:`completed`; a completed session uses it to
        decide whether DONE retransmissions can stop (and a client endpoint
        whether it may tear its socket down without orphaning the server).
        """
        senders = self._known_senders | set(self.expected_senders)
        return not (senders - self._done_acked)

    # Session initiation -----------------------------------------------------------

    def start_fetch(self) -> None:
        """Initiate a many-to-one fetch: send a REQUEST to every replica holder."""
        if not self.expected_senders:
            raise ValueError("a fetch session needs at least one sender")
        num_senders = len(self.expected_senders)
        for index, sender in enumerate(self.expected_senders):
            request = RequestPayload(
                session_id=self.session_id,
                receiver_host=self.local_host,
                object_bytes=self.object_bytes,
                sender_index=index,
                num_senders=num_senders,
            )
            self._emit(
                SendPacket(
                    payload=request,
                    kind=KIND_CONTROL,
                    size_bytes=self.config.control_bytes,
                    dest=sender,
                )
            )

    # Symbol handling ----------------------------------------------------------------

    def on_symbol(
        self,
        payload: SymbolPayload,
        trimmed: bool,
        ce: bool = False,
        multicast: bool = False,
        sent_at: float = 0.0,
        now: float = 0.0,
    ) -> None:
        """Process one arriving symbol packet (full or trimmed).

        ``ce`` is the packet's CE mark, ``multicast`` whether it travelled
        the sender's multicast stream (its sequence counter is separate from
        the unicast one), ``sent_at`` the sender-side emission time (0.0
        when unknown) used for RTT samples.
        """
        if self.completed:
            return
        self._known_senders.add(payload.sender_host)
        self._emit(SetTimer(self.TIMER_STALL, self.config.stall_timeout_s))
        missing = self._account_path(payload, trimmed=trimmed, ce=ce,
                                     multicast=multicast, sent_at=sent_at, now=now)

        if trimmed:
            # The payload was cut by a switch; the header alone still triggers
            # a pull -- the lost symbol itself is never re-requested.
            self.trimmed_received += 1
        else:
            self._record_symbol(payload)
            if self._session_complete():
                self._finish(now)
                return
        self._request_more(payload.sender_host)
        if self.config.pull_on_gap and missing > 0:
            # Real-network mode: a sequence gap means symbols vanished with
            # no trimmed header to keep the pull clock running, so replace
            # the lost arrivals' pulls directly (the sim's trimming fabric
            # never needs this; it is off by default there).
            for _ in range(min(missing, self.config.initial_window_symbols)):
                self._request_more(payload.sender_host)

    def _account_path(
        self,
        payload: SymbolPayload,
        trimmed: bool,
        ce: bool,
        multicast: bool,
        sent_at: float,
        now: float,
    ) -> int:
        """Fold one arrival into loss estimation, ECN echo state and TFRC.

        Pure bookkeeping plus one :class:`TransportFeedback` action for the
        driver's rate controller; returns the number of symbols this arrival
        newly exposed as missing (its sequence gap).
        """
        sender = payload.sender_host
        stream: Optional[int] = None if multicast else self.local_host
        estimator = self._loss_estimators.get((sender, stream))
        if estimator is None:
            estimator = PathLossEstimator(
                window_symbols=self.config.gray_window_symbols,
                ewma_weight=self.config.gray_ewma_weight,
            )
            self._loss_estimators[(sender, stream)] = estimator
        missing = estimator.on_symbol(payload.sequence)
        self._last_stream[sender] = stream
        if ce:
            self.ce_received += 1
        if ce or trimmed:
            self._congestion_since_pull[sender] = (
                self._congestion_since_pull.get(sender, 0) + 1
            )
        # Congestion signals only: a sequence gap under packet spray is
        # usually reordering, and non-congestive path loss is the
        # gray-detection side's job, not the rate controller's.
        self._emit(
            TransportFeedback(
                packets=1,
                rtt_sample_s=2.0 * (now - sent_at) if sent_at > 0.0 else None,
                congestion=ce or trimmed,
                now_s=now,
            )
        )
        return missing

    def path_loss_estimate(self, sender: int) -> float:
        """The EWMA loss estimate for the most recently used stream of a sender."""
        stream = self._last_stream.get(sender)
        if sender not in self._last_stream:
            return 0.0
        estimator = self._loss_estimators.get((sender, stream))
        return estimator.loss_estimate if estimator is not None else 0.0

    def path_loss_estimates(self) -> dict[int, float]:
        """Current per-sender loss estimates, in sorted sender order.

        One entry per sender that has delivered at least one symbol; the
        value is :meth:`path_loss_estimate` for that sender's most recent
        stream.  Used by telemetry and reporting.
        """
        return {
            sender: self.path_loss_estimate(sender)
            for sender in sorted(self._last_stream)
        }

    def _record_symbol(self, payload: SymbolPayload) -> None:
        block = payload.block_number
        if block in self._complete_blocks:
            self.duplicate_symbols += 1
            return
        received = self._received[block]
        if payload.esi in received:
            self.duplicate_symbols += 1
            return
        received.add(payload.esi)
        self.symbols_received += 1
        if self._decoder is not None and payload.data is not None:
            self._decoder.add_symbol(
                EncodedSymbol(block_number=block, esi=payload.esi, data=payload.data)
            )
        if self._block_complete(block):
            self._complete_blocks.add(block)

    def _block_complete(self, block: int) -> bool:
        k = self.oti.block_symbol_count(block)
        received = self._received[block]
        source_count = sum(1 for esi in received if esi < k)
        if source_count == k:
            return True
        return len(received) >= k + self.config.decode_overhead_symbols

    def _session_complete(self) -> bool:
        return len(self._complete_blocks) == self.oti.num_source_blocks

    # Pull generation -------------------------------------------------------------------

    def lowest_incomplete_block(self) -> Optional[int]:
        """The first block that still needs symbols (None when all complete)."""
        for block in range(self.oti.num_source_blocks):
            if block not in self._complete_blocks:
                return block
        return None

    def _request_more(self, target_sender: int) -> None:
        self._emit(EnqueuePull(self.session_id, target_sender))

    def build_pull(self, target_sender: int) -> Optional[PullPayload]:
        """Build one pull toward a sender, reflecting the state *right now*.

        Called back by the driver's pacer at send time (pulls are enqueued
        as deferred :class:`EnqueuePull` actions); returns ``None`` when the
        session completed in the meantime, in which case the pacer discards
        the slot.
        """
        if self.completed:
            return None
        self._pull_sequence += 1
        return PullPayload(
            session_id=self.session_id,
            receiver_host=self.local_host,
            pull_sequence=self._pull_sequence,
            block_hint=self.lowest_incomplete_block(),
            congestion_echo=self._congestion_since_pull.pop(target_sender, 0),
            loss_estimate=self.path_loss_estimate(target_sender),
        )

    # Stall recovery ---------------------------------------------------------------------

    def on_timer(self, name: str, now: float) -> None:
        """Handle the expiry of one of this session's named timers."""
        if name == self.TIMER_STALL:
            self._on_stall(now)
        elif name == self.TIMER_DONE:
            self._retry_done(now)
        else:  # pragma: no cover - drivers only route the two known names
            raise ValueError(f"unknown receiver timer {name!r}")

    def _on_stall(self, now: float) -> None:
        """Nothing arrived for a while: re-issue pulls so the session cannot deadlock."""
        if self.completed:
            return
        self.stall_events += 1
        senders = sorted(self._known_senders) or sorted(self.expected_senders)
        if senders:
            incomplete_blocks = [
                block
                for block in range(self.oti.num_source_blocks)
                if block not in self._complete_blocks
            ]
            pulls_to_issue = max(1, min(len(incomplete_blocks), 4))
            for _ in range(pulls_to_issue):
                target = senders[self._stall_sender_cursor % len(senders)]
                self._stall_sender_cursor += 1
                self._request_more(target)
        self._emit(SetTimer(self.TIMER_STALL, self.config.stall_timeout_s))

    # Completion --------------------------------------------------------------------------

    def _finish(self, now: float) -> None:
        if self.completed:
            return
        if self._decoder is not None:
            try:
                self.received_data = self._decoder.decode()
            except DecodeFailure:
                # Extremely rare: the collected overhead was not sufficient.
                # Keep the session open and pull a few more symbols.
                for block in list(self._complete_blocks):
                    if not self._decoder.block_decoder(block).is_decoded:
                        self._complete_blocks.discard(block)
                for sender in sorted(self._known_senders) or [0]:
                    self._request_more(sender)
                return
        self.completed = True
        self.completion_time = now
        self._emit(StopTimer(self.TIMER_STALL))
        self._emit(CancelPulls(self.session_id))
        self._broadcast_done()
        if self.config.done_retry_limit > 0:
            self._emit(SetTimer(self.TIMER_DONE, self.config.stall_timeout_s))
        self._emit(SessionCompleted(self.session_id, now))

    def _broadcast_done(self) -> None:
        """Send DONE to every sender that has not acknowledged one yet."""
        unacked = (self._known_senders | set(self.expected_senders)) - self._done_acked
        for sender in sorted(unacked):
            done = DonePayload(session_id=self.session_id, receiver_host=self.local_host)
            self._emit(
                SendPacket(
                    payload=done,
                    kind=KIND_CONTROL,
                    size_bytes=self.config.control_bytes,
                    dest=sender,
                )
            )

    def on_done_ack(self, ack: DoneAckPayload) -> None:
        """A sender confirmed our DONE; stop retrying once every sender has."""
        self._done_acked.add(ack.sender_host)
        if self.done_fully_acked:
            self._emit(StopTimer(self.TIMER_DONE))

    def _retry_done(self, now: float) -> None:
        """Re-send the unacknowledged DONE with exponential backoff.

        A DONE lost to the fabric (a fault-downed link, a trimming overflow)
        would leave the sender pull-clocked on a receiver that will never
        pull again.  Acks cancel the retries in the healthy case; the
        ``done_retry_limit`` cap keeps the event heap finite when a sender
        stays unreachable to the end of the run.
        """
        self.done_retries += 1
        self._broadcast_done()
        if self.done_retries < self.config.done_retry_limit:
            self._emit(
                SetTimer(
                    self.TIMER_DONE,
                    self.config.stall_timeout_s * (2 ** self.done_retries),
                )
            )
