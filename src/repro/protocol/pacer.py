"""The paced, session-fair pull queue (transport-agnostic half).

The paper, section 2: *"The data transport layer at each receiver has only
one pull queue shared by all sessions.  A pull request is added to this queue
upon receiving a full or trimmed symbol.  The receiver then paces pull
packets across all sessions, so that the aggregate data rate matches the
receiver's link capacity."*

The queue therefore:

* keeps one FIFO of pending pulls **per session** and serves sessions in
  round-robin order (so a single large session cannot starve others);
* emits at most one pull per *data-packet serialisation time* of the
  receiver's link, because each pull elicits one symbol-sized packet in
  return -- pacing pulls at that interval caps the aggregate arrival rate at
  the link capacity;
* sends the first pull of an idle period immediately (no pacing delay when
  the link has been idle).

This class is clock- and transport-agnostic: the owner injects ``schedule``
(arrange a callback ``delay`` seconds from now -- a sim event heap or an
asyncio loop) and ``send`` (actually transmit a built pull).  The sim wraps
it as :class:`repro.core.pull_queue.PullPacer`; the wire driver in
:mod:`repro.net` runs the identical code over ``loop.call_later``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.transport.tfrc import TfrcController

#: A deferred pull: a callable that builds the pull at send time (so the
#: block hint reflects the receiver's latest state); ``None`` means the
#: session completed meanwhile and the slot is discarded.
PullBuilder = Callable[[], Optional[Any]]


class PacedPullQueue:
    """One pull queue per receiving endpoint, shared by all of its sessions.

    With a :class:`~repro.transport.tfrc.TfrcController` attached
    (``self.tfrc``) the inter-pull gap stretches to the controller's allowed
    rate.  Since each pull elicits one symbol, pacing pulls *is* pacing the
    sender.  With no congestion signals the allowed rate is the line rate
    and the cadence is the base one-serialization-time.
    """

    def __init__(
        self,
        base_interval_s: float,
        schedule: Callable[[float, Callable[[], None]], Any],
        send: Callable[[Any], Any],
        tfrc: Optional[TfrcController] = None,
    ) -> None:
        self.pull_interval_s = base_interval_s
        self.tfrc = tfrc
        self._schedule = schedule
        self._send = send
        self._queues: dict[int, deque[PullBuilder]] = {}
        self._round_robin: deque[int] = deque()
        self._pacing = False
        self.pulls_sent = 0
        self.pulls_discarded = 0

    @property
    def pending_pulls(self) -> int:
        """Number of pulls waiting to be sent across all sessions."""
        return sum(len(queue) for queue in self._queues.values())

    def pending_for_session(self, session_id: int) -> int:
        """Number of pulls waiting for one session."""
        queue = self._queues.get(session_id)
        return len(queue) if queue else 0

    def enqueue(self, session_id: int, builder: PullBuilder) -> None:
        """Add one pull for a session; starts the pacer if it was idle."""
        queue = self._queues.get(session_id)
        if queue is None:
            queue = deque()
            self._queues[session_id] = queue
        if not queue and session_id not in self._round_robin:
            self._round_robin.append(session_id)
        elif not queue:
            # Session already in the round-robin ring with an empty queue
            # (possible when pulls were cancelled); nothing to do.
            pass
        queue.append(builder)
        if not self._pacing:
            self._pacing = True
            self._send_next()

    def cancel_session(self, session_id: int) -> None:
        """Discard every pending pull of a session (used when it completes)."""
        queue = self._queues.pop(session_id, None)
        if queue:
            self.pulls_discarded += len(queue)
        try:
            self._round_robin.remove(session_id)
        except ValueError:
            pass

    def _next_session(self) -> Optional[int]:
        for _ in range(len(self._round_robin)):
            session_id = self._round_robin[0]
            self._round_robin.rotate(-1)
            queue = self._queues.get(session_id)
            if queue:
                return session_id
        return None

    def _send_next(self) -> None:
        session_id = self._next_session()
        if session_id is None:
            self._pacing = False
            return
        builder = self._queues[session_id].popleft()
        pull = builder()
        if pull is not None:
            self._send(pull)
            self.pulls_sent += 1
        else:
            self.pulls_discarded += 1
        # Pace the next pull one data-packet time later (stretched to the
        # TFRC-allowed rate when rate control is on), even if the builder
        # declined to send (its slot is spent either way).
        self._schedule(self.current_interval_s(), self._send_next)

    def current_interval_s(self) -> float:
        """The inter-pull gap in force right now."""
        if self.tfrc is None:
            return self.pull_interval_s
        return max(self.pull_interval_s, self.tfrc.send_interval_s())
