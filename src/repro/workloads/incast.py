"""The Incast workload: synchronised short flows to a single receiver.

Figure 1c of the paper: an aggregator requests data from an increasing number
of workers; every worker answers at the same instant with a short response
(256 KB or 70 KB).  TCP suffers goodput collapse as the worker count grows;
Polyraptor's trimming plus rateless symbols eliminate the collapse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.network.topology import Topology
from repro.workloads.spec import TransferKind, TransferSpec


@dataclass(frozen=True)
class IncastScenario:
    """One Incast episode: ``num_senders`` workers answering one aggregator."""

    num_senders: int
    response_bytes: int
    aggregator: str
    senders: tuple[str, ...]

    @property
    def total_bytes(self) -> int:
        """Total bytes converging on the aggregator."""
        return self.num_senders * self.response_bytes


def incast_transfers(
    topology: Topology,
    num_senders: int,
    response_bytes: int,
    rng: random.Random,
    aggregator: str | None = None,
    start_time: float = 0.0,
    first_transfer_id: int = 0,
    label: str = "incast",
) -> tuple[IncastScenario, list[TransferSpec]]:
    """Build one synchronised Incast episode.

    The aggregator is chosen at random (or given); the senders are drawn at
    random from the remaining hosts.  Each worker's response is a separate
    unicast transfer starting at the same instant.
    """
    if num_senders <= 0:
        raise ValueError("num_senders must be positive")
    if response_bytes <= 0:
        raise ValueError("response_bytes must be positive")
    hosts = topology.hosts
    if aggregator is None:
        aggregator = rng.choice(hosts)
    candidates = [host for host in hosts if host != aggregator]
    if len(candidates) < num_senders:
        raise ValueError(
            f"topology has only {len(candidates)} candidate senders, need {num_senders}"
        )
    senders = tuple(rng.sample(candidates, num_senders))
    transfers = [
        TransferSpec(
            transfer_id=first_transfer_id + index,
            kind=TransferKind.UNICAST,
            client=sender,
            peers=(aggregator,),
            size_bytes=response_bytes,
            start_time=start_time,
            label=label,
        )
        for index, sender in enumerate(senders)
    ]
    scenario = IncastScenario(
        num_senders=num_senders,
        response_bytes=response_bytes,
        aggregator=aggregator,
        senders=senders,
    )
    return scenario, transfers
