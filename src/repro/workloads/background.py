"""Background traffic.

The paper's evaluation offers "20% of the sessions [as] background traffic":
plain unicast transfers between permutation pairs that share the fabric with
the storage sessions under study but are excluded from the reported results.
"""

from __future__ import annotations

import random

from repro.network.topology import Topology
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.spec import TransferKind, TransferSpec
from repro.workloads.traffic_matrix import repeated_permutation_pairs


def background_transfers(
    topology: Topology,
    num_transfers: int,
    object_bytes: int,
    arrival_rate_per_second: float,
    rng: random.Random,
    first_transfer_id: int = 0,
    label: str = "background",
) -> list[TransferSpec]:
    """Generate unicast background transfers between permutation pairs."""
    if num_transfers <= 0:
        return []
    if object_bytes <= 0:
        raise ValueError("object_bytes must be positive")
    arrivals = PoissonArrivals(arrival_rate_per_second).times(num_transfers, rng)
    pairs = repeated_permutation_pairs(topology.hosts, num_transfers, rng)
    return [
        TransferSpec(
            transfer_id=first_transfer_id + index,
            kind=TransferKind.UNICAST,
            client=src,
            peers=(dst,),
            size_bytes=object_bytes,
            start_time=arrivals[index],
            label=label,
            is_background=True,
        )
        for index, (src, dst) in enumerate(pairs)
    ]
