"""Permutation traffic matrices.

"Session (flow) scheduling follows a permutation traffic matrix": every host
is the source of exactly one session and the destination of exactly one
session per permutation round, and no host talks to itself.
"""

from __future__ import annotations

import random
from typing import Sequence


def permutation_pairs(hosts: Sequence[str], rng: random.Random) -> list[tuple[str, str]]:
    """Return a random derangement of ``hosts`` as (source, destination) pairs.

    Every host appears exactly once as a source and once as a destination and
    never maps to itself.
    """
    if len(hosts) < 2:
        raise ValueError("a permutation traffic matrix needs at least two hosts")
    sources = list(hosts)
    for _ in range(1000):
        destinations = list(hosts)
        rng.shuffle(destinations)
        if all(src != dst for src, dst in zip(sources, destinations)):
            return list(zip(sources, destinations))
    # Fall back to a cyclic shift, which is always a valid derangement.
    shifted = sources[1:] + sources[:1]
    return list(zip(sources, shifted))


def repeated_permutation_pairs(
    hosts: Sequence[str], count: int, rng: random.Random
) -> list[tuple[str, str]]:
    """Return ``count`` (source, destination) pairs drawn from successive permutations.

    Each block of ``len(hosts)`` pairs is one fresh permutation round, so over
    time every host sources and sinks the same number of transfers.
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    pairs: list[tuple[str, str]] = []
    while len(pairs) < count:
        pairs.extend(permutation_pairs(hosts, rng))
    return pairs[:count]
