"""Protocol-independent transfer descriptions."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TransferKind(str, Enum):
    """Shape of a transfer."""

    #: one-to-one transfer (also used for background traffic)
    UNICAST = "unicast"
    #: one-to-many replication (client pushes the object to every peer)
    REPLICATE = "replicate"
    #: many-to-one fetch (client pulls the object that every peer stores)
    FETCH = "fetch"


@dataclass(frozen=True)
class TransferSpec:
    """One application-level transfer to be offered to a transport.

    Attributes:
        transfer_id: unique id (also used as session/flow id by the runner).
        kind: unicast, replicate (one-to-many) or fetch (many-to-one).
        client: host *name* of the initiator (the sender for unicast and
            replicate, the receiver for fetch).
        peers: host names of the other endpoints (one for unicast, the
            replica servers otherwise).
        size_bytes: application bytes of the object being moved.
        start_time: simulation time at which the transfer is initiated.
        label: free-form tag used to group results ("foreground",
            "background", "incast", ...).
        is_background: convenience flag for filtering results.
    """

    transfer_id: int
    kind: TransferKind
    client: str
    peers: tuple[str, ...]
    size_bytes: int
    start_time: float
    label: str = "foreground"
    is_background: bool = False
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.start_time < 0:
            raise ValueError("start_time cannot be negative")
        if not self.peers:
            raise ValueError("a transfer needs at least one peer")
        if self.client in self.peers:
            raise ValueError("the client cannot be its own peer")
        if self.kind is TransferKind.UNICAST and len(self.peers) != 1:
            raise ValueError("unicast transfers have exactly one peer")

    @property
    def num_peers(self) -> int:
        """Number of peer endpoints (replicas/senders)."""
        return len(self.peers)
