"""Arrival processes for transfer start times."""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class PoissonArrivals:
    """A Poisson arrival process with a given rate (transfers per second).

    The paper's evaluation uses "arrival times follow a Poisson process with
    lambda = 2560" for 10,000 sessions on the 250-host FatTree.
    """

    rate_per_second: float

    def __post_init__(self) -> None:
        if self.rate_per_second <= 0:
            raise ValueError("rate must be positive")

    def times(self, count: int, rng: random.Random, start: float = 0.0) -> list[float]:
        """Return ``count`` absolute arrival times starting after ``start``."""
        if count < 0:
            raise ValueError("count cannot be negative")
        times: list[float] = []
        current = start
        for _ in range(count):
            current += rng.expovariate(self.rate_per_second)
            times.append(current)
        return times


@dataclass(frozen=True)
class UniformArrivals:
    """Evenly spaced arrivals over a fixed interval (useful for tests)."""

    interval_s: float

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval must be positive")

    def times(self, count: int, rng: random.Random, start: float = 0.0) -> list[float]:
        """Return ``count`` arrival times spaced ``interval_s`` apart."""
        del rng  # deterministic; signature matches PoissonArrivals
        return [start + (index + 1) * self.interval_s for index in range(count)]


def synchronised_arrivals(count: int, start: float = 0.0) -> list[float]:
    """All transfers start at the same instant (the Incast pattern)."""
    if count < 0:
        raise ValueError("count cannot be negative")
    return [start] * count
