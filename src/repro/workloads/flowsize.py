"""Flow-size distributions.

The paper uses fixed 4 MB sessions; the extra distributions here support the
"different workloads" direction its discussion section mentions (and the
ablation benchmarks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FixedSize:
    """Every transfer has the same size."""

    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size must be positive")

    def sample(self, rng: random.Random) -> int:
        """Return the (fixed) size."""
        del rng
        return self.size_bytes


@dataclass(frozen=True)
class UniformSize:
    """Sizes drawn uniformly from [min_bytes, max_bytes]."""

    min_bytes: int
    max_bytes: int

    def __post_init__(self) -> None:
        if self.min_bytes <= 0 or self.max_bytes < self.min_bytes:
            raise ValueError("require 0 < min_bytes <= max_bytes")

    def sample(self, rng: random.Random) -> int:
        """Return one uniformly distributed size."""
        return rng.randint(self.min_bytes, self.max_bytes)


@dataclass(frozen=True)
class ParetoSize:
    """A bounded Pareto distribution: many small transfers, a heavy tail."""

    min_bytes: int
    max_bytes: int
    shape: float = 1.2

    def __post_init__(self) -> None:
        if self.min_bytes <= 0 or self.max_bytes < self.min_bytes:
            raise ValueError("require 0 < min_bytes <= max_bytes")
        if self.shape <= 0:
            raise ValueError("shape must be positive")

    def sample(self, rng: random.Random) -> int:
        """Return one bounded-Pareto distributed size."""
        u = rng.random()
        low, high, alpha = self.min_bytes, self.max_bytes, self.shape
        numerator = u * high ** alpha - u * low ** alpha - high ** alpha
        value = (-numerator / (low ** alpha * high ** alpha)) ** (-1.0 / alpha)
        return int(min(max(value, low), high))
