"""Distributed-storage workloads: replication (one-to-many) and fetch (many-to-one).

Figure 1a of the paper simulates "a distributed storage scenario with 1 and 3
replicas.  The three replica servers are randomly selected outside the
client's rack."  Figure 1b is the mirror image: "a client fetches data from 1
and 3 replica servers at the same time."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.network.topology import Topology
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.spec import TransferKind, TransferSpec
from repro.workloads.traffic_matrix import repeated_permutation_pairs


def replica_placement(
    topology: Topology,
    client: str,
    num_replicas: int,
    rng: random.Random,
) -> list[str]:
    """Pick ``num_replicas`` distinct hosts outside the client's rack."""
    if num_replicas <= 0:
        raise ValueError("num_replicas must be positive")
    same_rack = set(topology.hosts_in_same_rack(client))
    candidates = [host for host in topology.hosts if host not in same_rack and host != client]
    if len(candidates) < num_replicas:
        raise ValueError(
            f"not enough hosts outside {client}'s rack for {num_replicas} replicas"
        )
    return rng.sample(candidates, num_replicas)


@dataclass(frozen=True)
class StorageWorkload:
    """Generator of storage transfers following the paper's methodology.

    Attributes:
        kind: REPLICATE for Figure 1a, FETCH for Figure 1b.
        num_replicas: replicas per transfer (1 or 3 in the paper).
        object_bytes: object size (4 MB in the paper).
        arrival_rate_per_second: Poisson arrival rate (lambda; 2560 in the paper).
    """

    kind: TransferKind
    num_replicas: int
    object_bytes: int
    arrival_rate_per_second: float

    def __post_init__(self) -> None:
        if self.kind not in (TransferKind.REPLICATE, TransferKind.FETCH):
            raise ValueError("StorageWorkload only generates replicate/fetch transfers")
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if self.object_bytes <= 0:
            raise ValueError("object_bytes must be positive")
        if self.arrival_rate_per_second <= 0:
            raise ValueError("arrival rate must be positive")

    def generate(
        self,
        topology: Topology,
        num_transfers: int,
        rng: random.Random,
        first_transfer_id: int = 0,
        label: str = "foreground",
    ) -> list[TransferSpec]:
        """Generate ``num_transfers`` storage transfers.

        Clients are drawn from successive permutation rounds over all hosts
        (the paper's permutation traffic matrix); replica servers are chosen
        uniformly outside each client's rack; arrival times follow the Poisson
        process.
        """
        if num_transfers <= 0:
            return []
        arrivals = PoissonArrivals(self.arrival_rate_per_second).times(num_transfers, rng)
        clients = [
            src for src, _ in repeated_permutation_pairs(topology.hosts, num_transfers, rng)
        ]
        transfers = []
        for index in range(num_transfers):
            client = clients[index]
            replicas = replica_placement(topology, client, self.num_replicas, rng)
            transfers.append(
                TransferSpec(
                    transfer_id=first_transfer_id + index,
                    kind=self.kind,
                    client=client,
                    peers=tuple(replicas),
                    size_bytes=self.object_bytes,
                    start_time=arrivals[index],
                    label=label,
                )
            )
        return transfers


def storage_transfer_summary(transfers: Sequence[TransferSpec]) -> dict[str, float]:
    """Small helper used by reports and tests: totals of a generated workload."""
    if not transfers:
        return {"count": 0, "total_bytes": 0, "duration": 0.0}
    return {
        "count": len(transfers),
        "total_bytes": sum(spec.size_bytes for spec in transfers),
        "duration": max(spec.start_time for spec in transfers)
        - min(spec.start_time for spec in transfers),
    }
