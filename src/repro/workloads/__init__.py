"""Workload generators for the paper's evaluation scenarios.

Every generator produces :class:`~repro.workloads.spec.TransferSpec` objects:
plain descriptions (who, to/from whom, how many bytes, when) that the
experiment runner turns into Polyraptor sessions or TCP flows.  Keeping the
workload independent of the protocol under test is what makes the RQ-vs-TCP
comparison apples-to-apples: both protocols are offered the exact same
transfers.
"""

from repro.workloads.arrivals import PoissonArrivals, UniformArrivals, synchronised_arrivals
from repro.workloads.background import background_transfers
from repro.workloads.flowsize import FixedSize, ParetoSize, UniformSize
from repro.workloads.incast import IncastScenario, incast_transfers
from repro.workloads.spec import TransferKind, TransferSpec
from repro.workloads.storage import StorageWorkload, replica_placement
from repro.workloads.traffic_matrix import permutation_pairs

__all__ = [
    "TransferSpec",
    "TransferKind",
    "PoissonArrivals",
    "UniformArrivals",
    "synchronised_arrivals",
    "FixedSize",
    "UniformSize",
    "ParetoSize",
    "permutation_pairs",
    "replica_placement",
    "StorageWorkload",
    "IncastScenario",
    "incast_transfers",
    "background_transfers",
]
