"""Command-line interface: regenerate any figure or ablation from a terminal.

Usage (``python -m repro`` and ``python -m repro.cli`` are equivalent)::

    python -m repro figure1a
    python -m repro figure1a --seeds 5 --jobs 4     # sharded multi-seed sweep
    python -m repro figure1c --senders 1 2 4 8 12 --seeds 3
    python -m repro ablations
    python -m repro hotspot
    python -m repro mix
    python -m repro resilience --intensities 0 0.5 1.0
    python -m repro correlated --srlg-sizes 1 3 --gray-loss 0.01 0.05
    python -m repro incast --fanins 4 8 15 --response-kb 64
    python -m repro all --fattree-k 4 --sessions 24

Each command prints the same text table the corresponding benchmark produces,
followed by the merged RQ plan-cache counters for the coded series.
``--jobs N`` shards a sweep's independent runs over N worker processes
(:mod:`repro.experiments.parallel`); ``--jobs auto`` uses one worker per CPU
core.  The output is byte-identical for every jobs value, only faster on
multi-core machines.  ``--progress`` logs one stderr line per finished run,
and ``--plan-cache`` persists factorised elimination plans across
invocations (default file under ``~/.cache/repro/``, keyed by package
version).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Sequence

from repro.core.config import PolyraptorConfig
from repro.experiments.ablations import (
    initial_window_ablation,
    rq_overhead_ablation,
    spraying_ablation,
    trimming_ablation,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1a import run_figure1a
from repro.experiments.figure1b import run_figure1b
from repro.experiments.figure1c import run_figure1c
from repro.experiments.hotspot import format_hotspot, run_hotspot_experiment
from repro.experiments.parallel import (
    clear_telemetry,
    collected_telemetry,
    default_plan_cache_path,
    log_progress,
    resolve_jobs,
    set_chunk_size,
    set_plan_cache_path,
    set_progress_logger,
    set_transport,
)
from repro.experiments.correlated import run_correlated
from repro.experiments.incast import run_incast
from repro.experiments.report import (
    format_ablation,
    format_codec_stats,
    format_correlated,
    format_figure1c,
    format_incast,
    format_overhead,
    format_rank_figure,
    format_resilience,
    format_trace,
)
from repro.experiments.resilience import run_resilience
from repro.experiments.workload_mix import format_workload_mix, run_workload_mix
from repro.obs import (
    TelemetryConfig,
    read_telemetry_jsonl,
    write_telemetry_csv,
    write_telemetry_jsonl,
)
from repro.rq.kernels import available_kernels, registered_kernels
from repro.utils.units import KILOBYTE


def _telemetry_config(args: argparse.Namespace) -> TelemetryConfig | None:
    """The run telemetry requested on the command line, or ``None`` (off)."""
    if getattr(args, "telemetry", None) is None:
        return None
    return TelemetryConfig(
        sample_period_s=args.telemetry_period_ms / 1e3,
        max_samples=args.telemetry_samples,
    )


def _build_config(args: argparse.Namespace) -> ExperimentConfig:
    polyraptor = PolyraptorConfig(codec_kernel=getattr(args, "kernel", "auto"))
    telemetry = _telemetry_config(args)
    if getattr(args, "paper_scale", False):
        # The k=10 250-host preset; size/load flags are superseded, while
        # seed, time cap, codec and telemetry knobs still apply.
        return replace(
            ExperimentConfig.paper_fabric(),
            seed=args.seed,
            max_sim_time_s=args.max_sim_time,
            polyraptor=polyraptor,
            telemetry=telemetry,
        )
    return ExperimentConfig(
        fattree_k=args.fattree_k,
        num_foreground_transfers=args.sessions,
        object_bytes=args.object_kb * KILOBYTE,
        offered_load=args.load,
        seed=args.seed,
        max_sim_time_s=args.max_sim_time,
        polyraptor=polyraptor,
        telemetry=telemetry,
    )


def _jobs_type(value: str) -> int:
    try:
        return resolve_jobs(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs must be a positive integer or 'auto', got {value!r}"
        )


def _kernel_type(value: str) -> str:
    """Validate --kernel at parse time, including platform availability.

    An explicitly requested kernel that cannot run here (e.g. ``numba``
    without numba installed) must fail before any simulation starts -- in a
    sharded sweep the TCP baselines would otherwise complete and the first
    Polyraptor job die with a worker traceback.
    """
    if value == "auto" or value in available_kernels():
        return value
    if value in registered_kernels():
        raise argparse.ArgumentTypeError(
            f"kernel {value!r} is not available on this platform "
            f"(available: {', '.join(['auto'] + available_kernels())})"
        )
    raise argparse.ArgumentTypeError(
        f"unknown kernel {value!r} (choose from: "
        f"{', '.join(['auto'] + registered_kernels())})"
    )


def _intensity_type(value: str) -> float:
    try:
        intensity = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"intensity must be a number, got {value!r}")
    if not 0.0 <= intensity <= 1.0:
        raise argparse.ArgumentTypeError(
            f"intensity must be a fraction in [0, 1], got {value}"
        )
    return intensity


def _gray_loss_type(value: str) -> float:
    try:
        rate = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"gray-loss rate must be a number, got {value!r}")
    if not 0.0 < rate <= 1.0:
        raise argparse.ArgumentTypeError(
            f"gray-loss rate must be a probability in (0, 1], got {value}"
        )
    return rate


def _srlg_size_type(value: str) -> int:
    try:
        size = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"SRLG size must be an integer, got {value!r}")
    if size < 1:
        raise argparse.ArgumentTypeError(f"SRLG size must be at least 1, got {value}")
    return size


def _fanin_type(value: str) -> int:
    try:
        fanin = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"fan-in must be an integer, got {value!r}")
    if fanin < 1:
        raise argparse.ArgumentTypeError(f"fan-in must be at least 1, got {value}")
    return fanin


def _delay_ms_type(value: str) -> float:
    try:
        delay = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"delay must be a number (ms), got {value!r}")
    if delay < 0:
        raise argparse.ArgumentTypeError(f"delay cannot be negative, got {value}")
    return delay


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fattree-k", type=int, default=4,
                        help="fat-tree arity (k=10 is the paper's 250-host fabric)")
    parser.add_argument("--sessions", type=int, default=24,
                        help="foreground sessions per series")
    parser.add_argument("--object-kb", type=int, default=128,
                        help="object size in kilobytes (paper: 4096)")
    parser.add_argument("--load", type=float, default=0.15,
                        help="offered load as a fraction of host link rate")
    parser.add_argument("--seed", type=int, default=1, help="base random seed")
    parser.add_argument("--max-sim-time", type=float, default=30.0,
                        help="simulation-time cap per run (seconds)")
    parser.add_argument("--jobs", type=_jobs_type, default=1, metavar="N|auto",
                        help="worker processes to shard independent runs across; "
                             "'auto' uses one per CPU core (results are identical "
                             "for any value)")
    parser.add_argument("--progress", action="store_true",
                        help="log one stderr line per finished run")
    parser.add_argument("--plan-cache", nargs="?", const="auto", default=None,
                        metavar="PATH",
                        help="persist/reload factorised elimination plans across "
                             "invocations; without PATH, a per-package-version file "
                             "under ~/.cache/repro/ is used")
    parser.add_argument("--shm", action=argparse.BooleanOptionalAction, default=None,
                        help="ship sharded payloads through shared memory "
                             "(--no-shm forces plain pickle over the pipe); "
                             "default: shared memory when the platform supports "
                             "it -- results are identical either way")
    parser.add_argument("--chunk", type=int, default=None, metavar="N",
                        help="runs per dispatched batch in sharded sweeps "
                             "(default: ~4 batches per worker; affects "
                             "scheduling only, never results)")
    parser.add_argument("--kernel", default="auto", type=_kernel_type,
                        metavar="{auto,%s}" % ",".join(registered_kernels()),
                        help="GF(256) kernel for codec linear algebra; 'auto' "
                             "honours REPRO_GF_KERNEL then picks the best "
                             "available (numba when importable, else blocked). "
                             "Workers of a sharded sweep inherit this choice. "
                             "Results are byte-identical for every kernel.")
    parser.add_argument("--paper-scale", action="store_true",
                        help="run on the paper's k=10, 250-host fabric preset "
                             "(100 sessions, offered load 0.33; supersedes "
                             "--fattree-k/--sessions/--object-kb/--load); combine "
                             "with --seeds 5 for the paper's methodology")
    parser.add_argument("--telemetry", nargs="?", const="auto", default=None,
                        metavar="PATH",
                        help="record seeded time-series telemetry (queue depths, "
                             "link utilisation, TFRC rates, path loss, cwnd) for "
                             "every run and write it to PATH after the tables "
                             "(JSONL, or CSV when PATH ends in .csv; default "
                             "telemetry.jsonl).  Identical for every --jobs "
                             "value; render with 'repro trace PATH'")
    parser.add_argument("--telemetry-period-ms", type=float, default=10.0,
                        metavar="MS",
                        help="telemetry sampling cadence in simulated "
                             "milliseconds (default 10)")
    parser.add_argument("--telemetry-samples", type=int, default=512, metavar="N",
                        help="ring-buffer bound per telemetry series; oldest "
                             "samples drop off (counted) beyond this")


def _seeds(args: argparse.Namespace, default: int = 1) -> int:
    return args.seeds if args.seeds is not None else default


def _cmd_figure1a(args: argparse.Namespace) -> str:
    result = run_figure1a(_build_config(args), num_seeds=_seeds(args), jobs=args.jobs)
    return (format_rank_figure(result, "Figure 1a -- storage replication")
            + "\n\n" + format_codec_stats(result.codec_stats))


def _cmd_figure1b(args: argparse.Namespace) -> str:
    result = run_figure1b(_build_config(args), num_seeds=_seeds(args), jobs=args.jobs)
    return (format_rank_figure(result, "Figure 1b -- multi-source fetch")
            + "\n\n" + format_codec_stats(result.codec_stats))


def _cmd_figure1c(args: argparse.Namespace) -> str:
    result = run_figure1c(
        _build_config(args),
        sender_counts=tuple(args.senders),
        response_sizes=tuple(size * KILOBYTE for size in args.response_kb),
        num_seeds=_seeds(args, default=3),
        jobs=args.jobs,
    )
    return format_figure1c(result) + "\n\n" + format_codec_stats(result.codec_stats)


def _cmd_ablations(args: argparse.Namespace) -> str:
    config = _build_config(args)
    sections = [
        format_ablation(trimming_ablation(config, jobs=args.jobs),
                        "A1 -- trimming vs drop-tail"),
        format_ablation(spraying_ablation(config, jobs=args.jobs),
                        "A2 -- spraying vs ECMP vs single path"),
        format_overhead(rq_overhead_ablation(), "A3 -- RQ decode overhead"),
        format_ablation(initial_window_ablation(config, jobs=args.jobs),
                        "A4 -- initial window"),
    ]
    return "\n\n".join(sections)


def _cmd_hotspot(args: argparse.Namespace) -> str:
    return format_hotspot(run_hotspot_experiment(_build_config(args), jobs=args.jobs))


def _cmd_mix(args: argparse.Namespace) -> str:
    return format_workload_mix(run_workload_mix(_build_config(args), jobs=args.jobs))


def _cmd_resilience(args: argparse.Namespace) -> str:
    result = run_resilience(
        _build_config(args),
        intensities=tuple(args.intensities),
        num_seeds=_seeds(args),
        jobs=args.jobs,
    )
    return format_resilience(result) + "\n\n" + format_codec_stats(result.codec_stats)


def _cmd_correlated(args: argparse.Namespace) -> str:
    result = run_correlated(
        _build_config(args),
        srlg_sizes=tuple(args.srlg_sizes),
        gray_rates=tuple(args.gray_loss),
        convergence_delays=tuple(ms / 1e3 for ms in args.convergence_delay_ms),
        num_seeds=_seeds(args),
        jobs=args.jobs,
    )
    return format_correlated(result) + "\n\n" + format_codec_stats(result.codec_stats)


def _cmd_incast(args: argparse.Namespace) -> str:
    result = run_incast(
        _build_config(args),
        fanins=tuple(args.fanins),
        response_bytes=args.incast_response_kb * KILOBYTE,
        num_seeds=_seeds(args),
        jobs=args.jobs,
    )
    return format_incast(result) + "\n\n" + format_codec_stats(result.codec_stats)


def _cmd_trace(args: argparse.Namespace) -> str:
    telemetry = read_telemetry_jsonl(args.path)
    return format_trace(
        telemetry, series=args.series, width=args.width, limit=args.limit
    )


def _size_type(value: str) -> int:
    """Parse a byte size with an optional k/M suffix (binary multiples)."""
    text = value.strip().lower()
    factor = 1
    if text.endswith("k"):
        factor, text = 1024, text[:-1]
    elif text.endswith("m"):
        factor, text = 1024 * 1024, text[:-1]
    try:
        size = int(text) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid size {value!r}") from None
    if size <= 0:
        raise argparse.ArgumentTypeError("size must be positive")
    return size


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio
    import json

    from repro.net import ObjectStore, run_server
    from repro.net.server import (
        DEFAULT_GRANT_TTL_S,
        DEFAULT_SESSION_IDLE_S,
        deterministic_object,
    )
    from repro.obs import MetricRegistry

    store = ObjectStore()
    for spec in args.object or []:
        name, _, size = spec.partition("=")
        if not name or not size:
            raise SystemExit(f"--object expects NAME=SIZE, got {spec!r}")
        store.put(name, deterministic_object(_size_type(size), seed=name))
    for path in args.file or []:
        import os

        with open(path, "rb") as handle:
            store.put(os.path.basename(path), handle.read())
    if len(store) == 0:
        raise SystemExit("serve needs at least one --object NAME=SIZE or --file PATH")
    registry = MetricRegistry()

    async def _serve():
        ready = asyncio.Event()
        task = asyncio.ensure_future(
            run_server(
                store,
                host=args.host,
                port=args.port,
                loss_rate=args.loss,
                loss_seed=args.loss_seed,
                max_sessions=args.max_sessions,
                max_concurrent_sessions=args.max_concurrent_sessions,
                grant_ttl_s=args.grant_ttl,
                session_idle_timeout_s=args.idle_timeout,
                mtu=args.mtu,
                registry=registry,
                ready=ready,
            )
        )
        await ready.wait()
        print(
            f"serving {len(store)} object(s) on {args.host}:{args.port}: "
            + " ".join(store.names()),
            flush=True,
        )
        return await task

    protocol = asyncio.run(_serve())
    if args.server_telemetry is not None:
        with open(args.server_telemetry, "w", encoding="utf-8") as handle:
            json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"telemetry: wrote server counters to {args.server_telemetry}",
            file=sys.stderr,
        )
    return (
        f"served {protocol.sessions_completed} session(s) "
        f"(reaped: {protocol.sessions_reaped}, "
        f"busy rejections: {protocol.busy_rejections}, "
        f"frames dropped: {protocol.frames_dropped}, "
        f"malformed: {protocol.malformed_frames})"
    )


def _sources_type(value: str) -> list:
    """Parse ``host:port,host:port,...`` into a list of (host, port) pairs."""
    endpoints = []
    for item in value.split(","):
        item = item.strip()
        if not item:
            continue
        host, sep, port = item.rpartition(":")
        if not sep or not host:
            raise argparse.ArgumentTypeError(
                f"--sources expects host:port[,host:port...], got {item!r}"
            )
        try:
            endpoints.append((host, int(port)))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid port in --sources entry {item!r}"
            ) from None
    if not endpoints:
        raise argparse.ArgumentTypeError("--sources needs at least one host:port")
    return endpoints


def _cmd_fetch(args: argparse.Namespace) -> str:
    import hashlib

    from repro.net import FetchError, fetch_object

    try:
        data = fetch_object(
            args.name,
            host=args.host,
            port=args.port,
            sources=args.sources,
            loss_rate=args.loss,
            loss_seed=args.loss_seed,
            transfer_timeout_s=args.timeout,
            mtu=args.mtu,
        )
    except FetchError as exc:
        raise SystemExit(f"fetch failed: {exc}") from exc
    digest = hashlib.sha256(data).hexdigest()
    if args.output is not None:
        with open(args.output, "wb") as handle:
            handle.write(data)
    if args.expect_sha256 is not None and args.expect_sha256 != digest:
        raise SystemExit(
            f"sha256 mismatch for {args.name!r}: got {digest}, "
            f"expected {args.expect_sha256}"
        )
    return f"{args.name}: {len(data)} bytes sha256={digest}"


def _cmd_all(args: argparse.Namespace) -> str:
    return "\n\n".join(
        [
            _cmd_figure1a(args),
            _cmd_figure1b(args),
            _cmd_figure1c(args),
            _cmd_ablations(args),
            _cmd_hotspot(args),
            _cmd_mix(args),
            _cmd_resilience(args),
            _cmd_correlated(args),
            _cmd_incast(args),
        ]
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the Polyraptor paper's figures and ablations."
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, handler, help_text in (
        ("figure1a", _cmd_figure1a, "replication / multicast rank curves"),
        ("figure1b", _cmd_figure1b, "multi-source fetch rank curves"),
        ("figure1c", _cmd_figure1c, "Incast sweep"),
        ("ablations", _cmd_ablations, "design-choice ablations A1-A4"),
        ("hotspot", _cmd_hotspot, "network-hotspot extension experiment"),
        ("mix", _cmd_mix, "heavy-tailed workload-mix extension experiment"),
        ("resilience", _cmd_resilience,
         "path-resilience sweep under injected faults"),
        ("correlated", _cmd_correlated,
         "correlated/gray failures with routing-convergence delay"),
        ("incast", _cmd_incast,
         "incast fan-in sweep with ECN/TFRC congestion reaction on vs off"),
        ("all", _cmd_all, "everything above in sequence"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_arguments(sub)
        sub.set_defaults(handler=handler)
        # --seeds only applies to the multi-seed sweeps; ablations/hotspot/mix
        # are single-seed by design, so they simply don't accept the flag.
        if name in ("figure1a", "figure1b", "figure1c", "resilience", "correlated",
                    "incast", "all"):
            sub.add_argument("--seeds", type=int, default=None,
                             help="repetition seeds per series (default: 1; figure1c: 3)")
        if name in ("figure1c", "all"):
            sub.add_argument("--senders", type=int, nargs="+", default=[1, 2, 4, 8, 12],
                             help="sender counts to sweep")
            sub.add_argument("--response-kb", type=int, nargs="+", default=[256, 70],
                             help="response sizes in kilobytes")
        if name in ("resilience", "all"):
            sub.add_argument("--intensities", type=_intensity_type, nargs="+",
                             default=[0.0, 0.3, 0.6, 1.0],
                             help="fault intensities in [0, 1] to sweep (0 = healthy "
                                  "baseline, always included)")
        if name in ("correlated", "all"):
            sub.add_argument("--srlg-sizes", type=_srlg_size_type, nargs="+",
                             default=[1, 3], metavar="N",
                             help="shared-risk link group sizes to sweep (links that "
                                  "fail together; the first size also anchors the "
                                  "convergence-delay cells)")
            sub.add_argument("--gray-loss", type=_gray_loss_type, nargs="+",
                             default=[0.01, 0.05], metavar="P",
                             help="gray-failure Bernoulli loss rates in (0, 1] smeared "
                                  "across half the fabric links (routing never reacts)")
            sub.add_argument("--convergence-delay-ms", type=_delay_ms_type, nargs="+",
                             default=[0.0, 1.0], metavar="MS",
                             help="control-plane convergence lags (milliseconds) to "
                                  "replay the reference SRLG event under; 0 = "
                                  "instantaneous reconvergence")
        if name in ("incast", "all"):
            # `all` already owns --response-kb (figure1c's list); the incast
            # episode size therefore gets its own destination, spelled
            # --response-kb on the standalone subcommand for symmetry.
            flag = "--response-kb" if name == "incast" else "--incast-response-kb"
            sub.add_argument("--fanins", type=_fanin_type, nargs="+",
                             default=[4, 8, 15], metavar="N",
                             help="worker fan-ins to sweep (each crossed with the "
                                  "congestion-reaction loop off and on)")
            sub.add_argument(flag, dest="incast_response_kb", type=int, default=64,
                             metavar="KB",
                             help="per-worker incast response size in kilobytes")

    # ``trace`` reads a recorded artefact instead of running simulations, so
    # it takes none of the common run flags -- just the file and rendering.
    trace = subparsers.add_parser(
        "trace", help="render a recorded --telemetry JSONL file as text timelines"
    )
    trace.add_argument("path", help="telemetry JSONL file written by --telemetry")
    trace.add_argument("--series", default=None, metavar="GLOB",
                       help="only series whose name matches this glob "
                            "(e.g. 'queue.depth.*' or 'tfrc.rate.h1*')")
    trace.add_argument("--width", type=int, default=60, metavar="N",
                       help="sparkline width in characters (default 60)")
    trace.add_argument("--limit", type=int, default=20, metavar="N",
                       help="series rendered per run (default 20)")
    trace.set_defaults(handler=_cmd_trace)

    # ``serve`` / ``fetch`` are real-network endpoints (repro.net) completing
    # actual UDP object transfers; like ``trace`` they take none of the
    # simulation flags.
    serve = subparsers.add_parser(
        "serve", help="serve named objects over UDP (Polyraptor wire protocol)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=9109, help="UDP port (default 9109)")
    serve.add_argument("--object", action="append", metavar="NAME=SIZE",
                       help="serve a deterministic object of SIZE bytes "
                            "(k/M suffixes allowed; bytes derived from NAME, "
                            "so fetchers can verify the hash independently); "
                            "repeatable")
    serve.add_argument("--file", action="append", metavar="PATH",
                       help="serve a file's bytes under its basename; repeatable")
    serve.add_argument("--loss", type=float, default=0.0, metavar="P",
                       help="drop arriving frames with probability P (testing)")
    serve.add_argument("--loss-seed", type=int, default=0,
                       help="seed for the induced-loss stream")
    serve.add_argument("--max-sessions", type=int, default=None, metavar="N",
                       help="exit after N completed sessions (default: serve forever)")
    serve.add_argument("--max-concurrent-sessions", type=int, default=None,
                       metavar="N",
                       help="answer OPENs beyond N in-flight grants with "
                            "OPEN_ERR busy (default: unbounded)")
    serve.add_argument("--grant-ttl", type=float, default=30.0, metavar="S",
                       help="expire grants idle for S seconds that never "
                            "progressed to a transfer (default 30)")
    serve.add_argument("--idle-timeout", type=float, default=30.0, metavar="S",
                       help="reap live sessions whose client stayed silent "
                            "for S seconds (default 30)")
    serve.add_argument("--mtu", type=int, default=None, metavar="BYTES",
                       help="cap granted symbol sizes so every DATA frame "
                            "fits one datagram of this path MTU")
    serve.add_argument("--telemetry", dest="server_telemetry", default=None,
                       metavar="PATH",
                       help="write the server's metric-registry snapshot "
                            "(grants, sessions, symbols, rejections) to PATH "
                            "as JSON on exit")
    serve.set_defaults(handler=_cmd_serve)

    fetch = subparsers.add_parser(
        "fetch", help="fetch one named object from a running `repro serve`"
    )
    fetch.add_argument("name", help="object name to fetch")
    fetch.add_argument("--host", default="127.0.0.1", help="server address")
    fetch.add_argument("--port", type=int, default=9109, help="server UDP port")
    fetch.add_argument("--sources", type=_sources_type, default=None,
                       metavar="HOST:PORT,...",
                       help="fetch from several replica holders at once (one "
                            "session per server, all folded into one decode); "
                            "supersedes --host/--port")
    fetch.add_argument("--mtu", type=int, default=None, metavar="BYTES",
                       help="propose a symbol size that fits one datagram of "
                            "this path MTU")
    fetch.add_argument("-o", "--output", default=None, metavar="PATH",
                       help="write the fetched bytes to PATH")
    fetch.add_argument("--loss", type=float, default=0.0, metavar="P",
                       help="drop arriving symbol frames with probability P (testing)")
    fetch.add_argument("--loss-seed", type=int, default=1,
                       help="seed for the induced-loss stream")
    fetch.add_argument("--timeout", type=float, default=30.0, metavar="S",
                       help="overall transfer deadline in seconds")
    fetch.add_argument("--expect-sha256", default=None, metavar="HEX",
                       help="fail unless the fetched bytes hash to HEX")
    fetch.set_defaults(handler=_cmd_fetch)
    return parser


def _apply_execution_options(args: argparse.Namespace) -> None:
    """Install process-wide executor options (progress, plan cache, transport)."""
    if getattr(args, "progress", False):
        set_progress_logger(log_progress)
    plan_cache = getattr(args, "plan_cache", None)
    if plan_cache is not None:
        path = default_plan_cache_path() if plan_cache == "auto" else plan_cache
        set_plan_cache_path(path)
    use_shm = getattr(args, "shm", None)
    if use_shm is not None:
        set_transport("shm" if use_shm else "pickle")
    chunk = getattr(args, "chunk", None)
    if chunk is not None:
        set_chunk_size(chunk)


def _export_telemetry(args: argparse.Namespace) -> None:
    """Write telemetry collected during this invocation, if it was requested.

    Goes to stderr/files only, so command stdout stays byte-identical with
    and without ``--telemetry``.
    """
    destination = getattr(args, "telemetry", None)
    if destination is None:
        return
    records = collected_telemetry()
    path = "telemetry.jsonl" if destination == "auto" else destination
    if path.endswith(".csv"):
        rows = write_telemetry_csv(records, path)
        print(f"telemetry: wrote {rows} rows to {path}", file=sys.stderr)
    else:
        lines = write_telemetry_jsonl(records, path)
        print(f"telemetry: wrote {lines} lines to {path}", file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse arguments, run the requested command, print its table."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _apply_execution_options(args)
    clear_telemetry()
    output = args.handler(args)
    print(output)
    _export_telemetry(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
