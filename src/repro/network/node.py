"""Base class shared by switches and hosts."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.packet import Packet


class Node:
    """Anything with a name that can receive packets."""

    def __init__(self, sim: Simulator, node_id: int, name: str) -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name

    def receive(self, packet: "Packet") -> None:
        """Handle a packet arriving from a link (overridden by subclasses)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"
