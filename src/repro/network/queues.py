"""Queue disciplines used by switch and host egress ports.

Two disciplines are provided:

* :class:`DropTailQueue` -- a single FIFO bounded in packets; overflowing
  packets are dropped.  Used by the TCP baseline.
* :class:`TrimmingQueue` -- the NDP-style discipline the paper adopts: a
  small bounded *data* queue plus a *priority header* queue.  When the data
  queue is full an arriving data packet is **trimmed** (its payload is
  discarded, its header survives) and the header is placed in the priority
  queue.  Control packets and already-trimmed headers always use the priority
  queue.  The scheduler serves the priority queue first but guarantees the
  data queue a configurable share to avoid starvation under pathological
  header load (mirroring NDP's 10:1 weighting).

Both disciplines expose the same interface (``enqueue`` / ``dequeue`` /
``__len__``) plus drop/trim counters, so ports are agnostic to which one they
carry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Optional, Protocol

from repro.network.packet import Packet, PacketKind


class EcnMarker:
    """Per-queue ECN/PCN marking state.

    A marker watches the *data* queue depth on every enqueue and sets the CE
    bit on data packets when either

    * the instantaneous depth reaches ``threshold_packets`` (DCTCP-style
      step marking), or
    * an EWMA of the depth reaches ``ewma_threshold_packets`` (PCN-style
      smoothed marking; the EWMA decays slowly, so marking persists briefly
      after a burst drains -- deliberate hysteresis).

    Args:
        threshold_packets: instantaneous-depth marking threshold (in packets,
            measured *before* the arriving packet is appended).
        ewma_weight: weight of the newest depth sample in the EWMA
            (``ewma = (1 - w) * ewma + w * depth``); must be in (0, 1].
        ewma_threshold_packets: EWMA marking threshold; defaults to the
            instantaneous threshold.
    """

    def __init__(
        self,
        threshold_packets: int,
        ewma_weight: float = 0.2,
        ewma_threshold_packets: Optional[float] = None,
    ) -> None:
        if threshold_packets <= 0:
            raise ValueError("ECN threshold must be positive")
        if not (0.0 < ewma_weight <= 1.0):
            raise ValueError("ECN EWMA weight must be in (0, 1]")
        self.threshold_packets = threshold_packets
        self.ewma_weight = ewma_weight
        self.ewma_threshold_packets = (
            float(threshold_packets)
            if ewma_threshold_packets is None
            else float(ewma_threshold_packets)
        )
        if self.ewma_threshold_packets <= 0:
            raise ValueError("ECN EWMA threshold must be positive")
        self.ewma_depth = 0.0
        self.marks = 0

    def observe(self, depth_packets: int) -> bool:
        """Fold a depth sample into the EWMA; return True if marking is on."""
        self.ewma_depth = (
            (1.0 - self.ewma_weight) * self.ewma_depth
            + self.ewma_weight * depth_packets
        )
        return (
            depth_packets >= self.threshold_packets
            or self.ewma_depth >= self.ewma_threshold_packets
        )

    def maybe_mark(self, packet: Packet, depth_packets: int) -> Packet:
        """Return ``packet`` (CE-marked copy if over threshold) for a data enqueue."""
        if self.observe(depth_packets) and not packet.ce:
            self.marks += 1
            return replace(packet, ce=True)
        return packet


class QueueDiscipline(Protocol):
    """Interface every egress queue discipline implements."""

    def enqueue(self, packet: Packet) -> Optional[Packet]:
        """Accept a packet; return the packet actually queued (possibly trimmed) or ``None`` if dropped."""

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the next packet to transmit, or ``None`` if empty."""

    def __len__(self) -> int:
        """Number of queued packets."""


class DropTailQueue:
    """A single bounded FIFO; the classic switch queue used by the TCP baseline."""

    def __init__(
        self,
        capacity_packets: int = 100,
        marker: Optional[EcnMarker] = None,
    ) -> None:
        if capacity_packets <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_packets = capacity_packets
        self.marker = marker
        self._queue: deque[Packet] = deque()
        self.dropped_packets = 0
        self.enqueued_packets = 0

    def enqueue(self, packet: Packet) -> Optional[Packet]:
        """Queue the packet, or drop it (returning ``None``) if the FIFO is full."""
        if len(self._queue) >= self.capacity_packets:
            self.dropped_packets += 1
            return None
        if self.marker is not None and packet.kind is PacketKind.DATA:
            packet = self.marker.maybe_mark(packet, len(self._queue))
        self._queue.append(packet)
        self.enqueued_packets += 1
        return packet

    def dequeue(self) -> Optional[Packet]:
        """Return the oldest queued packet, or ``None``."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queued_bytes(self) -> int:
        """Total bytes currently queued."""
        return sum(packet.size_bytes for packet in self._queue)

    @property
    def ecn_marked(self) -> int:
        """Packets CE-marked by this queue's marker (0 without a marker)."""
        return self.marker.marks if self.marker is not None else 0


class TrimmingQueue:
    """NDP-style two-queue discipline with packet trimming.

    Args:
        data_capacity_packets: bound on the data queue (NDP uses 8 MTU-sized
            slots; shallow buffers are a design goal of the paper).
        header_capacity_packets: bound on the priority queue; headers are tiny
            so this can be generous, but it is still bounded so a pathological
            run cannot accumulate unbounded state.
        data_service_ratio: after this many consecutive priority-queue packets
            the scheduler serves one data packet even if more headers are
            waiting (prevents starvation; 10 mirrors NDP).
    """

    def __init__(
        self,
        data_capacity_packets: int = 8,
        header_capacity_packets: int = 1000,
        data_service_ratio: int = 10,
        marker: Optional[EcnMarker] = None,
    ) -> None:
        if data_capacity_packets <= 0:
            raise ValueError("data queue capacity must be positive")
        if header_capacity_packets <= 0:
            raise ValueError("header queue capacity must be positive")
        if data_service_ratio <= 0:
            raise ValueError("data_service_ratio must be positive")
        self.data_capacity_packets = data_capacity_packets
        self.header_capacity_packets = header_capacity_packets
        self.data_service_ratio = data_service_ratio
        self.marker = marker
        self._data: deque[Packet] = deque()
        self._priority: deque[Packet] = deque()
        self._consecutive_priority = 0
        self.trimmed_packets = 0
        self.dropped_headers = 0
        self.dropped_packets = 0
        self.enqueued_packets = 0

    def enqueue(self, packet: Packet) -> Optional[Packet]:
        """Queue a packet, trimming data packets when the data queue is full."""
        if packet.kind is PacketKind.DATA and not packet.priority:
            if self.marker is not None:
                packet = self.marker.maybe_mark(packet, len(self._data))
            if len(self._data) < self.data_capacity_packets:
                self._data.append(packet)
                self.enqueued_packets += 1
                return packet
            trimmed = packet.trim()
            self.trimmed_packets += 1
            return self._enqueue_priority(trimmed)
        return self._enqueue_priority(packet)

    def _enqueue_priority(self, packet: Packet) -> Optional[Packet]:
        if len(self._priority) >= self.header_capacity_packets:
            self.dropped_headers += 1
            self.dropped_packets += 1
            return None
        self._priority.append(packet)
        self.enqueued_packets += 1
        return packet

    def dequeue(self) -> Optional[Packet]:
        """Serve the priority queue first, with a starvation guard for data."""
        serve_data_first = (
            self._consecutive_priority >= self.data_service_ratio and self._data
        )
        if not serve_data_first and self._priority:
            self._consecutive_priority += 1
            return self._priority.popleft()
        if self._data:
            self._consecutive_priority = 0
            return self._data.popleft()
        if self._priority:
            self._consecutive_priority += 1
            return self._priority.popleft()
        return None

    def __len__(self) -> int:
        return len(self._data) + len(self._priority)

    @property
    def data_queue_length(self) -> int:
        """Packets currently waiting in the data queue."""
        return len(self._data)

    @property
    def priority_queue_length(self) -> int:
        """Packets currently waiting in the priority (header/control) queue."""
        return len(self._priority)

    @property
    def queued_bytes(self) -> int:
        """Total bytes currently queued across both queues."""
        return sum(p.size_bytes for p in self._data) + sum(p.size_bytes for p in self._priority)

    @property
    def ecn_marked(self) -> int:
        """Packets CE-marked by this queue's marker (0 without a marker)."""
        return self.marker.marks if self.marker is not None else 0
