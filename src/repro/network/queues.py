"""Queue disciplines used by switch and host egress ports.

Two disciplines are provided:

* :class:`DropTailQueue` -- a single FIFO bounded in packets; overflowing
  packets are dropped.  Used by the TCP baseline.
* :class:`TrimmingQueue` -- the NDP-style discipline the paper adopts: a
  small bounded *data* queue plus a *priority header* queue.  When the data
  queue is full an arriving data packet is **trimmed** (its payload is
  discarded, its header survives) and the header is placed in the priority
  queue.  Control packets and already-trimmed headers always use the priority
  queue.  The scheduler serves the priority queue first but guarantees the
  data queue a configurable share to avoid starvation under pathological
  header load (mirroring NDP's 10:1 weighting).

Both disciplines expose the same interface (``enqueue`` / ``dequeue`` /
``__len__``) plus drop/trim counters, so ports are agnostic to which one they
carry.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Protocol

from repro.network.packet import Packet, PacketKind


class QueueDiscipline(Protocol):
    """Interface every egress queue discipline implements."""

    def enqueue(self, packet: Packet) -> Optional[Packet]:
        """Accept a packet; return the packet actually queued (possibly trimmed) or ``None`` if dropped."""

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the next packet to transmit, or ``None`` if empty."""

    def __len__(self) -> int:
        """Number of queued packets."""


class DropTailQueue:
    """A single bounded FIFO; the classic switch queue used by the TCP baseline."""

    def __init__(self, capacity_packets: int = 100) -> None:
        if capacity_packets <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_packets = capacity_packets
        self._queue: deque[Packet] = deque()
        self.dropped_packets = 0
        self.enqueued_packets = 0

    def enqueue(self, packet: Packet) -> Optional[Packet]:
        """Queue the packet, or drop it (returning ``None``) if the FIFO is full."""
        if len(self._queue) >= self.capacity_packets:
            self.dropped_packets += 1
            return None
        self._queue.append(packet)
        self.enqueued_packets += 1
        return packet

    def dequeue(self) -> Optional[Packet]:
        """Return the oldest queued packet, or ``None``."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queued_bytes(self) -> int:
        """Total bytes currently queued."""
        return sum(packet.size_bytes for packet in self._queue)


class TrimmingQueue:
    """NDP-style two-queue discipline with packet trimming.

    Args:
        data_capacity_packets: bound on the data queue (NDP uses 8 MTU-sized
            slots; shallow buffers are a design goal of the paper).
        header_capacity_packets: bound on the priority queue; headers are tiny
            so this can be generous, but it is still bounded so a pathological
            run cannot accumulate unbounded state.
        data_service_ratio: after this many consecutive priority-queue packets
            the scheduler serves one data packet even if more headers are
            waiting (prevents starvation; 10 mirrors NDP).
    """

    def __init__(
        self,
        data_capacity_packets: int = 8,
        header_capacity_packets: int = 1000,
        data_service_ratio: int = 10,
    ) -> None:
        if data_capacity_packets <= 0:
            raise ValueError("data queue capacity must be positive")
        if header_capacity_packets <= 0:
            raise ValueError("header queue capacity must be positive")
        if data_service_ratio <= 0:
            raise ValueError("data_service_ratio must be positive")
        self.data_capacity_packets = data_capacity_packets
        self.header_capacity_packets = header_capacity_packets
        self.data_service_ratio = data_service_ratio
        self._data: deque[Packet] = deque()
        self._priority: deque[Packet] = deque()
        self._consecutive_priority = 0
        self.trimmed_packets = 0
        self.dropped_headers = 0
        self.dropped_packets = 0
        self.enqueued_packets = 0

    def enqueue(self, packet: Packet) -> Optional[Packet]:
        """Queue a packet, trimming data packets when the data queue is full."""
        if packet.kind is PacketKind.DATA and not packet.priority:
            if len(self._data) < self.data_capacity_packets:
                self._data.append(packet)
                self.enqueued_packets += 1
                return packet
            trimmed = packet.trim()
            self.trimmed_packets += 1
            return self._enqueue_priority(trimmed)
        return self._enqueue_priority(packet)

    def _enqueue_priority(self, packet: Packet) -> Optional[Packet]:
        if len(self._priority) >= self.header_capacity_packets:
            self.dropped_headers += 1
            self.dropped_packets += 1
            return None
        self._priority.append(packet)
        self.enqueued_packets += 1
        return packet

    def dequeue(self) -> Optional[Packet]:
        """Serve the priority queue first, with a starvation guard for data."""
        serve_data_first = (
            self._consecutive_priority >= self.data_service_ratio and self._data
        )
        if not serve_data_first and self._priority:
            self._consecutive_priority += 1
            return self._priority.popleft()
        if self._data:
            self._consecutive_priority = 0
            return self._data.popleft()
        if self._priority:
            self._consecutive_priority += 1
            return self._priority.popleft()
        return None

    def __len__(self) -> int:
        return len(self._data) + len(self._priority)

    @property
    def data_queue_length(self) -> int:
        """Packets currently waiting in the data queue."""
        return len(self._data)

    @property
    def priority_queue_length(self) -> int:
        """Packets currently waiting in the priority (header/control) queue."""
        return len(self._priority)

    @property
    def queued_bytes(self) -> int:
        """Total bytes currently queued across both queues."""
        return sum(p.size_bytes for p in self._data) + sum(p.size_bytes for p in self._priority)
