"""Data-centre topologies.

Topologies are pure descriptions (a networkx graph plus node-role metadata);
:class:`repro.network.network.Network` turns a description into simulated
switches, hosts, ports and links.

Two families are provided:

* :class:`FatTreeTopology` -- the k-ary fat-tree used in the paper's
  evaluation ("250 servers FatTree" corresponds to k=10); every pod has
  k/2 edge and k/2 aggregation switches, there are (k/2)^2 core switches and
  each edge switch serves k/2 hosts.  All host-to-host paths that cross pods
  have the same length, which is what makes per-packet spraying attractive.
* :class:`LeafSpineTopology` -- a two-tier Clos, convenient for small tests
  and for the Incast experiment where a single rack's uplinks are the
  bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import networkx as nx


class NodeRole(str, Enum):
    """Role of a topology node."""

    HOST = "host"
    EDGE = "edge"
    AGGREGATION = "aggregation"
    CORE = "core"
    LEAF = "leaf"
    SPINE = "spine"


@dataclass
class Topology:
    """A named graph with per-node roles.

    Attributes:
        name: human-readable topology name.
        graph: undirected networkx graph; nodes are string names.
        roles: mapping node name -> :class:`NodeRole`.
    """

    name: str
    graph: nx.Graph = field(default_factory=nx.Graph)
    roles: dict[str, NodeRole] = field(default_factory=dict)

    def add_node(self, name: str, role: NodeRole) -> str:
        """Add a node with a role; returns the name for chaining."""
        self.graph.add_node(name)
        self.roles[name] = role
        return name

    def add_link(self, a: str, b: str) -> None:
        """Add an undirected link between two existing nodes."""
        if a not in self.graph or b not in self.graph:
            raise KeyError(f"both endpoints must exist before linking {a!r}-{b!r}")
        self.graph.add_edge(a, b)

    @property
    def hosts(self) -> list[str]:
        """Names of all host nodes, in insertion order."""
        return [name for name in self.graph.nodes if self.roles[name] is NodeRole.HOST]

    @property
    def switches(self) -> list[str]:
        """Names of all switch nodes, in insertion order."""
        return [name for name in self.graph.nodes if self.roles[name] is not NodeRole.HOST]

    @property
    def num_hosts(self) -> int:
        """Number of hosts in the topology."""
        return len(self.hosts)

    def host_rack(self, host_name: str) -> str:
        """Return the edge/leaf switch the host is attached to."""
        if self.roles.get(host_name) is not NodeRole.HOST:
            raise KeyError(f"{host_name!r} is not a host")
        for neighbour in self.graph.neighbors(host_name):
            if self.roles[neighbour] is not NodeRole.HOST:
                return neighbour
        raise ValueError(f"host {host_name!r} has no switch neighbour")

    def hosts_in_same_rack(self, host_name: str) -> list[str]:
        """Return every host attached to the same edge switch (including itself)."""
        rack = self.host_rack(host_name)
        return [
            neighbour
            for neighbour in self.graph.neighbors(rack)
            if self.roles[neighbour] is NodeRole.HOST
        ]

    def validate(self) -> None:
        """Sanity-check the topology (connected, hosts have exactly one uplink)."""
        if self.graph.number_of_nodes() == 0:
            raise ValueError("topology is empty")
        if not nx.is_connected(self.graph):
            raise ValueError("topology is not connected")
        for host in self.hosts:
            if self.graph.degree[host] != 1:
                raise ValueError(f"host {host!r} must have exactly one uplink")


class FatTreeTopology(Topology):
    """A k-ary fat-tree: k pods, (k/2)^2 core switches, k^3/4 hosts."""

    def __init__(self, k: int) -> None:
        if k < 2 or k % 2 != 0:
            raise ValueError(f"fat-tree arity k must be an even integer >= 2, got {k}")
        super().__init__(name=f"fattree-k{k}")
        self.k = k
        half = k // 2

        core_switches = [
            self.add_node(f"core{i}", NodeRole.CORE) for i in range(half * half)
        ]
        for pod in range(k):
            aggregation = [
                self.add_node(f"agg{pod}_{i}", NodeRole.AGGREGATION) for i in range(half)
            ]
            edges = [
                self.add_node(f"edge{pod}_{i}", NodeRole.EDGE) for i in range(half)
            ]
            for agg_index, agg in enumerate(aggregation):
                for edge in edges:
                    self.add_link(agg, edge)
                for core_index in range(half):
                    core = core_switches[agg_index * half + core_index]
                    self.add_link(agg, core)
            for edge_index, edge in enumerate(edges):
                for host_index in range(half):
                    host = self.add_node(
                        f"h{pod * half * half + edge_index * half + host_index}",
                        NodeRole.HOST,
                    )
                    self.add_link(edge, host)
        self.validate()

    @classmethod
    def with_at_least_hosts(cls, min_hosts: int) -> "FatTreeTopology":
        """Return the smallest fat-tree whose host count is >= ``min_hosts``.

        The paper's "250 servers FatTree" maps to k=10 (250 hosts).
        """
        k = 2
        while (k ** 3) // 4 < min_hosts:
            k += 2
        return cls(k)


class LeafSpineTopology(Topology):
    """A two-tier leaf/spine Clos with a fixed number of hosts per leaf."""

    def __init__(self, num_leaves: int, num_spines: int, hosts_per_leaf: int) -> None:
        if num_leaves <= 0 or num_spines <= 0 or hosts_per_leaf <= 0:
            raise ValueError("leaf/spine/host counts must all be positive")
        super().__init__(name=f"leafspine-{num_leaves}x{num_spines}x{hosts_per_leaf}")
        self.num_leaves = num_leaves
        self.num_spines = num_spines
        self.hosts_per_leaf = hosts_per_leaf

        spines = [self.add_node(f"spine{i}", NodeRole.SPINE) for i in range(num_spines)]
        host_index = 0
        for leaf_index in range(num_leaves):
            leaf = self.add_node(f"leaf{leaf_index}", NodeRole.LEAF)
            for spine in spines:
                self.add_link(leaf, spine)
            for _ in range(hosts_per_leaf):
                host = self.add_node(f"h{host_index}", NodeRole.HOST)
                self.add_link(leaf, host)
                host_index += 1
        self.validate()


def single_rack(num_hosts: int) -> Topology:
    """A single switch with ``num_hosts`` hosts: the smallest useful topology."""
    if num_hosts < 2:
        raise ValueError("a rack needs at least two hosts")
    topology = Topology(name=f"rack-{num_hosts}")
    tor = topology.add_node("tor", NodeRole.EDGE)
    for index in range(num_hosts):
        host = topology.add_node(f"h{index}", NodeRole.HOST)
        topology.add_link(tor, host)
    topology.validate()
    return topology
