"""End hosts.

A :class:`Host` has a single NIC (one egress port toward its rack switch) and
a registry of transport endpoints keyed by protocol name.  Arriving packets
are dispatched to the endpoint registered for ``packet.protocol``; transports
send by calling :meth:`Host.send`, which stamps the creation time and hands
the packet to the NIC queue.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.network.link import Port
from repro.network.node import Node
from repro.network.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog


class ProtocolEndpoint(Protocol):
    """Anything that can receive packets addressed to a protocol on a host."""

    def handle_packet(self, packet: Packet) -> None:
        """Process one packet delivered to this host."""


class Host(Node):
    """A server with one NIC."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        name: str,
        trace: Optional[TraceLog] = None,
    ) -> None:
        super().__init__(sim, node_id, name)
        self._nic: Optional[Port] = None
        self._protocols: dict[str, ProtocolEndpoint] = {}
        self._trace = trace if trace is not None else TraceLog(enabled=False)
        self.received_packets = 0
        self.received_bytes = 0
        self.sent_packets = 0
        self.sent_bytes = 0
        #: multicast groups this host has joined
        self.joined_groups: set[int] = set()

    # Wiring -------------------------------------------------------------------

    def attach_nic(self, port: Port) -> None:
        """Attach the single egress port (to the rack switch)."""
        if self._nic is not None:
            raise RuntimeError(f"host {self.name} already has a NIC")
        self._nic = port

    @property
    def nic(self) -> Port:
        """The host's NIC egress port."""
        if self._nic is None:
            raise RuntimeError(f"host {self.name} has no NIC attached")
        return self._nic

    @property
    def link_rate_bps(self) -> float:
        """The NIC's line rate in bits per second."""
        return self.nic.rate_bps

    def register_protocol(self, protocol: str, endpoint: ProtocolEndpoint) -> None:
        """Register the endpoint that handles packets of the given protocol."""
        if protocol in self._protocols:
            raise ValueError(f"protocol {protocol!r} already registered on {self.name}")
        self._protocols[protocol] = endpoint

    def protocol_endpoint(self, protocol: str) -> ProtocolEndpoint:
        """Return the endpoint registered for a protocol (KeyError if absent)."""
        return self._protocols[protocol]

    def join_group(self, group_id: int) -> None:
        """Record membership of a multicast group (delivery filter)."""
        self.joined_groups.add(group_id)

    def leave_group(self, group_id: int) -> None:
        """Drop membership of a multicast group."""
        self.joined_groups.discard(group_id)

    # Data path ------------------------------------------------------------------

    def send(self, packet: Packet) -> bool:
        """Transmit a packet out of the NIC; returns False if the NIC queue dropped it."""
        packet.created_at = self.sim.now
        accepted = self.nic.send(packet)
        if accepted:
            self.sent_packets += 1
            self.sent_bytes += packet.size_bytes
        else:
            self._trace.record(self.sim.now, "host.nic_drop", host=self.name,
                               packet=packet.packet_id)
        return accepted

    def receive(self, packet: Packet) -> None:
        """Deliver an arriving packet to the registered protocol endpoint."""
        if packet.is_multicast and packet.multicast_group not in self.joined_groups:
            # Not a member (e.g. a stale tree edge); silently discard.
            self._trace.record(self.sim.now, "host.not_member", host=self.name,
                               group=packet.multicast_group)
            return
        endpoint = self._protocols.get(packet.protocol)
        if endpoint is None:
            self._trace.record(self.sim.now, "host.no_protocol", host=self.name,
                               protocol=packet.protocol)
            return
        self.received_packets += 1
        self.received_bytes += packet.size_bytes
        endpoint.handle_packet(packet)
