"""Assembly of a simulated network from a topology description.

:class:`Network` instantiates hosts, switches, ports and links on a single
simulator, computes routing tables, and manages multicast groups.  It is the
object experiments interact with: they look up hosts, attach transport
endpoints to them, install multicast groups, and read aggregate statistics
(trims, drops, delivered bytes) at the end of a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.network.host import Host
from repro.network.link import Link, Port
from repro.network.multicast import MulticastGroup, build_multicast_tree, group_table_entries
from repro.network.queues import DropTailQueue, TrimmingQueue
from repro.network.routing import RoutingMode, RoutingTable
from repro.network.switch import Switch
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.trace import TraceLog
from repro.utils.units import GBPS, MICROSECOND
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NetworkConfig:
    """Link and switch configuration shared by the whole fabric.

    The defaults mirror the paper's evaluation: 1 Gbps links, 10 microsecond
    per-link delay, NDP-style trimming switches with shallow (8 packet) data
    queues.  The TCP baseline overrides ``switch_queue`` to ``"droptail"`` and
    ``routing_mode`` to per-flow ECMP.
    """

    link_rate_bps: float = 1 * GBPS
    link_delay_s: float = 10 * MICROSECOND
    switch_queue: str = "trimming"
    data_queue_capacity_packets: int = 8
    header_queue_capacity_packets: int = 1000
    droptail_capacity_packets: int = 100
    routing_mode: RoutingMode = RoutingMode.PACKET_SPRAY

    def __post_init__(self) -> None:
        check_positive("link_rate_bps", self.link_rate_bps)
        if self.link_delay_s < 0:
            raise ValueError("link_delay_s cannot be negative")
        if self.switch_queue not in ("trimming", "droptail"):
            raise ValueError("switch_queue must be 'trimming' or 'droptail'")
        check_positive("data_queue_capacity_packets", self.data_queue_capacity_packets)
        check_positive("header_queue_capacity_packets", self.header_queue_capacity_packets)
        check_positive("droptail_capacity_packets", self.droptail_capacity_packets)


class Network:
    """A fully wired simulated network."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        streams: Optional[RandomStreams] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config or NetworkConfig()
        self.streams = streams or RandomStreams(master_seed=0)
        self.trace = trace if trace is not None else TraceLog(enabled=False)

        self.routing_table = RoutingTable(topology)
        self.hosts: list[Host] = []
        self._host_by_name: dict[str, Host] = {}
        self.switches: dict[str, Switch] = {}
        self._groups: dict[int, MulticastGroup] = {}
        self._next_node_id = 0

        self._build_nodes()
        self._build_links()
        self._install_routes()

    # Construction --------------------------------------------------------------

    def _new_queue(self):
        if self.config.switch_queue == "trimming":
            return TrimmingQueue(
                data_capacity_packets=self.config.data_queue_capacity_packets,
                header_capacity_packets=self.config.header_queue_capacity_packets,
            )
        return DropTailQueue(capacity_packets=self.config.droptail_capacity_packets)

    def _build_nodes(self) -> None:
        for host_name in self.topology.hosts:
            host = Host(self.sim, self._next_node_id, host_name, trace=self.trace)
            self._next_node_id += 1
            self.hosts.append(host)
            self._host_by_name[host_name] = host
        for switch_name in self.topology.switches:
            switch = Switch(
                self.sim,
                self._next_node_id,
                switch_name,
                routing_mode=self.config.routing_mode,
                rng=self.streams.stream(f"switch.{switch_name}"),
                trace=self.trace,
            )
            self._next_node_id += 1
            self.switches[switch_name] = switch

    def _node_by_name(self, name: str) -> Union[Host, Switch]:
        if name in self._host_by_name:
            return self._host_by_name[name]
        return self.switches[name]

    def _build_links(self) -> None:
        for name_a, name_b in self.topology.graph.edges:
            self._wire_direction(name_a, name_b)
            self._wire_direction(name_b, name_a)

    def _wire_direction(self, src_name: str, dst_name: str) -> None:
        src = self._node_by_name(src_name)
        dst = self._node_by_name(dst_name)
        link = Link(self.sim, dst, self.config.link_delay_s, name=f"{src_name}->{dst_name}")
        if isinstance(src, Host):
            # A host never trims or drops its own traffic: the NIC queue is a
            # deep FIFO and senders pace themselves (initial window at line
            # rate, then pull-clocked / cwnd-clocked).
            queue = DropTailQueue(capacity_packets=100_000)
        else:
            queue = self._new_queue()
        port = Port(
            self.sim,
            owner=src,
            queue=queue,
            rate_bps=self.config.link_rate_bps,
            link=link,
            name=f"{src_name}->{dst_name}",
        )
        if isinstance(src, Host):
            src.attach_nic(port)
        else:
            src.add_port(dst_name, port)

    def _install_routes(self) -> None:
        for switch_name, switch in self.switches.items():
            for host in self.hosts:
                hops = self.routing_table.next_hops(switch_name, host.name)
                if hops:
                    switch.set_next_hops(host.node_id, hops)

    # Lookup ----------------------------------------------------------------------

    def host(self, key: Union[int, str]) -> Host:
        """Return a host by integer id or by name."""
        if isinstance(key, int):
            return self.hosts[key]
        return self._host_by_name[key]

    def host_id(self, name: str) -> int:
        """Return the integer id of a host name."""
        return self._host_by_name[name].node_id

    @property
    def num_hosts(self) -> int:
        """Number of hosts in the network."""
        return len(self.hosts)

    @property
    def host_names(self) -> list[str]:
        """Names of all hosts, ordered by host id."""
        return [host.name for host in self.hosts]

    # Multicast ---------------------------------------------------------------------

    def create_multicast_group(
        self, group_id: int, source_host: str, receiver_hosts: list[str]
    ) -> MulticastGroup:
        """Install a multicast group: build its tree and program every switch."""
        if group_id in self._groups:
            raise ValueError(f"multicast group {group_id} already exists")
        group = build_multicast_tree(
            self.topology, self.routing_table, group_id, source_host, receiver_hosts
        )
        for node_name, children in group_table_entries(group).items():
            if node_name in self.switches:
                self.switches[node_name].set_group_ports(group_id, children)
        for receiver in receiver_hosts:
            self._host_by_name[receiver].join_group(group_id)
        self._groups[group_id] = group
        return group

    def remove_multicast_group(self, group_id: int) -> None:
        """Uninstall a multicast group from switches and receivers."""
        group = self._groups.pop(group_id, None)
        if group is None:
            return
        for node_name in {parent for parent, _ in group.tree_edges}:
            if node_name in self.switches:
                self.switches[node_name].set_group_ports(group_id, ())
        for receiver in group.receiver_hosts:
            self._host_by_name[receiver].leave_group(group_id)

    def multicast_group(self, group_id: int) -> MulticastGroup:
        """Return an installed group (KeyError if unknown)."""
        return self._groups[group_id]

    # Aggregate statistics -------------------------------------------------------------

    @property
    def total_trimmed_packets(self) -> int:
        """Packets trimmed across every switch queue in the fabric."""
        return sum(switch.total_trimmed for switch in self.switches.values())

    @property
    def total_dropped_packets(self) -> int:
        """Packets dropped across every switch queue in the fabric."""
        return sum(switch.total_dropped for switch in self.switches.values())

    @property
    def total_forwarded_packets(self) -> int:
        """Packets forwarded by all switches."""
        return sum(switch.forwarded_packets for switch in self.switches.values())
