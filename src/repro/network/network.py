"""Assembly of a simulated network from a topology description.

:class:`Network` instantiates hosts, switches, ports and links on a single
simulator, computes routing tables, and manages multicast groups.  It is the
object experiments interact with: they look up hosts, attach transport
endpoints to them, install multicast groups, and read aggregate statistics
(trims, drops, delivered bytes) at the end of a run.

It is also the surface the fault-injection subsystem (:mod:`repro.faults`)
drives: links can be failed/restored/degraded/made lossy, switches failed,
host NICs slowed, and :meth:`Network.recompute_routes` rebuilds the unicast
ECMP table and every installed multicast tree on the surviving topology.

Routing convergence is not necessarily instantaneous: with
``NetworkConfig.convergence_delay_s`` set, a recompute models control-plane
lag -- the new tables are computed from a snapshot of the failure state at
detection time but only *installed* after the (optionally seeded-jittered)
delay, and until then the fabric keeps forwarding on the stale tables,
black-holing traffic aimed at dead links and switches exactly like a real
network between failure and reconvergence.  The default of 0 preserves the
historical instantaneous behaviour byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Union

from repro.network.host import Host
from repro.network.link import Link, Port
from repro.network.multicast import MulticastGroup, build_multicast_tree, group_table_entries
from repro.network.queues import DropTailQueue, EcnMarker, TrimmingQueue
from repro.network.routing import RoutingMode, RoutingTable
from repro.network.switch import Switch
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.trace import TraceLog
from repro.utils.units import GBPS, MICROSECOND
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NetworkConfig:
    """Link and switch configuration shared by the whole fabric.

    The defaults mirror the paper's evaluation: 1 Gbps links, 10 microsecond
    per-link delay, NDP-style trimming switches with shallow (8 packet) data
    queues.  The TCP baseline overrides ``switch_queue`` to ``"droptail"`` and
    ``routing_mode`` to per-flow ECMP.
    """

    link_rate_bps: float = 1 * GBPS
    link_delay_s: float = 10 * MICROSECOND
    switch_queue: str = "trimming"
    data_queue_capacity_packets: int = 8
    header_queue_capacity_packets: int = 1000
    droptail_capacity_packets: int = 100
    routing_mode: RoutingMode = RoutingMode.PACKET_SPRAY
    #: control-plane lag: seconds between a topology change being detected
    #: (``recompute_routes`` called) and the new tables being installed.
    #: 0 (default) reinstalls instantaneously, the historical behaviour.
    convergence_delay_s: float = 0.0
    #: optional seeded jitter: each install's lag is drawn uniformly from
    #: ``[delay, delay * (1 + jitter)]`` using the network's random streams.
    convergence_jitter: float = 0.0
    #: ECN/PCN marking on switch egress queues.  Off by default so every
    #: pre-existing scenario stays byte-identical; host NIC queues never
    #: mark regardless (a host does not congest its own egress).
    ecn_enabled: bool = False
    #: instantaneous data-queue depth (packets) at which arriving data
    #: packets get the CE bit.
    ecn_threshold_packets: int = 4
    #: weight of the newest depth sample in the marking EWMA.
    ecn_ewma_weight: float = 0.2

    def __post_init__(self) -> None:
        check_positive("link_rate_bps", self.link_rate_bps)
        if self.link_delay_s < 0:
            raise ValueError("link_delay_s cannot be negative")
        if self.switch_queue not in ("trimming", "droptail"):
            raise ValueError("switch_queue must be 'trimming' or 'droptail'")
        check_positive("data_queue_capacity_packets", self.data_queue_capacity_packets)
        check_positive("header_queue_capacity_packets", self.header_queue_capacity_packets)
        check_positive("droptail_capacity_packets", self.droptail_capacity_packets)
        if self.convergence_delay_s < 0:
            raise ValueError("convergence_delay_s cannot be negative")
        if self.convergence_jitter < 0:
            raise ValueError("convergence_jitter cannot be negative")
        check_positive("ecn_threshold_packets", self.ecn_threshold_packets)
        if not (0.0 < self.ecn_ewma_weight <= 1.0):
            raise ValueError("ecn_ewma_weight must be in (0, 1]")


class Network:
    """A fully wired simulated network."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        streams: Optional[RandomStreams] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.config = config or NetworkConfig()
        self.streams = streams or RandomStreams(master_seed=0)
        self.trace = trace if trace is not None else TraceLog(enabled=False)

        self.routing_table = RoutingTable(topology)
        self.hosts: list[Host] = []
        self._host_by_name: dict[str, Host] = {}
        self.switches: dict[str, Switch] = {}
        self._groups: dict[int, MulticastGroup] = {}
        self._next_node_id = 0
        #: directed wires and ports keyed by (src name, dst name) -- the
        #: registries the fault API addresses full-duplex links through
        self._links: dict[tuple[str, str], Link] = {}
        self._directed_ports: dict[tuple[str, str], Port] = {}
        self._failed_edges: set[frozenset[str]] = set()
        self._failed_switches: set[str] = set()
        #: routing-convergence state: every recompute gets an epoch; a
        #: pending (delayed) install is skipped if a newer epoch installed
        #: first, so stale tables never overwrite fresher ones.
        self._route_epoch = 0
        self._installed_epoch = 0
        #: recomputed tables actually installed (delayed or instantaneous)
        self.route_installs = 0
        #: lazily built healthy-topology routing table, used as the tree
        #: fallback when a multicast group is created while a receiver is
        #: unreachable (see create_multicast_group)
        self._baseline_routing: Optional[RoutingTable] = None

        self._build_nodes()
        self._build_links()
        self._install_routes()

    # Construction --------------------------------------------------------------

    def _new_marker(self) -> Optional[EcnMarker]:
        if not self.config.ecn_enabled:
            return None
        return EcnMarker(
            threshold_packets=self.config.ecn_threshold_packets,
            ewma_weight=self.config.ecn_ewma_weight,
        )

    def _new_queue(self):
        if self.config.switch_queue == "trimming":
            return TrimmingQueue(
                data_capacity_packets=self.config.data_queue_capacity_packets,
                header_capacity_packets=self.config.header_queue_capacity_packets,
                marker=self._new_marker(),
            )
        return DropTailQueue(
            capacity_packets=self.config.droptail_capacity_packets,
            marker=self._new_marker(),
        )

    def _build_nodes(self) -> None:
        for host_name in self.topology.hosts:
            host = Host(self.sim, self._next_node_id, host_name, trace=self.trace)
            self._next_node_id += 1
            self.hosts.append(host)
            self._host_by_name[host_name] = host
        for switch_name in self.topology.switches:
            switch = Switch(
                self.sim,
                self._next_node_id,
                switch_name,
                routing_mode=self.config.routing_mode,
                rng=self.streams.stream(f"switch.{switch_name}"),
                trace=self.trace,
            )
            self._next_node_id += 1
            self.switches[switch_name] = switch

    def _node_by_name(self, name: str) -> Union[Host, Switch]:
        if name in self._host_by_name:
            return self._host_by_name[name]
        return self.switches[name]

    def _build_links(self) -> None:
        for name_a, name_b in self.topology.graph.edges:
            self._wire_direction(name_a, name_b)
            self._wire_direction(name_b, name_a)

    def _wire_direction(self, src_name: str, dst_name: str) -> None:
        src = self._node_by_name(src_name)
        dst = self._node_by_name(dst_name)
        link = Link(self.sim, dst, self.config.link_delay_s, name=f"{src_name}->{dst_name}")
        if isinstance(src, Host):
            # A host never trims or drops its own traffic: the NIC queue is a
            # deep FIFO and senders pace themselves (initial window at line
            # rate, then pull-clocked / cwnd-clocked).
            queue = DropTailQueue(capacity_packets=100_000)
        else:
            queue = self._new_queue()
        port = Port(
            self.sim,
            owner=src,
            queue=queue,
            rate_bps=self.config.link_rate_bps,
            link=link,
            name=f"{src_name}->{dst_name}",
        )
        if isinstance(src, Host):
            src.attach_nic(port)
        else:
            src.add_port(dst_name, port)
        self._links[(src_name, dst_name)] = link
        self._directed_ports[(src_name, dst_name)] = port

    def _install_routes(self) -> None:
        for switch_name, switch in self.switches.items():
            for host in self.hosts:
                hops = self.routing_table.next_hops_or_empty(switch_name, host.name)
                if hops:
                    switch.set_next_hops(host.node_id, hops)

    # Lookup ----------------------------------------------------------------------

    def host(self, key: Union[int, str]) -> Host:
        """Return a host by integer id or by name."""
        if isinstance(key, int):
            return self.hosts[key]
        return self._host_by_name[key]

    def host_id(self, name: str) -> int:
        """Return the integer id of a host name."""
        return self._host_by_name[name].node_id

    @property
    def num_hosts(self) -> int:
        """Number of hosts in the network."""
        return len(self.hosts)

    @property
    def directed_ports(self) -> dict[tuple[str, str], Port]:
        """Every directed egress port keyed by (src name, dst name).

        A shallow copy of the registry the fault API addresses links
        through; the telemetry sampler enumerates it once per run to build
        its per-port probe list.
        """
        return dict(self._directed_ports)

    @property
    def host_names(self) -> list[str]:
        """Names of all hosts, ordered by host id."""
        return [host.name for host in self.hosts]

    # Multicast ---------------------------------------------------------------------

    def create_multicast_group(
        self, group_id: int, source_host: str, receiver_hosts: list[str]
    ) -> MulticastGroup:
        """Install a multicast group: build its tree and program every switch.

        A group created while some receiver is currently unreachable (e.g.
        its rack lost power the moment the transfer started) falls back to
        the tree of the *healthy* topology: packets toward the dead part
        black-hole and are counted by the fabric, and the next routing
        recompute rebuilds the tree on the surviving graph -- the same
        contract as a group whose receivers die after creation.
        """
        if group_id in self._groups:
            raise ValueError(f"multicast group {group_id} already exists")
        try:
            group = build_multicast_tree(
                self.topology, self.routing_table, group_id, source_host, receiver_hosts
            )
        except KeyError:
            if self._baseline_routing is None:
                self._baseline_routing = RoutingTable(self.topology)
            group = build_multicast_tree(
                self.topology, self._baseline_routing, group_id, source_host,
                receiver_hosts,
            )
            self.trace.record(
                self.sim.now, "network.group_built_on_baseline", group=group_id
            )
        for node_name, children in group_table_entries(group).items():
            if node_name in self.switches:
                self.switches[node_name].set_group_ports(group_id, children)
        for receiver in receiver_hosts:
            self._host_by_name[receiver].join_group(group_id)
        self._groups[group_id] = group
        return group

    def remove_multicast_group(self, group_id: int) -> None:
        """Uninstall a multicast group from switches and receivers."""
        group = self._groups.pop(group_id, None)
        if group is None:
            return
        for node_name in {parent for parent, _ in group.tree_edges}:
            if node_name in self.switches:
                self.switches[node_name].set_group_ports(group_id, ())
        for receiver in group.receiver_hosts:
            self._host_by_name[receiver].leave_group(group_id)

    def multicast_group(self, group_id: int) -> MulticastGroup:
        """Return an installed group (KeyError if unknown)."""
        return self._groups[group_id]

    # Dynamic faults ----------------------------------------------------------------
    #
    # These are the hooks the FaultInjector drives.  State-changing calls do
    # NOT recompute routes by themselves: the injector batches a topology
    # change and then calls recompute_routes() once, so an event that fails a
    # switch and three links pays for one rebuild.

    def link_between(self, src_name: str, dst_name: str) -> Link:
        """The directed wire from ``src_name`` to ``dst_name`` (KeyError if not wired)."""
        return self._links[(src_name, dst_name)]

    def set_link_state(self, name_a: str, name_b: str, up: bool) -> None:
        """Fail or restore the full-duplex link between two nodes.

        Both unidirectional wires die together (a cut cable, not a one-way
        fault); packets in flight on either direction are dropped at their
        delivery time and counted per wire.
        """
        if (name_a, name_b) not in self._links:
            raise KeyError(f"no link between {name_a!r} and {name_b!r}")
        for src, dst in ((name_a, name_b), (name_b, name_a)):
            self._links[(src, dst)].set_state(up)
        edge = frozenset((name_a, name_b))
        if up:
            self._failed_edges.discard(edge)
        else:
            self._failed_edges.add(edge)

    def degrade_link(self, name_a: str, name_b: str, rate_fraction: float) -> None:
        """Degrade both directions of a link to a fraction of nominal rate (1.0 restores)."""
        if (name_a, name_b) not in self._directed_ports:
            raise KeyError(f"no link between {name_a!r} and {name_b!r}")
        for src, dst in ((name_a, name_b), (name_b, name_a)):
            self._directed_ports[(src, dst)].set_rate_fraction(rate_fraction)

    def set_link_loss(self, name_a: str, name_b: str, probability: float) -> None:
        """Give both directions of a link an elevated random loss probability (0 clears).

        Per-packet draws come from a named stream of the network's seeded
        :class:`~repro.sim.randomness.RandomStreams`, so loss patterns are a
        pure function of the experiment seed.
        """
        if (name_a, name_b) not in self._links:
            raise KeyError(f"no link between {name_a!r} and {name_b!r}")
        for src, dst in ((name_a, name_b), (name_b, name_a)):
            rng = self.streams.stream(f"faults.loss.{src}->{dst}") if probability > 0 else None
            self._links[(src, dst)].set_loss(probability, rng)

    def set_switch_failed(self, switch_name: str, failed: bool) -> None:
        """Fail or restore a whole switch (it black-holes traffic while down)."""
        self.switches[switch_name].set_failed(failed)
        if failed:
            self._failed_switches.add(switch_name)
        else:
            self._failed_switches.discard(switch_name)

    def slow_host(self, host_name: str, rate_fraction: float) -> None:
        """Degrade a host's NIC to a fraction of nominal rate (1.0 restores).

        This is the declarative way to create a straggler: the slowed host
        pulls symbols late, and the detection side
        (:class:`repro.core.straggler.StragglerPolicy`) detaches it from
        multicast groups exactly as it would a naturally slow receiver.
        """
        self._host_by_name[host_name].nic.set_rate_fraction(rate_fraction)

    @property
    def failed_edges(self) -> frozenset[frozenset[str]]:
        """Currently failed full-duplex links (as unordered name pairs)."""
        return frozenset(self._failed_edges)

    @property
    def failed_switches(self) -> frozenset[str]:
        """Currently failed switches."""
        return frozenset(self._failed_switches)

    def recompute_routes(self, on_installed: Optional[Callable[[int], None]] = None) -> int:
        """Rebuild routing on the surviving topology, honouring convergence lag.

        With ``convergence_delay_s == 0`` (the default) the rebuild installs
        immediately and the number of changed table entries is returned, as
        it always was.  With a positive delay this only *snapshots* the
        failure state (what the control plane detected) and schedules the
        install after the lag -- the function returns 0 and the fabric keeps
        forwarding on its stale tables until the install lands, black-holing
        traffic pointed at dead elements in the meantime.  ``on_installed``
        (when given) receives the changed-entry count at actual install
        time, in both modes; a pending install that is superseded by a newer
        recompute, or outlived by the run, never reports.

        The unicast ECMP table is rebuilt excluding failed links and switches
        and re-installed switch by switch (entries for now-unreachable hosts
        become empty sets the forwarding path counts as ``no_route`` drops).
        Every installed multicast tree is then rebuilt on the new table; a
        group whose receivers became unreachable keeps its old tree (packets
        toward the dead part are dropped by the fabric) and is retried on the
        next recompute.
        """
        self._route_epoch += 1
        delay = self.config.convergence_delay_s
        if delay <= 0:
            self._installed_epoch = self._route_epoch
            changed = self._install_routes_for(self._failed_edges, self._failed_switches)
            if on_installed is not None:
                on_installed(changed)
            return changed
        lag = delay
        if self.config.convergence_jitter > 0:
            lag *= 1.0 + self.streams.stream("network.convergence").uniform(
                0.0, self.config.convergence_jitter
            )
        self.trace.record(
            self.sim.now, "network.convergence_pending",
            epoch=self._route_epoch, lag=lag,
        )
        self.sim.schedule(
            lag,
            self._install_converged_routes,
            self._route_epoch,
            frozenset(self._failed_edges),
            frozenset(self._failed_switches),
            on_installed,
        )
        return 0

    def _install_converged_routes(
        self,
        epoch: int,
        failed_edges: frozenset[frozenset[str]],
        failed_switches: frozenset[str],
        on_installed: Optional[Callable[[int], None]],
    ) -> None:
        """Install tables computed from a detection-time snapshot (delayed path)."""
        if epoch <= self._installed_epoch:
            # A newer recompute (shorter jittered lag) already installed
            # fresher tables; installing this stale snapshot would regress.
            return
        self._installed_epoch = epoch
        changed = self._install_routes_for(failed_edges, failed_switches)
        self.trace.record(
            self.sim.now, "network.convergence_installed", epoch=epoch, changed=changed
        )
        if on_installed is not None:
            on_installed(changed)

    def _install_routes_for(
        self,
        failed_edges: Iterable[frozenset[str]],
        failed_switches: Iterable[str],
    ) -> int:
        """Rebuild + install unicast tables and multicast trees; count changes."""
        self.routing_table.rebuild(failed_edges, failed_switches)
        changed = 0
        for switch_name, switch in self.switches.items():
            table = {
                host.node_id: self.routing_table.next_hops_or_empty(switch_name, host.name)
                for host in self.hosts
            }
            changed += switch.replace_unicast_table(table)
        self._reinstall_multicast_groups()
        self.route_installs += 1
        return changed

    @property
    def pending_route_installs(self) -> int:
        """Recomputes whose tables have not been installed (or were superseded) yet."""
        return self._route_epoch - self._installed_epoch

    def _reinstall_multicast_groups(self) -> None:
        for group_id, group in list(self._groups.items()):
            try:
                rebuilt = build_multicast_tree(
                    self.topology,
                    self.routing_table,
                    group_id,
                    group.source_host,
                    list(group.receiver_hosts),
                )
            except KeyError:
                self.trace.record(
                    self.sim.now, "network.group_rebuild_failed", group=group_id
                )
                continue
            for node_name in {parent for parent, _ in group.tree_edges}:
                if node_name in self.switches:
                    self.switches[node_name].set_group_ports(group_id, ())
            for node_name, children in group_table_entries(rebuilt).items():
                if node_name in self.switches:
                    self.switches[node_name].set_group_ports(group_id, children)
            self._groups[group_id] = rebuilt

    # Aggregate statistics -------------------------------------------------------------

    @property
    def total_trimmed_packets(self) -> int:
        """Packets trimmed across every switch queue in the fabric."""
        return sum(switch.total_trimmed for switch in self.switches.values())

    @property
    def total_dropped_packets(self) -> int:
        """Packets dropped across every switch queue in the fabric."""
        return sum(switch.total_dropped for switch in self.switches.values())

    @property
    def total_forwarded_packets(self) -> int:
        """Packets forwarded by all switches."""
        return sum(switch.forwarded_packets for switch in self.switches.values())

    @property
    def total_ecn_marked(self) -> int:
        """Packets CE-marked across every switch queue in the fabric."""
        return sum(switch.total_ecn_marked for switch in self.switches.values())

    @property
    def total_dropped_link_down(self) -> int:
        """Packets dropped because their wire was down (including in-flight ones)."""
        return sum(link.dropped_link_down for link in self._links.values())

    @property
    def total_dropped_random_loss(self) -> int:
        """Packets dropped by injected random loss across every wire."""
        return sum(link.dropped_random_loss for link in self._links.values())

    @property
    def total_dropped_switch_down(self) -> int:
        """Packets black-holed by failed switches."""
        return sum(switch.dropped_switch_down for switch in self.switches.values())

    @property
    def degraded_ports(self) -> int:
        """Directed ports currently running below design rate (gray failures)."""
        return sum(1 for port in self._directed_ports.values() if port.is_degraded)
