"""Packet-level data-centre network substrate.

The substrate models exactly what the paper's OMNeT++ evaluation relies on:

* **FatTree / leaf-spine topologies** with uniform link speeds and delays
  (:mod:`repro.network.topology`);
* **switches** with either NDP-style two-queue ports (bounded data queue +
  priority header queue + packet trimming) or classic drop-tail ports
  (:mod:`repro.network.switch`, :mod:`repro.network.queues`);
* **routing** with per-flow ECMP or per-packet spraying across all equal-cost
  next hops (:mod:`repro.network.routing`);
* **native multicast**: group tables in switches and shared-tree replication
  (:mod:`repro.network.multicast`);
* **hosts** with a single NIC that dispatches packets to registered transport
  protocols (:mod:`repro.network.host`).

A :class:`~repro.network.network.Network` object wires all of this to one
:class:`~repro.sim.engine.Simulator` instance.
"""

from repro.network.network import Network, NetworkConfig
from repro.network.packet import Packet, PacketKind
from repro.network.queues import DropTailQueue, TrimmingQueue
from repro.network.routing import RoutingMode
from repro.network.topology import FatTreeTopology, LeafSpineTopology, Topology

__all__ = [
    "Network",
    "NetworkConfig",
    "Packet",
    "PacketKind",
    "DropTailQueue",
    "TrimmingQueue",
    "RoutingMode",
    "Topology",
    "FatTreeTopology",
    "LeafSpineTopology",
]
