"""Egress ports and links.

A :class:`Port` is an egress interface of a node: it owns a queue discipline
and a transmitter that serialises one packet at a time at the link rate.  A
:class:`Link` is the unidirectional wire between a port and the remote node:
it only adds propagation delay.  Full-duplex links are modelled as two
independent ports/links, which is how data-centre Ethernet behaves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Simulator
from repro.utils.units import serialization_delay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.network.node import Node
    from repro.network.queues import QueueDiscipline
    from repro.network.packet import Packet


class Link:
    """A unidirectional wire: fixed propagation delay towards a destination node."""

    def __init__(self, sim: Simulator, dst_node: "Node", delay_s: float, name: str = "") -> None:
        if delay_s < 0:
            raise ValueError("link delay cannot be negative")
        self._sim = sim
        self.dst_node = dst_node
        self.delay_s = delay_s
        self.name = name or f"link->{dst_node.name}"
        self.delivered_packets = 0
        self.delivered_bytes = 0

    def carry(self, packet: "Packet") -> None:
        """Propagate a fully serialised packet to the remote node."""
        self._sim.schedule(self.delay_s, self._deliver, packet)

    def _deliver(self, packet: "Packet") -> None:
        self.delivered_packets += 1
        self.delivered_bytes += packet.size_bytes
        packet.hops += 1
        self.dst_node.receive(packet)


class Port:
    """An egress port: queue discipline + serialiser + attached link."""

    def __init__(
        self,
        sim: Simulator,
        owner: "Node",
        queue: "QueueDiscipline",
        rate_bps: float,
        link: Link,
        name: str = "",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("port rate must be positive")
        self._sim = sim
        self.owner = owner
        self.queue = queue
        self.rate_bps = rate_bps
        self.link = link
        self.name = name or f"{owner.name}->{link.dst_node.name}"
        self._transmitting = False
        self.transmitted_packets = 0
        self.transmitted_bytes = 0

    @property
    def remote_node(self) -> "Node":
        """The node at the far end of this port's link."""
        return self.link.dst_node

    @property
    def busy(self) -> bool:
        """Whether the transmitter is currently serialising a packet."""
        return self._transmitting

    def send(self, packet: "Packet") -> bool:
        """Queue a packet for transmission; returns False if it was dropped."""
        accepted = self.queue.enqueue(packet)
        if accepted is None:
            return False
        if not self._transmitting:
            self._start_next_transmission()
        return True

    def _start_next_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._transmitting = False
            return
        self._transmitting = True
        delay = serialization_delay(packet.size_bytes, self.rate_bps)
        self._sim.schedule(delay, self._finish_transmission, packet)

    def _finish_transmission(self, packet: "Packet") -> None:
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size_bytes
        self.link.carry(packet)
        self._start_next_transmission()
