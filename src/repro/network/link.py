"""Egress ports and links.

A :class:`Port` is an egress interface of a node: it owns a queue discipline
and a transmitter that serialises one packet at a time at the link rate.  A
:class:`Link` is the unidirectional wire between a port and the remote node:
it only adds propagation delay.  Full-duplex links are modelled as two
independent ports/links, which is how data-centre Ethernet behaves.

Both classes expose dynamic hooks for the fault-injection subsystem
(:mod:`repro.faults`): a link can be taken down (packets sent onto or already
in flight on a dead link are dropped and counted) or given an elevated random
loss probability, and a port's transmit rate can be degraded to a fraction of
its nominal rate.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.sim.engine import Simulator
from repro.utils.units import serialization_delay

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.network.node import Node
    from repro.network.queues import QueueDiscipline
    from repro.network.packet import Packet


class Link:
    """A unidirectional wire: fixed propagation delay towards a destination node."""

    def __init__(self, sim: Simulator, dst_node: "Node", delay_s: float, name: str = "") -> None:
        if delay_s < 0:
            raise ValueError("link delay cannot be negative")
        self._sim = sim
        self.dst_node = dst_node
        self.delay_s = delay_s
        self.name = name or f"link->{dst_node.name}"
        self.delivered_packets = 0
        self.delivered_bytes = 0
        #: dynamic fault state -- see :meth:`set_state` / :meth:`set_loss`
        self.up = True
        self.loss_probability = 0.0
        self._loss_rng: Optional[random.Random] = None
        self._down_epochs = 0
        self.dropped_link_down = 0
        self.dropped_random_loss = 0

    def set_state(self, up: bool) -> None:
        """Take the wire down (or bring it back up).

        While down, packets handed to :meth:`carry` are dropped immediately
        and packets already propagating are dropped at their delivery time --
        a dead wire delivers nothing, including traffic that was in flight
        when it died (even if the wire recovers before the delivery time).
        """
        if self.up and not up:
            self._down_epochs += 1
        self.up = up

    @property
    def flaps(self) -> int:
        """How many times this wire has gone down (up->down transitions)."""
        return self._down_epochs

    def set_loss(self, probability: float, rng: Optional[random.Random]) -> None:
        """Configure elevated random loss (0 restores the loss-free wire).

        ``rng`` supplies the per-packet draws so the randomness stays under
        the experiment's seed control; it may be ``None`` when ``probability``
        is 0.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability}")
        if probability > 0.0 and rng is None:
            raise ValueError("a loss probability > 0 requires an rng")
        self.loss_probability = probability
        self._loss_rng = rng

    def carry(self, packet: "Packet") -> None:
        """Propagate a fully serialised packet to the remote node."""
        if not self.up:
            self.dropped_link_down += 1
            return
        self._sim.schedule(self.delay_s, self._deliver, packet, self._down_epochs)

    def _deliver(self, packet: "Packet", epoch: int) -> None:
        if not self.up or epoch != self._down_epochs:
            # The link is down, or died at some point while this packet was
            # in flight (a down/up cycle faster than the propagation delay
            # still kills whatever was on the wire).
            self.dropped_link_down += 1
            return
        if (
            self.loss_probability > 0.0
            and self._loss_rng is not None
            and self._loss_rng.random() < self.loss_probability
        ):
            self.dropped_random_loss += 1
            return
        self.delivered_packets += 1
        self.delivered_bytes += packet.size_bytes
        packet.hops += 1
        self.dst_node.receive(packet)


class Port:
    """An egress port: queue discipline + serialiser + attached link."""

    def __init__(
        self,
        sim: Simulator,
        owner: "Node",
        queue: "QueueDiscipline",
        rate_bps: float,
        link: Link,
        name: str = "",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("port rate must be positive")
        self._sim = sim
        self.owner = owner
        self.queue = queue
        self.rate_bps = rate_bps
        #: design rate; :meth:`set_rate_fraction` degrades relative to this
        self.nominal_rate_bps = rate_bps
        self.link = link
        self.name = name or f"{owner.name}->{link.dst_node.name}"
        self._transmitting = False
        self.transmitted_packets = 0
        self.transmitted_bytes = 0

    @property
    def remote_node(self) -> "Node":
        """The node at the far end of this port's link."""
        return self.link.dst_node

    @property
    def busy(self) -> bool:
        """Whether the transmitter is currently serialising a packet."""
        return self._transmitting

    @property
    def is_degraded(self) -> bool:
        """Whether the port currently runs below its design rate (gray failures)."""
        return self.rate_bps < self.nominal_rate_bps

    def set_rate_fraction(self, fraction: float) -> None:
        """Degrade (or restore, with 1.0) the transmit rate to a fraction of nominal.

        The packet currently being serialised keeps its already-scheduled
        finish time; every subsequent packet serialises at the new rate.
        """
        if fraction <= 0:
            raise ValueError(f"rate fraction must be positive, got {fraction}")
        self.rate_bps = self.nominal_rate_bps * fraction

    def send(self, packet: "Packet") -> bool:
        """Queue a packet for transmission; returns False if it was dropped."""
        accepted = self.queue.enqueue(packet)
        if accepted is None:
            return False
        if not self._transmitting:
            self._start_next_transmission()
        return True

    def _start_next_transmission(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._transmitting = False
            return
        self._transmitting = True
        delay = serialization_delay(packet.size_bytes, self.rate_bps)
        self._sim.schedule(delay, self._finish_transmission, packet)

    def _finish_transmission(self, packet: "Packet") -> None:
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size_bytes
        self.link.carry(packet)
        self._start_next_transmission()
