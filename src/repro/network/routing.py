"""Routing: equal-cost next-hop computation and next-hop selection policies.

The routing table is computed once from the topology: for every switch and
every destination host, the set of neighbour nodes that lie on *some*
shortest path to that host.  At forwarding time a switch picks one next hop
according to the configured :class:`RoutingMode`:

* ``ECMP_FLOW``     -- a hash of (flow id, src, dst) picks a consistent next
  hop per flow; this is how the TCP baseline is routed (per-flow ECMP).
* ``PACKET_SPRAY``  -- a uniformly random next hop per packet; this is the
  multipath symbol spraying Polyraptor relies on.
* ``SINGLE_PATH``   -- always the first next hop; useful for debugging and
  for constructing deterministic multicast trees.

The table is no longer static: :meth:`RoutingTable.rebuild` recomputes every
next-hop set on the *surviving* topology (the base graph minus failed links
and failed switches), which is how the fault-injection subsystem
(:mod:`repro.faults`) reroutes traffic after a topology change.  Rebuilding
with no failures restores exactly the original table.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

import networkx as nx

from repro.network.topology import Topology


class RoutingMode(str, Enum):
    """Next-hop selection policy."""

    ECMP_FLOW = "ecmp_flow"
    PACKET_SPRAY = "packet_spray"
    SINGLE_PATH = "single_path"


class RoutingTable:
    """Per-switch equal-cost next hops toward every host.

    ``failed_edges`` / ``failed_nodes`` describe the current topology damage:
    routes are computed on the base graph with those links and switches
    removed.  A host that is unreachable from a switch simply has no entry
    (looked up through :meth:`next_hops_or_empty`, which returns an empty
    tuple the forwarding path treats as "no route").
    """

    def __init__(
        self,
        topology: Topology,
        failed_edges: Iterable[tuple[str, str]] = (),
        failed_nodes: Iterable[str] = (),
    ) -> None:
        self._topology = topology
        self._failed_edges = self._normalise_edges(failed_edges)
        self._failed_nodes = frozenset(failed_nodes)
        self._graph: nx.Graph = topology.graph
        #: next_hops[switch_name][host_name] -> tuple of neighbour names
        self._next_hops: dict[str, dict[str, tuple[str, ...]]] = {}
        self._build()

    @staticmethod
    def _normalise_edges(edges: Iterable[Iterable[str]]) -> frozenset[frozenset[str]]:
        return frozenset(frozenset(edge) for edge in edges)

    @property
    def graph(self) -> nx.Graph:
        """The effective (surviving) graph the current routes were computed on."""
        return self._graph

    @property
    def failed_edges(self) -> frozenset[frozenset[str]]:
        """The failed links the current routes were computed around."""
        return self._failed_edges

    @property
    def failed_nodes(self) -> frozenset[str]:
        """The failed switches the current routes were computed around."""
        return self._failed_nodes

    def rebuild(
        self,
        failed_edges: Iterable[tuple[str, str]] = (),
        failed_nodes: Iterable[str] = (),
    ) -> None:
        """Recompute every next-hop set on the surviving topology.

        Rebuilding with the same failure sets is idempotent, and rebuilding
        with empty sets restores the pre-failure table exactly (next-hop sets
        are sorted tuples, so equality is well defined).
        """
        self._failed_edges = self._normalise_edges(failed_edges)
        self._failed_nodes = frozenset(failed_nodes)
        self._build()

    def _build(self) -> None:
        base = self._topology.graph
        if self._failed_edges or self._failed_nodes:
            graph = nx.restricted_view(
                base,
                tuple(sorted(self._failed_nodes)),
                tuple(tuple(sorted(edge)) for edge in self._failed_edges),
            )
        else:
            graph = base
        self._graph = graph
        self._next_hops = {switch: {} for switch in self._topology.switches}
        live_switches = set(self._topology.switches) - set(self._failed_nodes)
        for host in self._topology.hosts:
            distances = nx.single_source_shortest_path_length(graph, host)
            for switch in live_switches:
                switch_distance = distances.get(switch)
                if switch_distance is None:
                    continue
                hops = tuple(
                    sorted(
                        neighbour
                        for neighbour in graph.neighbors(switch)
                        if distances.get(neighbour, float("inf")) == switch_distance - 1
                    )
                )
                self._next_hops[switch][host] = hops

    def next_hops(self, switch_name: str, host_name: str) -> tuple[str, ...]:
        """All equal-cost next hops from ``switch_name`` toward ``host_name``."""
        try:
            return self._next_hops[switch_name][host_name]
        except KeyError as error:
            raise KeyError(
                f"no route from {switch_name!r} to {host_name!r}"
            ) from error

    def next_hops_or_empty(self, switch_name: str, host_name: str) -> tuple[str, ...]:
        """Like :meth:`next_hops` but returns ``()`` for unreachable pairs.

        Used when (re)installing routes into switches: an empty set makes the
        switch count the packet as ``dropped_no_route`` instead of raising at
        table-build time.
        """
        return self._next_hops.get(switch_name, {}).get(host_name, ())

    def path(self, src_host: str, dst_host: str, tie_break: int = 0) -> list[str]:
        """Return one deterministic shortest path between two hosts.

        ``tie_break`` selects among equal-cost next hops at every step, so
        different values yield different (but still shortest) paths; multicast
        tree construction uses the group id as the tie-break to spread trees
        across the fabric.
        """
        if src_host == dst_host:
            return [src_host]
        graph = self._graph
        path = [src_host]
        uplinks = list(graph.neighbors(src_host))
        if not uplinks:
            raise KeyError(f"host {src_host!r} has no live uplink")
        current = uplinks[0]  # host's single uplink
        path.append(current)
        while current != dst_host:
            hops = self.next_hops(current, dst_host)
            if not hops:
                raise KeyError(f"no route from {current!r} to {dst_host!r}")
            if hops[0] == dst_host or dst_host in hops:
                chosen = dst_host
            else:
                chosen = hops[(tie_break + len(path)) % len(hops)]
            path.append(chosen)
            current = chosen
        return path


def stable_hash(*parts: int) -> int:
    """A deterministic integer hash (Python's ``hash`` is salted per process)."""
    value = 0xCBF29CE484222325
    for part in parts:
        for byte in int(part).to_bytes(8, "little", signed=True):
            value ^= byte
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def select_next_hop(
    mode: RoutingMode,
    hops: tuple[str, ...],
    packet_flow_id: int,
    packet_src: int,
    packet_dst: int,
    spray_draw: int,
) -> str:
    """Pick one next hop out of an equal-cost set according to ``mode``.

    ``spray_draw`` is a pre-drawn random integer supplied by the switch (so
    the randomness source stays under the experiment's seed control).
    """
    if not hops:
        raise ValueError("cannot select a next hop from an empty set")
    if len(hops) == 1:
        return hops[0]
    if mode is RoutingMode.SINGLE_PATH:
        return hops[0]
    if mode is RoutingMode.ECMP_FLOW:
        index = stable_hash(packet_flow_id, packet_src, packet_dst) % len(hops)
        return hops[index]
    if mode is RoutingMode.PACKET_SPRAY:
        return hops[spray_draw % len(hops)]
    raise ValueError(f"unknown routing mode {mode!r}")
