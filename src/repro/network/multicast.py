"""Native multicast support: groups and shared distribution trees.

The paper exploits "native support for multicasting in data centres": a
sender transmits one copy of each symbol and the fabric replicates it along a
multicast tree that reaches every receiver (the multicasting model follows
DCCast-style point-to-multipoint trees).

Tree construction here takes the union of one shortest path from the source
to every receiver; the per-group tie-break spreads different groups' trees
across the available core/aggregation switches so concurrent groups do not
all collide on the same links.  Each switch on the tree gets a group-table
entry listing its egress ports for the group; the source's rack switch
forwards a single copy up only when the tree actually needs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.routing import RoutingTable, stable_hash
from repro.network.topology import Topology


@dataclass(frozen=True)
class MulticastGroup:
    """An installed multicast group."""

    group_id: int
    source_host: str
    receiver_hosts: tuple[str, ...]
    #: directed tree edges as (node, child) pairs, rooted at the source host
    tree_edges: tuple[tuple[str, str], ...]

    @property
    def num_receivers(self) -> int:
        """Number of receivers in the group."""
        return len(self.receiver_hosts)


@dataclass
class GroupTable:
    """Per-node multicast egress sets, keyed by group id then node name."""

    egress: dict[int, dict[str, tuple[str, ...]]] = field(default_factory=dict)

    def ports_for(self, group_id: int, node_name: str) -> tuple[str, ...]:
        """Egress neighbours of ``node_name`` for ``group_id`` (empty if none)."""
        return self.egress.get(group_id, {}).get(node_name, ())


def build_multicast_tree(
    topology: Topology,
    routing: RoutingTable,
    group_id: int,
    source_host: str,
    receiver_hosts: list[str],
) -> MulticastGroup:
    """Build a shared tree as the union of source->receiver shortest paths.

    Returns a :class:`MulticastGroup` whose ``tree_edges`` are directed away
    from the source.  Duplicate receivers and receivers equal to the source
    are rejected, mirroring what a storage system's replica placement would
    guarantee.
    """
    if not receiver_hosts:
        raise ValueError("a multicast group needs at least one receiver")
    if len(set(receiver_hosts)) != len(receiver_hosts):
        raise ValueError("receiver hosts must be distinct")
    if source_host in receiver_hosts:
        raise ValueError("the source cannot also be a receiver")

    tie_break = stable_hash(group_id) & 0xFFFF
    edges: set[tuple[str, str]] = set()
    for receiver in receiver_hosts:
        path = routing.path(source_host, receiver, tie_break=tie_break)
        for parent, child in zip(path, path[1:]):
            edges.add((parent, child))
    return MulticastGroup(
        group_id=group_id,
        source_host=source_host,
        receiver_hosts=tuple(receiver_hosts),
        tree_edges=tuple(sorted(edges)),
    )


def group_table_entries(group: MulticastGroup) -> dict[str, tuple[str, ...]]:
    """Convert a tree into per-node egress sets (node name -> child names)."""
    children: dict[str, list[str]] = {}
    for parent, child in group.tree_edges:
        children.setdefault(parent, []).append(child)
    return {node: tuple(sorted(kids)) for node, kids in children.items()}
