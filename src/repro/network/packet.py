"""The packet model shared by every protocol in the simulator.

A single :class:`Packet` class carries the fields the network layer needs
(addresses, size, priority, trim state); each transport attaches its own
protocol-specific payload object (e.g. a Polyraptor symbol descriptor or a
TCP segment descriptor).  Packets are identified by a monotonically
increasing id so traces are easy to follow.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any, Optional

#: Size of every protocol header in bytes (Ethernet + IP + transport header).
DEFAULT_HEADER_BYTES = 64

_packet_ids = itertools.count()


class PacketKind(str, Enum):
    """Coarse classification used by queues and traces."""

    DATA = "data"
    CONTROL = "control"
    HEADER = "header"  # a trimmed data packet: header survived, payload dropped


@dataclass
class Packet:
    """One packet on the wire."""

    protocol: str
    src: int
    dst: Optional[int]
    size_bytes: int
    kind: PacketKind = PacketKind.DATA
    multicast_group: Optional[int] = None
    flow_id: int = 0
    header_bytes: int = DEFAULT_HEADER_BYTES
    priority: bool = False
    trimmed: bool = False
    payload: Any = None
    created_at: float = 0.0
    hops: int = 0
    ce: bool = False  # ECN Congestion Experienced mark, set by marking queues
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_bytes < self.header_bytes:
            raise ValueError(
                f"packet size {self.size_bytes} is smaller than its header "
                f"({self.header_bytes} bytes)"
            )
        if self.dst is None and self.multicast_group is None:
            raise ValueError("a packet needs a unicast destination or a multicast group")

    @property
    def is_multicast(self) -> bool:
        """True if this packet is addressed to a multicast group."""
        return self.multicast_group is not None

    @property
    def payload_bytes(self) -> int:
        """Bytes of payload carried (zero for control packets and trimmed headers)."""
        return max(0, self.size_bytes - self.header_bytes)

    def trim(self) -> "Packet":
        """Return the trimmed version of this packet (header only, priority).

        The original packet object is not modified; switches replace the
        queued packet with the trimmed copy.
        """
        if self.kind is not PacketKind.DATA:
            raise ValueError("only data packets can be trimmed")
        return replace(
            self,
            size_bytes=self.header_bytes,
            kind=PacketKind.HEADER,
            priority=True,
            trimmed=True,
            packet_id=next(_packet_ids),
        )

    def copy_for_replication(self) -> "Packet":
        """Return an independent copy used when a switch replicates a multicast packet."""
        return replace(self, packet_id=next(_packet_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = f"group {self.multicast_group}" if self.is_multicast else f"host {self.dst}"
        flags = []
        if self.priority:
            flags.append("prio")
        if self.trimmed:
            flags.append("trimmed")
        rendered_flags = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"Packet#{self.packet_id}({self.protocol} {self.kind.value} "
            f"{self.src}->{target} {self.size_bytes}B{rendered_flags})"
        )


def make_control_packet(
    protocol: str,
    src: int,
    dst: int,
    payload: Any,
    flow_id: int = 0,
    size_bytes: int = DEFAULT_HEADER_BYTES,
    created_at: float = 0.0,
) -> Packet:
    """Build a small, priority control packet (pull requests, ACKs, ...)."""
    return Packet(
        protocol=protocol,
        src=src,
        dst=dst,
        size_bytes=size_bytes,
        kind=PacketKind.CONTROL,
        flow_id=flow_id,
        priority=True,
        payload=payload,
        created_at=created_at,
    )
