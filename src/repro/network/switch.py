"""Switch models.

A :class:`Switch` forwards unicast packets toward their destination host via
the routing table (one of several equal-cost next hops, chosen by the
configured routing mode) and replicates multicast packets onto every egress
port registered for the packet's group.

Two factory helpers configure the per-port queue discipline:

* trimming switches (NDP-style; Polyraptor runs) via
  :class:`repro.network.queues.TrimmingQueue`;
* drop-tail switches (TCP baseline) via
  :class:`repro.network.queues.DropTailQueue`.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.network.link import Port
from repro.network.node import Node
from repro.network.packet import Packet
from repro.network.queues import DropTailQueue, TrimmingQueue
from repro.network.routing import RoutingMode, select_next_hop
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog

#: Signature of the per-port queue factory used when building a switch.
QueueFactory = Callable[[], object]


class Switch(Node):
    """A store-and-forward switch with per-destination equal-cost next hops."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        name: str,
        routing_mode: RoutingMode,
        rng: random.Random,
        trace: Optional[TraceLog] = None,
    ) -> None:
        super().__init__(sim, node_id, name)
        self.routing_mode = routing_mode
        self._rng = rng
        self._trace = trace if trace is not None else TraceLog(enabled=False)
        #: egress ports keyed by the remote node's name
        self._ports: dict[str, Port] = {}
        #: unicast next hops: dst host id -> tuple of remote node names
        self._next_hops: dict[int, tuple[str, ...]] = {}
        #: multicast egress sets: group id -> tuple of remote node names
        self._group_ports: dict[int, tuple[str, ...]] = {}
        self.forwarded_packets = 0
        self.dropped_no_route = 0
        #: dynamic fault state -- a failed switch drops every arriving packet
        self.failed = False
        self.dropped_switch_down = 0

    # Wiring -----------------------------------------------------------------

    def add_port(self, remote_name: str, port: Port) -> None:
        """Register the egress port that reaches ``remote_name``."""
        self._ports[remote_name] = port

    def port_to(self, remote_name: str) -> Port:
        """Return the egress port toward a neighbour (KeyError if not wired)."""
        return self._ports[remote_name]

    @property
    def ports(self) -> dict[str, Port]:
        """All egress ports keyed by remote node name."""
        return dict(self._ports)

    def set_next_hops(self, dst_host_id: int, remote_names: tuple[str, ...]) -> None:
        """Install the equal-cost next-hop set toward a destination host."""
        self._next_hops[dst_host_id] = remote_names

    def next_hops_toward(self, dst_host_id: int) -> tuple[str, ...]:
        """The installed next-hop set toward a host (empty if none installed)."""
        return self._next_hops.get(dst_host_id, ())

    def unicast_next_hops(self) -> dict[int, tuple[str, ...]]:
        """Snapshot of the whole unicast table (for reroute diffing and tests)."""
        return dict(self._next_hops)

    def replace_unicast_table(self, table: dict[int, tuple[str, ...]]) -> int:
        """Install a freshly computed unicast table in one pass.

        Returns the number of entries that actually changed (the routing
        layer's ``reroutes`` metric).  Destinations absent from ``table``
        keep their current entry; unreachable destinations must be passed
        explicitly as empty tuples so stale routes are cleared.
        """
        changed = 0
        for dst_host_id, remote_names in table.items():
            if self._next_hops.get(dst_host_id, ()) != remote_names:
                self._next_hops[dst_host_id] = remote_names
                changed += 1
        return changed

    def set_failed(self, failed: bool) -> None:
        """Fail (or restore) the whole switch.

        A failed switch black-holes every packet that reaches it; the routing
        layer is expected to recompute next hops around it (see
        :meth:`repro.network.network.Network.recompute_routes`).
        """
        self.failed = failed

    def set_group_ports(self, group_id: int, remote_names: tuple[str, ...]) -> None:
        """Install the multicast egress set for a group."""
        self._group_ports[group_id] = tuple(remote_names)

    def group_ports(self, group_id: int) -> tuple[str, ...]:
        """Return the multicast egress set for a group (empty if not a member)."""
        return self._group_ports.get(group_id, ())

    # Forwarding --------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Forward an arriving packet (unicast or multicast)."""
        if self.failed:
            self.dropped_switch_down += 1
            self._trace.record(
                self.sim.now, "switch.down_drop", switch=self.name, packet=packet.packet_id
            )
            return
        if packet.is_multicast:
            self._forward_multicast(packet)
        else:
            self._forward_unicast(packet)

    def _forward_unicast(self, packet: Packet) -> None:
        hops = self._next_hops.get(packet.dst)
        if not hops:
            self.dropped_no_route += 1
            self._trace.record(self.sim.now, "switch.no_route", switch=self.name, dst=packet.dst)
            return
        remote = select_next_hop(
            self.routing_mode,
            hops,
            packet_flow_id=packet.flow_id,
            packet_src=packet.src,
            packet_dst=packet.dst if packet.dst is not None else -1,
            spray_draw=self._rng.getrandbits(30),
        )
        self._transmit(packet, remote)

    def _forward_multicast(self, packet: Packet) -> None:
        remotes = self._group_ports.get(packet.multicast_group, ())
        if not remotes:
            self.dropped_no_route += 1
            self._trace.record(
                self.sim.now, "switch.no_group", switch=self.name, group=packet.multicast_group
            )
            return
        for index, remote in enumerate(remotes):
            copy = packet if index == len(remotes) - 1 else packet.copy_for_replication()
            self._transmit(copy, remote)

    def _transmit(self, packet: Packet, remote_name: str) -> None:
        port = self._ports.get(remote_name)
        if port is None:
            self.dropped_no_route += 1
            self._trace.record(
                self.sim.now, "switch.no_port", switch=self.name, remote=remote_name
            )
            return
        self.forwarded_packets += 1
        queue = port.queue
        trimmed_before = getattr(queue, "trimmed_packets", 0)
        dropped_before = getattr(queue, "dropped_packets", 0)
        accepted = port.send(packet)
        if getattr(queue, "trimmed_packets", 0) > trimmed_before:
            self._trace.record(
                self.sim.now, "switch.trim", switch=self.name, port=port.name,
                packet=packet.packet_id, flow=packet.flow_id,
            )
        if not accepted or getattr(queue, "dropped_packets", 0) > dropped_before:
            self._trace.record(
                self.sim.now, "switch.drop", switch=self.name, port=port.name,
                packet=packet.packet_id, flow=packet.flow_id,
            )

    # Statistics ---------------------------------------------------------------

    @property
    def total_trimmed(self) -> int:
        """Packets trimmed across all this switch's egress queues."""
        return sum(getattr(port.queue, "trimmed_packets", 0) for port in self._ports.values())

    @property
    def total_dropped(self) -> int:
        """Packets dropped across all this switch's egress queues."""
        return sum(getattr(port.queue, "dropped_packets", 0) for port in self._ports.values())

    @property
    def total_ecn_marked(self) -> int:
        """Packets CE-marked across all this switch's egress queues."""
        return sum(getattr(port.queue, "ecn_marked", 0) for port in self._ports.values())


def trimming_queue_factory(
    data_capacity_packets: int = 8,
    header_capacity_packets: int = 1000,
    marker_factory: Optional[Callable[[], object]] = None,
) -> QueueFactory:
    """Return a factory producing NDP-style trimming queues.

    ``marker_factory`` (when given) builds a fresh per-queue
    :class:`repro.network.queues.EcnMarker` for every port.
    """
    def factory() -> TrimmingQueue:
        return TrimmingQueue(
            data_capacity_packets=data_capacity_packets,
            header_capacity_packets=header_capacity_packets,
            marker=marker_factory() if marker_factory is not None else None,
        )
    return factory


def droptail_queue_factory(
    capacity_packets: int = 100,
    marker_factory: Optional[Callable[[], object]] = None,
) -> QueueFactory:
    """Return a factory producing classic drop-tail queues.

    ``marker_factory`` (when given) builds a fresh per-queue
    :class:`repro.network.queues.EcnMarker` for every port.
    """
    def factory() -> DropTailQueue:
        return DropTailQueue(
            capacity_packets=capacity_packets,
            marker=marker_factory() if marker_factory is not None else None,
        )
    return factory
