"""Polyraptor: the paper's receiver-driven, RaptorQ-coded transport.

The protocol is implemented as one :class:`~repro.core.agent.PolyraptorAgent`
per host.  An agent owns:

* the host's single **pull pacer** (:mod:`repro.core.pull_queue`), shared by
  every session terminating at that host, which paces pull requests so the
  aggregate symbol arrival rate matches the host's link capacity;
* **sender sessions** (:mod:`repro.core.sender`): push a window of encoding
  symbols at line rate for the first RTT, then emit one new symbol per pull;
  multicast senders aggregate pulls from all receivers, multi-source senders
  serve a disjoint partition of the symbol space;
* **receiver sessions** (:mod:`repro.core.receiver`): count (or actually
  decode) received symbols, issue a pull for every full or trimmed symbol
  that arrives, and declare completion once the block is decodable.

Sessions are one-to-many (replication / multicast), many-to-one
(multi-source fetch) or one-to-one (plain unicast, a specialisation of both).
"""

from repro.core.agent import POLYRAPTOR_PROTOCOL, PolyraptorAgent
from repro.core.config import PolyraptorConfig
from repro.core.packets import (
    DoneAckPayload,
    DonePayload,
    PullPayload,
    RequestPayload,
    SymbolPayload,
)
from repro.core.pull_queue import PullPacer
from repro.core.receiver import ReceiverSession
from repro.core.sender import SenderSession
from repro.core.straggler import StragglerPolicy

__all__ = [
    "POLYRAPTOR_PROTOCOL",
    "PolyraptorAgent",
    "PolyraptorConfig",
    "PullPacer",
    "SenderSession",
    "ReceiverSession",
    "StragglerPolicy",
    "SymbolPayload",
    "PullPayload",
    "RequestPayload",
    "DoneAckPayload",
    "DonePayload",
]
