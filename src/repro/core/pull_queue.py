"""The per-host pull pacer (sim binding of the shared paced pull queue).

All of the queueing/fairness/pacing logic lives in
:class:`repro.protocol.pacer.PacedPullQueue`; this subclass binds it to a
simulated host: the base interval is the serialisation time of one symbol
packet on the host's link, pulls are scheduled on the simulator's event
heap and sent through the host's NIC.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import PolyraptorConfig
from repro.network.host import Host
from repro.protocol.pacer import PacedPullQueue, PullBuilder
from repro.sim.engine import Simulator
from repro.transport.tfrc import TfrcController
from repro.utils.units import serialization_delay

__all__ = ["PullBuilder", "PullPacer"]


class PullPacer(PacedPullQueue):
    """One pull queue per receiving host, shared by all of its sessions.

    With ``PolyraptorConfig.tfrc_pacing`` the pacer carries a host-level
    :class:`~repro.transport.tfrc.TfrcController` (``self.tfrc``) that the
    host's receiver sessions feed with CE marks, trims and RTT samples; the
    inter-pull gap then stretches to the controller's allowed rate.  Since
    each pull elicits one symbol, pacing pulls *is* pacing the sender.  With
    no congestion signals the allowed rate is the line rate and the cadence
    is the historical one-serialization-time.
    """

    def __init__(self, sim: Simulator, host: Host, config: PolyraptorConfig) -> None:
        tfrc: Optional[TfrcController] = None
        if config.tfrc_pacing:
            tfrc = TfrcController(
                segment_bytes=config.symbol_packet_bytes,
                max_rate_bps=host.link_rate_bps,
            )
        super().__init__(
            base_interval_s=serialization_delay(
                config.symbol_packet_bytes, host.link_rate_bps
            ),
            schedule=sim.schedule,
            send=host.send,
            tfrc=tfrc,
        )
        self.config = config
