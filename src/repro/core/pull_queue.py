"""The per-host pull pacer.

The paper, section 2: *"The data transport layer at each receiver has only
one pull queue shared by all sessions.  A pull request is added to this queue
upon receiving a full or trimmed symbol.  The receiver then paces pull
packets across all sessions, so that the aggregate data rate matches the
receiver's link capacity."*

The pacer therefore:

* keeps one FIFO of pending pulls **per session** and serves sessions in
  round-robin order (so a single large session cannot starve others);
* emits at most one pull per *data-packet serialisation time* of the
  receiver's link, because each pull elicits one symbol-sized packet in
  return -- pacing pulls at that interval caps the aggregate arrival rate at
  the link capacity;
* sends the first pull of an idle period immediately (no pacing delay when
  the link has been idle).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.core.config import PolyraptorConfig
from repro.network.host import Host
from repro.network.packet import Packet
from repro.sim.engine import Simulator
from repro.transport.tfrc import TfrcController
from repro.utils.units import serialization_delay

#: A deferred pull: a callable that builds the pull packet at send time (so
#: the block hint reflects the receiver's latest state).
PullBuilder = Callable[[], Optional[Packet]]


class PullPacer:
    """One pull queue per receiving host, shared by all of its sessions.

    With ``PolyraptorConfig.tfrc_pacing`` the pacer carries a host-level
    :class:`~repro.transport.tfrc.TfrcController` (``self.tfrc``) that the
    host's receiver sessions feed with CE marks, trims and RTT samples; the
    inter-pull gap then stretches to the controller's allowed rate.  Since
    each pull elicits one symbol, pacing pulls *is* pacing the sender.  With
    no congestion signals the allowed rate is the line rate and the cadence
    is the historical one-serialization-time.
    """

    def __init__(self, sim: Simulator, host: Host, config: PolyraptorConfig) -> None:
        self._sim = sim
        self._host = host
        self.config = config
        self.pull_interval_s = serialization_delay(
            config.symbol_packet_bytes, host.link_rate_bps
        )
        self.tfrc: Optional[TfrcController] = None
        if config.tfrc_pacing:
            self.tfrc = TfrcController(
                segment_bytes=config.symbol_packet_bytes,
                max_rate_bps=host.link_rate_bps,
            )
        self._queues: dict[int, deque[PullBuilder]] = {}
        self._round_robin: deque[int] = deque()
        self._pacing = False
        self.pulls_sent = 0
        self.pulls_discarded = 0

    @property
    def pending_pulls(self) -> int:
        """Number of pulls waiting to be sent across all sessions."""
        return sum(len(queue) for queue in self._queues.values())

    def pending_for_session(self, session_id: int) -> int:
        """Number of pulls waiting for one session."""
        queue = self._queues.get(session_id)
        return len(queue) if queue else 0

    def enqueue(self, session_id: int, builder: PullBuilder) -> None:
        """Add one pull for a session; starts the pacer if it was idle."""
        queue = self._queues.get(session_id)
        if queue is None:
            queue = deque()
            self._queues[session_id] = queue
        if not queue and session_id not in self._round_robin:
            self._round_robin.append(session_id)
        elif not queue:
            # Session already in the round-robin ring with an empty queue
            # (possible when pulls were cancelled); nothing to do.
            pass
        queue.append(builder)
        if not self._pacing:
            self._pacing = True
            self._send_next()

    def cancel_session(self, session_id: int) -> None:
        """Discard every pending pull of a session (used when it completes)."""
        queue = self._queues.pop(session_id, None)
        if queue:
            self.pulls_discarded += len(queue)
        try:
            self._round_robin.remove(session_id)
        except ValueError:
            pass

    def _next_session(self) -> Optional[int]:
        for _ in range(len(self._round_robin)):
            session_id = self._round_robin[0]
            self._round_robin.rotate(-1)
            queue = self._queues.get(session_id)
            if queue:
                return session_id
        return None

    def _send_next(self) -> None:
        session_id = self._next_session()
        if session_id is None:
            self._pacing = False
            return
        builder = self._queues[session_id].popleft()
        packet = builder()
        if packet is not None:
            self._host.send(packet)
            self.pulls_sent += 1
        else:
            self.pulls_discarded += 1
        # Pace the next pull one data-packet time later (stretched to the
        # TFRC-allowed rate when rate control is on), even if the builder
        # declined to send (its slot is spent either way).
        self._sim.schedule(self.current_interval_s(), self._send_next)

    def current_interval_s(self) -> float:
        """The inter-pull gap in force right now."""
        if self.tfrc is None:
            return self.pull_interval_s
        return max(self.pull_interval_s, self.tfrc.send_interval_s())
