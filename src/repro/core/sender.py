"""Polyraptor sender sessions (sim driver).

All protocol decisions -- pull clocking, multicast aggregation, straggler
detachment, TFRC-paced initial windows, startup probing -- live in the
transport-agnostic :class:`repro.protocol.sender.SenderCore`; this module
binds one core to the simulator: events in with ``sim.now``, the core's
actions out through the host's NIC and the event heap.  See
:mod:`repro.core.driver` for the action-application contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.driver import SimSessionDriver
from repro.protocol.actions import SessionCompleted
from repro.protocol.sender import SenderCore
from repro.sim.process import Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.agent import PolyraptorAgent


class SenderSession(SimSessionDriver):
    """Sender-side state for one Polyraptor session on one host."""

    def __init__(
        self,
        agent: "PolyraptorAgent",
        session_id: int,
        object_bytes: int,
        receiver_host_ids: list[int],
        multicast_group: Optional[int] = None,
        sender_index: int = 0,
        num_senders: int = 1,
        object_data: Optional[bytes] = None,
        on_all_receivers_done: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.agent = agent
        self.config = agent.config
        self.session_id = session_id
        self._on_all_receivers_done = on_all_receivers_done
        self.core = SenderCore(
            config=agent.config,
            session_id=session_id,
            object_bytes=object_bytes,
            receiver_host_ids=receiver_host_ids,
            local_host=agent.host.node_id,
            link_rate_bps=agent.host.link_rate_bps,
            multicast_group=multicast_group,
            sender_index=sender_index,
            num_senders=num_senders,
            object_data=object_data,
            codec=agent.codec,
        )
        self._startup_timer = Timer(
            agent.sim, lambda: self._on_timer(SenderCore.TIMER_STARTUP)
        )
        self._paced_timer = Timer(
            agent.sim, lambda: self._on_timer(SenderCore.TIMER_PACED)
        )
        self._timers = {
            SenderCore.TIMER_STARTUP: self._startup_timer,
            SenderCore.TIMER_PACED: self._paced_timer,
        }

    # Events --------------------------------------------------------------------------

    def start(self) -> None:
        """Push the initial window of symbols at line rate."""
        self.core.start(self.agent.sim.now)
        self._drain()

    def on_pull(self, pull) -> None:
        """Handle a pull request from a receiver."""
        self.core.on_pull(pull, self.agent.sim.now)
        self._drain()

    def on_done(self, done) -> None:
        """Handle a receiver's DONE notification."""
        self.core.on_done(done, self.agent.sim.now)
        self._drain()

    # Action hooks ---------------------------------------------------------------------

    def _on_session_completed(self, action: SessionCompleted) -> None:
        if self._on_all_receivers_done is not None:
            self._on_all_receivers_done(action.time_s)
