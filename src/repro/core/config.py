"""Polyraptor protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.rq.block import DEFAULT_MAX_SYMBOLS_PER_BLOCK, DEFAULT_SYMBOL_SIZE
from repro.utils.units import MICROSECOND
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class PolyraptorConfig:
    """Tunable parameters of the Polyraptor protocol.

    Attributes:
        symbol_size_bytes: payload bytes of one encoding symbol (fits in an
            MTU together with the header).
        header_bytes: wire header size for every Polyraptor packet.
        initial_window_symbols: how many symbols a sender pushes at line rate
            before becoming pull-clocked (roughly one bandwidth-delay product;
            18 MTU-sized symbols cover the ~190 microsecond RTT of the
            paper's 1 Gbps FatTree).
        decode_overhead_symbols: extra symbols (beyond K) a receiver collects
            before declaring a block decodable when at least one source symbol
            was lost; RFC 6330's two-symbol overhead gives a failure
            probability below 1e-6.
        pull_bytes: wire size of a pull request.
        control_bytes: wire size of request/done control packets.
        max_symbols_per_block: cap on source symbols per block (the object
            layer splits larger objects).
        carry_payload: if True, symbol packets carry real encoded bytes and
            receivers actually decode (slower; used by integration tests and
            the quickstart example).  If False, the simulation tracks symbol
            identities only, which is behaviourally equivalent for the
            goodput experiments.
        divide_initial_window_among_senders: in a multi-source session, have
            each of the N senders push window/N symbols initially instead of a
            full window each.
        stall_timeout_s: receiver-side timer; if nothing arrives for this long
            on an incomplete session, the receiver re-issues pulls (guards
            against the rare loss of trimmed headers).
        done_retry_limit: how many times a completed receiver re-sends an
            unacknowledged DONE notification, with exponential backoff
            starting at ``stall_timeout_s``.  DONE is a single control
            packet; if the fabric drops it -- e.g. on a link a fault
            schedule took down -- the sender would otherwise wait forever
            and the transfer would never be recorded as complete.  Senders
            acknowledge every DONE (healthy sessions therefore never
            retry), retries are idempotent, and the cap keeps event heaps
            finite when a sender stays unreachable.
        startup_retry_limit: how many times a push sender re-probes
            receivers it has never heard from (one unicast symbol each,
            exponential backoff starting at ``stall_timeout_s``).  The
            receiver-side stall timer only exists once a receiver has
            learned of the session from a first arriving symbol; if the
            sender starts while its own rack is dark (a rack power event),
            or one receiver's rack is, that receiver never hears anything
            and the session would deadlock.  Probing is cancelled per
            receiver as pulls or DONEs arrive, so healthy sessions never
            retry and a multicast group keeps probing only its dark
            members.
        straggler_detection: enable the multicast straggler extension (detach
            receivers that fall too far behind into a unicast leg).
        straggler_lag_symbols: how many pulls a receiver may lag behind the
            fastest group member before being detached.  Because pull counts
            can never diverge by more than roughly the initial window (the
            sender is pull-clocked), this should be set below
            ``initial_window_symbols``.
        codec_backend: which registered RQ codec backend sessions use when no
            shared :class:`~repro.rq.backend.CodecContext` is supplied:
            ``"planned"`` (elimination-plan cache + batched replay, the
            default) or ``"reference"`` (full per-block elimination).
        codec_kernel: which :mod:`repro.rq.kernels` GF(256) kernel executes
            the codec's linear algebra: ``"auto"`` (the default; honours the
            ``REPRO_GF_KERNEL`` environment variable, then picks the best
            available -- ``numba`` when importable, else ``blocked``),
            ``"numpy"``, ``"blocked"`` or ``"numba"``.  The choice travels
            inside :class:`~repro.experiments.parallel.RunJob` configs, so
            sharded workers inherit the parent's kernel.  Symbols are
            byte-identical for every kernel; only wall-clock changes.
    """

    symbol_size_bytes: int = DEFAULT_SYMBOL_SIZE
    header_bytes: int = 64
    initial_window_symbols: int = 18
    decode_overhead_symbols: int = 2
    pull_bytes: int = 64
    control_bytes: int = 64
    max_symbols_per_block: int = DEFAULT_MAX_SYMBOLS_PER_BLOCK
    carry_payload: bool = False
    divide_initial_window_among_senders: bool = True
    stall_timeout_s: float = 500 * MICROSECOND
    done_retry_limit: int = 8
    startup_retry_limit: int = 8
    straggler_detection: bool = False
    straggler_lag_symbols: int = 12
    #: TFRC pacing: when True, each receiver's pull pacer and each sender's
    #: initial window are clocked by an equation-based
    #: :class:`repro.transport.tfrc.TfrcController` fed by CE marks, trims
    #: and RTT samples, instead of the fixed one-symbol-serialization-time
    #: cadence.  With no congestion signals the allowed rate equals the
    #: line rate, so a clean path behaves identically.
    tfrc_pacing: bool = False
    #: gray-failure detection: detach receivers whose per-path EWMA loss
    #: estimate (from symbol-sequence gaps) exceeds ``gray_loss_threshold``,
    #: exactly like lag-based straggler detachment.
    gray_detection: bool = False
    gray_loss_threshold: float = 0.05
    #: symbols per loss-estimation window (sequence-gap accounting).
    gray_window_symbols: int = 32
    #: EWMA weight of the newest per-window loss sample.
    gray_ewma_weight: float = 0.3
    #: real-network loss recovery: when True, a receiver that detects a
    #: sequence gap on an arriving symbol immediately enqueues one extra
    #: pull per newly missing symbol (capped at ``initial_window_symbols``
    #: per arrival).  On a real wire a lost datagram vanishes silently --
    #: there is no trimmed header to keep the pull clock running -- so gap
    #: pulls replace the lost credits; the stall timer remains the backstop
    #: for trailing losses.  The simulator's trimming fabric never needs
    #: this, so it defaults off and sim runs are byte-identical.
    pull_on_gap: bool = False
    codec_backend: str = "planned"
    codec_kernel: str = "auto"

    def __post_init__(self) -> None:
        from repro.rq.backend import available_backends
        from repro.rq.kernels import registered_kernels

        if self.codec_backend not in available_backends():
            raise ValueError(
                f"unknown codec_backend {self.codec_backend!r}; "
                f"available: {', '.join(available_backends())}"
            )
        if self.codec_kernel != "auto" and self.codec_kernel not in registered_kernels():
            raise ValueError(
                f"unknown codec_kernel {self.codec_kernel!r}; "
                f"choose 'auto' or one of: {', '.join(registered_kernels())}"
            )
        check_positive("symbol_size_bytes", self.symbol_size_bytes)
        check_positive("header_bytes", self.header_bytes)
        check_positive("initial_window_symbols", self.initial_window_symbols)
        check_non_negative("decode_overhead_symbols", self.decode_overhead_symbols)
        check_positive("pull_bytes", self.pull_bytes)
        check_positive("control_bytes", self.control_bytes)
        check_positive("max_symbols_per_block", self.max_symbols_per_block)
        check_positive("stall_timeout_s", self.stall_timeout_s)
        check_non_negative("done_retry_limit", self.done_retry_limit)
        check_non_negative("startup_retry_limit", self.startup_retry_limit)
        check_positive("straggler_lag_symbols", self.straggler_lag_symbols)
        if not (0.0 < self.gray_loss_threshold < 1.0):
            raise ValueError("gray_loss_threshold must be in (0, 1)")
        check_positive("gray_window_symbols", self.gray_window_symbols)
        if not (0.0 < self.gray_ewma_weight <= 1.0):
            raise ValueError("gray_ewma_weight must be in (0, 1]")

    @property
    def symbol_packet_bytes(self) -> int:
        """Wire size of a full (untrimmed) symbol packet."""
        return self.symbol_size_bytes + self.header_bytes
