"""Polyraptor receiver sessions (sim driver).

All protocol decisions -- symbol accounting, pull generation, stall
recovery, DONE retransmission, decode handling -- live in the
transport-agnostic :class:`repro.protocol.receiver.ReceiverCore`; this
module binds one core to the simulator: events in with ``sim.now``, the
core's actions out through the host's NIC, the event heap and the agent's
shared pull pacer (deferred pulls are built back through
:meth:`~repro.protocol.receiver.ReceiverCore.build_pull` at send time).
See :mod:`repro.core.driver` for the action-application contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.driver import SimSessionDriver
from repro.core.packets import DoneAckPayload, SymbolPayload
from repro.network.packet import Packet, make_control_packet
from repro.protocol.actions import (
    CancelPulls,
    EnqueuePull,
    SessionCompleted,
    TransportFeedback,
)
from repro.protocol.receiver import ReceiverCore
from repro.sim.process import Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.agent import PolyraptorAgent


class ReceiverSession(SimSessionDriver):
    """Receiver-side state for one Polyraptor session on one host."""

    def __init__(
        self,
        agent: "PolyraptorAgent",
        session_id: int,
        object_bytes: int,
        expected_senders: Optional[list[int]] = None,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.agent = agent
        self.config = agent.config
        self.session_id = session_id
        self._on_complete = on_complete
        self.core = ReceiverCore(
            config=agent.config,
            session_id=session_id,
            object_bytes=object_bytes,
            local_host=agent.host.node_id,
            expected_senders=expected_senders,
            codec=agent.codec,
            now=agent.sim.now,
        )
        self._stall_timer = Timer(
            agent.sim, lambda: self._on_timer(ReceiverCore.TIMER_STALL)
        )
        self._done_timer = Timer(
            agent.sim, lambda: self._on_timer(ReceiverCore.TIMER_DONE)
        )
        self._timers = {
            ReceiverCore.TIMER_STALL: self._stall_timer,
            ReceiverCore.TIMER_DONE: self._done_timer,
        }
        # The core arms its stall timer at construction.
        self._drain()

    # Events --------------------------------------------------------------------------

    def start_fetch(self) -> None:
        """Initiate a many-to-one fetch: send a REQUEST to every replica holder."""
        self.core.start_fetch()
        self._drain()

    def on_symbol(
        self,
        payload: SymbolPayload,
        trimmed: bool,
        ce: bool = False,
        multicast: bool = False,
        sent_at: float = 0.0,
    ) -> None:
        """Process one arriving symbol packet (full or trimmed)."""
        self.core.on_symbol(
            payload,
            trimmed,
            ce=ce,
            multicast=multicast,
            sent_at=sent_at,
            now=self.agent.sim.now,
        )
        self._drain()

    def on_done_ack(self, ack: DoneAckPayload) -> None:
        """A sender confirmed our DONE; stop retrying once every sender has."""
        self.core.on_done_ack(ack)
        self._drain()

    # Action hooks ---------------------------------------------------------------------

    def _apply_extra(self, action: Any) -> None:
        if isinstance(action, EnqueuePull):
            target = action.target_sender
            self.agent.pacer.enqueue(self.session_id, lambda: self._build_pull(target))
        elif isinstance(action, CancelPulls):
            self.agent.pacer.cancel_session(action.session_id)
        elif isinstance(action, TransportFeedback):
            tfrc = self.agent.pacer.tfrc
            if tfrc is not None:
                tfrc.on_packet(action.packets)
                if action.rtt_sample_s is not None:
                    tfrc.on_rtt_sample(action.rtt_sample_s)
                if action.congestion:
                    tfrc.on_congestion(action.now_s)
        else:
            super()._apply_extra(action)

    def _build_pull(self, target_sender: int) -> Optional[Packet]:
        pull = self.core.build_pull(target_sender)
        if pull is None:
            return None
        return make_control_packet(
            protocol=self.agent.PROTOCOL,
            src=self.agent.host.node_id,
            dst=target_sender,
            payload=pull,
            flow_id=self.session_id,
            size_bytes=self.config.pull_bytes,
            created_at=self.agent.sim.now,
        )

    def _on_session_completed(self, action: SessionCompleted) -> None:
        if self._on_complete is not None:
            self._on_complete(action.time_s)
