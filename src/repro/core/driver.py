"""Sim-clock driver machinery shared by the core's session wrappers.

:class:`SimSessionDriver` is the glue between a pure protocol core
(:mod:`repro.protocol`) and the discrete-event simulator: every input event
is forwarded to the core with ``sim.now`` as its clock, then the core's
buffered actions are drained and applied **in emission order** -- packets
through ``host.send``, timers onto :class:`repro.sim.process.Timer`
instances, pulls into the agent's shared pacer.  Preserving that order is
what keeps post-refactor simulations byte-identical to the historical
monolithic sessions (the fingerprint suite enforces it).

Attribute access not found on the wrapper falls through to the core, so
counters and protocol state (``symbols_sent``, ``completed``, ``oti``, ...)
read exactly as before the refactor.
"""

from __future__ import annotations

from typing import Any

from repro.network.packet import Packet, PacketKind, make_control_packet
from repro.protocol.actions import (
    KIND_DATA,
    SendPacket,
    SessionCompleted,
    SetTimer,
    StopTimer,
)


class SimSessionDriver:
    """Base class for sim-side session wrappers around a protocol core.

    Subclasses populate ``self.agent`` (the owning
    :class:`~repro.core.agent.PolyraptorAgent`), ``self.core`` (the protocol
    state machine), ``self.session_id`` and ``self._timers`` (timer name ->
    :class:`~repro.sim.process.Timer`).
    """

    def __getattr__(self, name: str) -> Any:
        # Fallback for anything the wrapper does not define: delegate to the
        # protocol core so pre-refactor attribute reads keep working.
        try:
            core = self.__dict__["core"]
        except KeyError:
            raise AttributeError(name) from None
        return getattr(core, name)

    def _drain(self) -> None:
        """Apply every buffered core action, in order, until none remain."""
        actions = self.core.poll_actions()
        while actions:
            for action in actions:
                self._apply(action)
            actions = self.core.poll_actions()

    def _apply(self, action: Any) -> None:
        if isinstance(action, SendPacket):
            self.agent.host.send(self._packet_for(action))
        elif isinstance(action, SetTimer):
            self._timers[action.name].start(action.delay_s)
        elif isinstance(action, StopTimer):
            self._timers[action.name].stop()
        elif isinstance(action, SessionCompleted):
            self._on_session_completed(action)
        else:
            self._apply_extra(action)

    def _packet_for(self, action: SendPacket) -> Packet:
        if action.kind == KIND_DATA:
            return Packet(
                protocol=self.agent.PROTOCOL,
                src=self.agent.host.node_id,
                dst=action.dest,
                multicast_group=action.multicast_group,
                size_bytes=action.size_bytes,
                kind=PacketKind.DATA,
                flow_id=self.session_id,
                header_bytes=self.core.config.header_bytes,
                payload=action.payload,
                created_at=self.agent.sim.now,
            )
        return make_control_packet(
            protocol=self.agent.PROTOCOL,
            src=self.agent.host.node_id,
            dst=action.dest,
            payload=action.payload,
            flow_id=self.session_id,
            size_bytes=action.size_bytes,
            created_at=self.agent.sim.now,
        )

    def _on_timer(self, name: str) -> None:
        self.core.on_timer(name, self.agent.sim.now)
        self._drain()

    # Hooks -----------------------------------------------------------------------

    def _on_session_completed(self, action: SessionCompleted) -> None:
        raise NotImplementedError

    def _apply_extra(self, action: Any) -> None:
        raise TypeError(f"unexpected protocol action: {action!r}")
