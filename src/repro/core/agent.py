"""The per-host Polyraptor protocol endpoint."""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.config import PolyraptorConfig
from repro.core.packets import (
    DoneAckPayload,
    DonePayload,
    PullPayload,
    RequestPayload,
    SymbolPayload,
)
from repro.core.pull_queue import PullPacer
from repro.core.receiver import ReceiverSession
from repro.core.sender import SenderSession
from repro.network.host import Host
from repro.network.packet import Packet
from repro.rq.backend import CodecContext
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog
from repro.transport.base import TransferRegistry

#: Protocol name packets are tagged with and hosts dispatch on.
POLYRAPTOR_PROTOCOL = "polyraptor"


class PolyraptorAgent:
    """One Polyraptor endpoint per host.

    The agent owns the host's pull pacer, creates sender/receiver sessions and
    demultiplexes arriving packets to them.  Transfers are recorded in the
    shared :class:`~repro.transport.base.TransferRegistry`:

    * push sessions (one-to-many): start recorded when the sender starts,
      completion when the **last** receiver reports DONE;
    * fetch sessions (many-to-one): start recorded when the receiver sends
      its requests, completion when the receiver decodes the object.
    """

    PROTOCOL = POLYRAPTOR_PROTOCOL

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        config: Optional[PolyraptorConfig] = None,
        registry: Optional[TransferRegistry] = None,
        trace: Optional[TraceLog] = None,
        codec_context: Optional[CodecContext] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.config = config or PolyraptorConfig()
        self.registry = registry
        self.trace = trace if trace is not None else TraceLog(enabled=False)
        # One CodecContext is normally shared by every agent of a simulation
        # (the runner passes it in) so all sessions amortise one plan cache;
        # a per-agent context is created only for standalone agents.
        self.codec = codec_context or CodecContext(self.config.codec_backend)
        self.pacer = PullPacer(sim, host, self.config)
        self._senders: dict[int, SenderSession] = {}
        self._receivers: dict[int, ReceiverSession] = {}
        #: object payloads available on this host for fetch serving (payload mode)
        self._stored_objects: dict[int, bytes] = {}
        host.register_protocol(POLYRAPTOR_PROTOCOL, self)

    # Session creation -----------------------------------------------------------

    def start_push_session(
        self,
        session_id: int,
        object_bytes: int,
        receiver_host_ids: list[int],
        multicast_group: Optional[int] = None,
        label: str = "",
        register: bool = True,
        object_data: Optional[bytes] = None,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> SenderSession:
        """Start a one-to-many (or unicast) push session from this host."""
        if session_id in self._senders:
            raise ValueError(f"session {session_id} already exists on {self.host.name}")
        if register and self.registry is not None:
            self.registry.record_start(
                session_id, object_bytes, self.sim.now,
                protocol=POLYRAPTOR_PROTOCOL, label=label,
            )

        def _all_done(now: float) -> None:
            if register and self.registry is not None:
                self.registry.record_completion(session_id, now)
            if on_complete is not None:
                on_complete(now)

        session = SenderSession(
            agent=self,
            session_id=session_id,
            object_bytes=object_bytes,
            receiver_host_ids=receiver_host_ids,
            multicast_group=multicast_group,
            object_data=object_data,
            on_all_receivers_done=_all_done,
        )
        self._senders[session_id] = session
        session.start()
        return session

    def start_fetch_session(
        self,
        session_id: int,
        object_bytes: int,
        sender_host_ids: list[int],
        label: str = "",
        register: bool = True,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> ReceiverSession:
        """Start a many-to-one fetch session terminating at this host."""
        if session_id in self._receivers:
            raise ValueError(f"session {session_id} already exists on {self.host.name}")
        if register and self.registry is not None:
            self.registry.record_start(
                session_id, object_bytes, self.sim.now,
                protocol=POLYRAPTOR_PROTOCOL, label=label,
            )

        def _decoded(now: float) -> None:
            if register and self.registry is not None:
                self.registry.record_completion(session_id, now)
            if on_complete is not None:
                on_complete(now)

        session = ReceiverSession(
            agent=self,
            session_id=session_id,
            object_bytes=object_bytes,
            expected_senders=sender_host_ids,
            on_complete=_decoded,
        )
        self._receivers[session_id] = session
        session.start_fetch()
        return session

    def store_object(self, session_id: int, data: bytes) -> None:
        """Make object bytes available for serving a fetch session (payload mode)."""
        self._stored_objects[session_id] = data

    # Lookup ------------------------------------------------------------------------

    def sender_session(self, session_id: int) -> SenderSession:
        """Return a sender session hosted on this agent."""
        return self._senders[session_id]

    def receiver_session(self, session_id: int) -> ReceiverSession:
        """Return a receiver session hosted on this agent."""
        return self._receivers[session_id]

    def has_receiver_session(self, session_id: int) -> bool:
        """Whether a receiver session exists for the given id."""
        return session_id in self._receivers

    @property
    def all_sender_sessions(self) -> list[SenderSession]:
        """Every sender session hosted on this agent (stats collection)."""
        return list(self._senders.values())

    @property
    def all_receiver_sessions(self) -> list[ReceiverSession]:
        """Every receiver session hosted on this agent (stats collection)."""
        return list(self._receivers.values())

    # Packet handling ------------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Dispatch one arriving Polyraptor packet."""
        payload = packet.payload
        if isinstance(payload, SymbolPayload):
            self._on_symbol_packet(payload, packet)
        elif isinstance(payload, PullPayload):
            session = self._senders.get(payload.session_id)
            if session is not None:
                session.on_pull(payload)
        elif isinstance(payload, RequestPayload):
            self._on_request(payload)
        elif isinstance(payload, DonePayload):
            session = self._senders.get(payload.session_id)
            if session is not None:
                session.on_done(payload)
        elif isinstance(payload, DoneAckPayload):
            session = self._receivers.get(payload.session_id)
            if session is not None:
                session.on_done_ack(payload)
        else:
            raise TypeError(f"unexpected Polyraptor payload: {payload!r}")

    def _on_symbol_packet(self, payload: SymbolPayload, packet: Packet) -> None:
        session = self._receivers.get(payload.session_id)
        if session is None:
            # Push sessions create receiver state on first contact.
            session = ReceiverSession(
                agent=self,
                session_id=payload.session_id,
                object_bytes=payload.object_bytes,
                expected_senders=[payload.sender_host],
            )
            self._receivers[payload.session_id] = session
        session.on_symbol(
            payload,
            packet.trimmed,
            ce=packet.ce,
            multicast=packet.is_multicast,
            sent_at=packet.created_at,
        )

    def _on_request(self, request: RequestPayload) -> None:
        if request.session_id in self._senders:
            return
        object_data = self._stored_objects.get(request.session_id)
        session = SenderSession(
            agent=self,
            session_id=request.session_id,
            object_bytes=request.object_bytes,
            receiver_host_ids=[request.receiver_host],
            multicast_group=None,
            sender_index=request.sender_index,
            num_senders=request.num_senders,
            object_data=object_data,
        )
        self._senders[request.session_id] = session
        session.start()
