"""Polyraptor packet payload descriptors.

Five packet types make up the protocol:

* :class:`SymbolPayload`  -- an encoding symbol (DATA; trimmable);
* :class:`PullPayload`    -- a receiver's request for one more symbol
  (control, priority);
* :class:`RequestPayload` -- session establishment for many-to-one fetches
  (control, priority);
* :class:`DonePayload`    -- a receiver informing a sender that it has
  decoded the object (control, priority; retransmitted with capped backoff
  until acknowledged);
* :class:`DoneAckPayload` -- the sender's acknowledgement that stops the
  DONE retries (control, priority).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SymbolPayload:
    """Descriptor of one encoding symbol.

    Every symbol packet carries enough metadata for a receiver to set up its
    session state on first contact: the object size and block structure are
    derivable from ``object_bytes`` plus the (shared) protocol configuration.
    ``data`` carries real encoded bytes only in payload mode.
    """

    session_id: int
    sender_host: int
    block_number: int
    esi: int
    block_symbol_count: int
    num_blocks: int
    object_bytes: int
    data: Optional[bytes] = None
    #: per-(session, sender) emission counter; receivers difference it to
    #: estimate per-path loss (gray-failure detection) without any feedback
    #: from the fabric.
    sequence: int = 0

    @property
    def is_source_symbol(self) -> bool:
        """True if this is a source (systematic) symbol of its block."""
        return self.esi < self.block_symbol_count


@dataclass(frozen=True)
class PullPayload:
    """A pull request: "send me one more symbol of this session"."""

    session_id: int
    receiver_host: int
    pull_sequence: int
    block_hint: Optional[int] = None
    #: congestion signals (CE marks + trims) the receiver saw from this
    #: sender since its previous pull -- the fountain's ECN echo.
    congestion_echo: int = 0
    #: the receiver's current EWMA loss estimate for the path from this
    #: sender (gray-failure signal; 0.0 while the path looks clean).
    loss_estimate: float = 0.0


@dataclass(frozen=True)
class RequestPayload:
    """Fetch-session establishment sent by the receiver to each replica sender."""

    session_id: int
    receiver_host: int
    object_bytes: int
    sender_index: int
    num_senders: int


@dataclass(frozen=True)
class DonePayload:
    """Receiver-to-sender notification that the object has been decoded."""

    session_id: int
    receiver_host: int


@dataclass(frozen=True)
class DoneAckPayload:
    """Sender-to-receiver acknowledgement of a DONE.

    DONE is retransmitted with capped backoff (a lost DONE would leave the
    sender pull-clocked forever); the ack lets the receiver cancel the
    retries as soon as one copy got through, so healthy runs pay exactly one
    DONE and one ack per (receiver, sender) pair.
    """

    session_id: int
    sender_host: int
