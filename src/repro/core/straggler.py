"""Straggler detection for multicast sessions (the paper's extension).

Section 2 of the paper: *"As part of our current work is to be able to detect
and eliminate straggler receivers by detaching them from the group and
exchanging symbols with them independently through a one-to-one Polyraptor
session."*

A multicast sender only multicasts a new symbol once **every** active
receiver has pulled, so one slow receiver throttles the whole group.  The
policy below watches per-receiver pull counts; a receiver whose pull count
falls more than ``lag_symbols`` behind the fastest receiver is declared a
straggler.  The sender then detaches it: it stops participating in pull
aggregation and is served through a dedicated unicast leg instead.

This module is the *detection* half of the straggler story.  The *injection*
half -- actually making a host slow, declaratively and under seed control --
lives in the fault subsystem: a ``host_slowdown`` event of a
:class:`repro.faults.schedule.FaultSchedule` (or the
:func:`repro.faults.schedule.straggler_schedule` builder) degrades the
host's NIC, and this policy then detaches it exactly as it would a
naturally slow receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only; avoids an import cycle
    from repro.core.config import PolyraptorConfig


class PathLossEstimator:
    """Per-path EWMA loss estimator fed by symbol sequence numbers.

    Every symbol a sender emits carries a per-(session, sender) ``sequence``
    counter.  The receiver differences consecutive sequence numbers: a gap
    means symbols emitted toward us never arrived (trimmed symbols still
    arrive as headers, so congestion trims do **not** count as path loss --
    only genuine disappearance does, which is exactly the gray-failure
    signature of seeded Bernoulli link loss).  Once a window's worth of
    symbols has been accounted, the window's loss fraction is folded into an
    EWMA; :attr:`loss_estimate` is 0.0 until the first window closes.
    """

    def __init__(self, window_symbols: int = 32, ewma_weight: float = 0.3) -> None:
        if window_symbols <= 0:
            raise ValueError("window_symbols must be positive")
        if not (0.0 < ewma_weight <= 1.0):
            raise ValueError("ewma_weight must be in (0, 1]")
        self.window_symbols = window_symbols
        self.ewma_weight = ewma_weight
        self._last_sequence: int | None = None
        self._window_expected = 0
        self._window_received = 0
        self.loss_estimate = 0.0
        self.windows_closed = 0

    def on_symbol(self, sequence: int) -> int:
        """Account one arriving symbol carrying the sender's emission counter.

        Returns the number of symbols newly detected as missing (the
        sequence gap this arrival exposed; 0 for in-order delivery).
        """
        if self._last_sequence is None:
            # First contact: nothing to difference against.
            self._last_sequence = sequence
            self._window_expected = 1
            self._window_received = 1
            return 0
        gap = sequence - self._last_sequence
        if gap <= 0:
            # Late (sprayed packets reorder freely) delivery: the arrival
            # that exposed the gap already counted this symbol as expected,
            # so only credit the reception -- reordering must not register
            # as loss.
            self._window_received += 1
            missing = 0
        else:
            self._window_expected += gap
            self._window_received += 1
            self._last_sequence = sequence
            missing = gap - 1
        if self._window_expected >= self.window_symbols:
            self._close_window()
        return missing

    def _close_window(self) -> None:
        lost = max(0, self._window_expected - self._window_received)
        sample = lost / self._window_expected
        self.loss_estimate = (
            (1.0 - self.ewma_weight) * self.loss_estimate
            + self.ewma_weight * sample
        )
        self.windows_closed += 1
        self._window_expected = 0
        self._window_received = 0


@dataclass(frozen=True)
class StragglerPolicy:
    """Decides which receivers of a multicast session should be detached."""

    enabled: bool = False
    lag_symbols: int = 12
    #: gray-failure side: detach receivers whose echoed per-path loss
    #: estimate exceeds ``loss_threshold``.
    loss_detection: bool = False
    loss_threshold: float = 0.05

    @classmethod
    def from_config(cls, config: "PolyraptorConfig") -> "StragglerPolicy":
        """The policy a Polyraptor configuration asks for."""
        return cls(
            enabled=config.straggler_detection,
            lag_symbols=config.straggler_lag_symbols,
            loss_detection=config.gray_detection,
            loss_threshold=config.gray_loss_threshold,
        )

    def find_stragglers(
        self, pulls_by_receiver: dict[int, int], active_receivers: set[int]
    ) -> set[int]:
        """Return the active receivers that lag the fastest one by more than the threshold.

        Args:
            pulls_by_receiver: total pulls received from each receiver so far.
            active_receivers: receivers still attached to the multicast group.
        """
        if not self.enabled or len(active_receivers) < 2:
            return set()
        counts = {receiver: pulls_by_receiver.get(receiver, 0) for receiver in active_receivers}
        fastest = max(counts.values())
        stragglers = {
            receiver
            for receiver, count in counts.items()
            if fastest - count > self.lag_symbols
        }
        # Never detach everyone: the fastest receiver always stays attached.
        if len(stragglers) >= len(active_receivers):
            stragglers.discard(max(counts, key=counts.get))
        return stragglers

    def find_lossy(
        self, loss_by_receiver: dict[int, float], active_receivers: set[int]
    ) -> set[int]:
        """Return the active receivers whose path loss estimate is over threshold.

        Args:
            loss_by_receiver: each receiver's latest echoed EWMA loss
                estimate for its path from this sender (missing = clean).
            active_receivers: receivers still attached to the multicast group.

        A gray-failing path hurts the whole group the same way a slow
        receiver does -- the sender multicasts a fresh symbol only when every
        active receiver pulled -- so lossy members are detached to a unicast
        leg.  As with lag detection, the cleanest receiver always stays
        attached so the group never empties.
        """
        if not self.loss_detection or len(active_receivers) < 2:
            return set()
        estimates = {
            receiver: loss_by_receiver.get(receiver, 0.0)
            for receiver in active_receivers
        }
        lossy = {
            receiver
            for receiver, estimate in estimates.items()
            if estimate > self.loss_threshold
        }
        if len(lossy) >= len(active_receivers):
            lossy.discard(min(estimates, key=estimates.get))
        return lossy
