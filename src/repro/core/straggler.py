"""Straggler detection for multicast sessions (the paper's extension).

Section 2 of the paper: *"As part of our current work is to be able to detect
and eliminate straggler receivers by detaching them from the group and
exchanging symbols with them independently through a one-to-one Polyraptor
session."*

A multicast sender only multicasts a new symbol once **every** active
receiver has pulled, so one slow receiver throttles the whole group.  The
policy below watches per-receiver pull counts; a receiver whose pull count
falls more than ``lag_symbols`` behind the fastest receiver is declared a
straggler.  The sender then detaches it: it stops participating in pull
aggregation and is served through a dedicated unicast leg instead.

This module is the *detection* half of the straggler story.  The *injection*
half -- actually making a host slow, declaratively and under seed control --
lives in the fault subsystem: a ``host_slowdown`` event of a
:class:`repro.faults.schedule.FaultSchedule` (or the
:func:`repro.faults.schedule.straggler_schedule` builder) degrades the
host's NIC, and this policy then detaches it exactly as it would a
naturally slow receiver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only; avoids an import cycle
    from repro.core.config import PolyraptorConfig


@dataclass(frozen=True)
class StragglerPolicy:
    """Decides which receivers of a multicast session should be detached."""

    enabled: bool = False
    lag_symbols: int = 12

    @classmethod
    def from_config(cls, config: "PolyraptorConfig") -> "StragglerPolicy":
        """The policy a Polyraptor configuration asks for."""
        return cls(
            enabled=config.straggler_detection,
            lag_symbols=config.straggler_lag_symbols,
        )

    def find_stragglers(
        self, pulls_by_receiver: dict[int, int], active_receivers: set[int]
    ) -> set[int]:
        """Return the active receivers that lag the fastest one by more than the threshold.

        Args:
            pulls_by_receiver: total pulls received from each receiver so far.
            active_receivers: receivers still attached to the multicast group.
        """
        if not self.enabled or len(active_receivers) < 2:
            return set()
        counts = {receiver: pulls_by_receiver.get(receiver, 0) for receiver in active_receivers}
        fastest = max(counts.values())
        stragglers = {
            receiver
            for receiver, count in counts.items()
            if fastest - count > self.lag_symbols
        }
        # Never detach everyone: the fastest receiver always stays attached.
        if len(stragglers) >= len(active_receivers):
            stragglers.discard(max(counts, key=counts.get))
        return stragglers
