"""Named, seeded random streams.

Every stochastic component of the simulation (arrival processes, path
selection, background traffic, replica placement, ...) draws from its own
named stream derived deterministically from a single experiment seed.  This
means that, for example, changing the transport protocol under test does not
perturb the workload that is offered to it -- a property the paper's
methodology (five repetitions with different seeds, identical workload for RQ
and TCP) depends on.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, reproducible :class:`random.Random` streams."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child collection whose master seed is derived from ``name``.

        Useful when a sub-component (e.g. one transport session) wants its own
        namespace of streams.
        """
        return RandomStreams(derive_seed(self.master_seed, name))

    # Convenience draws -----------------------------------------------------

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw a uniform sample in [low, high) from stream ``name``."""
        return self.stream(name).uniform(low, high)

    def exponential(self, name: str, rate: float) -> float:
        """Draw an exponential inter-arrival time with the given rate (events/s)."""
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        return self.stream(name).expovariate(rate)

    def randint(self, name: str, low: int, high: int) -> int:
        """Draw an integer uniformly from [low, high] (inclusive)."""
        return self.stream(name).randint(low, high)

    def choice(self, name: str, options: Sequence[T]) -> T:
        """Pick one element of ``options`` uniformly at random."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self.stream(name).choice(options)

    def sample(self, name: str, options: Sequence[T], count: int) -> list[T]:
        """Pick ``count`` distinct elements of ``options`` uniformly at random."""
        return self.stream(name).sample(list(options), count)

    def shuffled(self, name: str, options: Sequence[T]) -> list[T]:
        """Return a shuffled copy of ``options``."""
        items = list(options)
        self.stream(name).shuffle(items)
        return items

    def permutation(self, name: str, count: int) -> list[int]:
        """Return a random permutation of ``range(count)``."""
        return self.shuffled(name, range(count))

    def poisson_process(self, name: str, rate: float) -> Iterator[float]:
        """Yield an infinite stream of absolute arrival times of a Poisson process."""
        time = 0.0
        while True:
            time += self.exponential(name, rate)
            yield time
