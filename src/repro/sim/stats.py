"""Statistics primitives collected during simulation runs.

These are deliberately simple (counters, time series, summary statistics and
a windowed rate estimator); the experiment harness in
:mod:`repro.experiments.metrics` composes them into the figures the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class Counter:
    """A named monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if amount < 0:
            raise ValueError("counters only move forward; use a separate counter for decrements")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for a cache, reportable as a dict.

    Used by the codec layer to surface elimination-plan cache behaviour in
    experiment reports; generic enough for any other cache the simulator
    grows.
    """

    name: str = "cache"
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def record_hit(self) -> None:
        """Count one cache hit."""
        self.hits += 1

    def record_miss(self) -> None:
        """Count one cache miss."""
        self.misses += 1

    def record_eviction(self) -> None:
        """Count one eviction."""
        self.evictions += 1

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """A plain-dict snapshot for reports and JSON artefacts."""
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class TimeSeries:
    """A list of (time, value) observations."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one observation taken at ``time``."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> Optional[float]:
        """Return the most recent value, or ``None`` if empty."""
        return self.values[-1] if self.values else None

    def mean(self) -> float:
        """Arithmetic mean of all recorded values."""
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return sum(self.values) / len(self.values)


@dataclass
class SummaryStats:
    """Streaming summary statistics (count / mean / min / max / variance)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add(self, value: float) -> None:
        """Add a sample using Welford's online algorithm."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Add every sample from an iterable."""
        for value in values:
            self.add(value)

    @property
    def variance(self) -> float:
        """Sample variance (0 for fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return self.variance ** 0.5


class RateEstimator:
    """Estimates an average rate (bits/second) of byte arrivals over a window.

    Used by receivers to report instantaneous goodput and by tests asserting
    that pull pacing keeps the aggregate arrival rate at or below link
    capacity.
    """

    def __init__(self, window: float = 1e-3) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._events: list[tuple[float, int]] = []
        self.total_bytes = 0

    def record(self, time: float, num_bytes: int) -> None:
        """Record ``num_bytes`` arriving at ``time``."""
        self._events.append((time, num_bytes))
        self.total_bytes += num_bytes

    def rate_bps(self, now: float) -> float:
        """Average arrival rate (bits/s) over the trailing window ending at ``now``."""
        horizon = now - self.window
        while self._events and self._events[0][0] < horizon:
            self._events.pop(0)
        window_bytes = sum(size for _, size in self._events)
        return window_bytes * 8 / self.window
