"""Event loop for the discrete-event simulator.

Design goals:

* **Determinism** -- events scheduled for the same time fire in the order
  they were scheduled (a monotonically increasing sequence number breaks
  ties), so a run is fully reproducible from its configuration and seed.
* **Cancellation without heap surgery** -- cancelling an event marks it
  cancelled; the event is discarded lazily when it reaches the top of the
  heap.  This keeps :meth:`Simulator.cancel` O(1).
* **No global state** -- every component holds a reference to its simulator;
  multiple simulators can coexist in one process (useful for tests and
  parameter sweeps).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code only ever holds them to call
    :meth:`cancel` (via :meth:`Simulator.cancel`) or to inspect
    :attr:`time`.
    """

    __slots__ = ("time", "seq", "callback", "args", "kwargs", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, seq={self.seq}, {name}, {state})"


class Simulator:
    """A single-threaded discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently in the heap (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback(*args, **kwargs)`` to run at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        event = Event(time, self._seq, callback, args, kwargs)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None`` or already-cancelled)."""
        if event is not None:
            event.cancelled = True

    def stop(self) -> None:
        """Request that :meth:`run` return after the current callback finishes."""
        self._stopped = True

    def peek_next_time(self) -> Optional[float]:
        """Return the time of the next pending (non-cancelled) event, or ``None``."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Args:
            until: if given, stop once the next event would fire after this
                time (simulation time is advanced to ``until``).
            max_events: if given, stop after processing this many events; a
                safety valve for tests.

        Returns:
            The number of events processed during this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        processed_before = self._events_processed
        try:
            while not self._stopped:
                self._discard_cancelled()
                if not self._heap:
                    break
                event = self._heap[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                self._events_processed += 1
                event.callback(*event.args, **event.kwargs)
                if max_events is not None and self._events_processed - processed_before >= max_events:
                    break
            else:
                pass
            if until is not None and not self._heap and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
        return self._events_processed - processed_before

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
