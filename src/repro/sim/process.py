"""Higher-level scheduling helpers built on top of the event loop.

:class:`Timer` is a restartable one-shot timer (used for TCP retransmission
timeouts); :class:`PeriodicProcess` repeatedly invokes a callback at a fixed
period (used by rate estimators and by the experiment harness's progress
sampling).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A restartable one-shot timer.

    The callback fires once, ``delay`` seconds after the most recent
    :meth:`start` / :meth:`restart`, unless :meth:`stop` was called first.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def running(self) -> bool:
        """Whether the timer is currently armed."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry_time(self) -> Optional[float]:
        """Absolute time at which the timer will fire, or ``None`` if not armed."""
        if not self.running:
            return None
        return self._event.time  # type: ignore[union-attr]

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now; restarts if already armed."""
        self.stop()
        self._event = self._sim.schedule(delay, self._fire)

    def restart(self, delay: float) -> None:
        """Alias of :meth:`start`, for readability at call sites."""
        self.start(delay)

    def stop(self) -> None:
        """Disarm the timer if it is armed."""
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicProcess:
    """Invokes ``callback(now)`` every ``period`` seconds until stopped."""

    def __init__(self, sim: Simulator, period: float, callback: Callable[[float], Any]) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self._sim = sim
        self.period = period
        self._callback = callback
        self._event: Optional[Event] = None
        self._running = False

    @property
    def running(self) -> bool:
        """Whether the process is currently active."""
        return self._running

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Start the periodic invocations (first one after ``initial_delay``)."""
        if self._running:
            return
        self._running = True
        delay = self.period if initial_delay is None else initial_delay
        self._event = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Stop future invocations."""
        self._running = False
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None

    def _tick(self) -> None:
        if not self._running:
            return
        self._callback(self._sim.now)
        if self._running:
            self._event = self._sim.schedule(self.period, self._tick)
