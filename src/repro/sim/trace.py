"""Structured trace logging.

A :class:`TraceLog` is an in-memory, filterable record of interesting events
(packet trims, retransmissions, session completions, ...).  It is disabled by
default so that large experiments pay no cost; tests and the examples enable
it to assert on protocol behaviour ("at least one symbol was trimmed under
Incast", "no data packet was ever dropped by a trimming switch").

Memory is boundable: pass ``max_events`` to keep only the newest events in a
ring buffer (older ones fall off the front and are tallied in ``dropped``),
so an enabled trace on a long run cannot grow without limit.  A trace can
also be bound to a :class:`~repro.obs.registry.MetricRegistry`, which then
counts every recorded event under ``trace.<category>`` -- the counts survive
ring-buffer eviction, unifying the trace with the telemetry layer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.obs.registry import MetricRegistry


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: a timestamp, a category, and free-form details."""

    time: float
    category: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        rendered = " ".join(f"{key}={value}" for key, value in sorted(self.details.items()))
        return f"[{self.time:.9f}] {self.category} {rendered}"


class TraceLog:
    """An in-memory event trace with per-category filtering and an optional bound."""

    def __init__(
        self,
        enabled: bool = False,
        categories: Optional[Iterable[str]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be at least 1, got {max_events}")
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.max_events = max_events
        self.events: deque[TraceEvent] = deque(maxlen=max_events)
        #: events evicted from the ring buffer (0 for an unbounded trace)
        self.dropped = 0
        self._registry: Optional["MetricRegistry"] = None

    def bind_registry(self, registry: Optional["MetricRegistry"]) -> None:
        """Count subsequent events into ``trace.<category>`` registry counters."""
        self._registry = registry

    def record(self, time: float, category: str, **details: Any) -> None:
        """Record an event if tracing is enabled and the category is selected."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if self.max_events is not None and len(self.events) == self.max_events:
            self.dropped += 1
        self.events.append(TraceEvent(time=time, category=category, details=details))
        if self._registry is not None:
            self._registry.counter(f"trace.{category}").increment()

    def filter(self, category: str) -> list[TraceEvent]:
        """Return all recorded events of the given category."""
        return [event for event in self.events if event.category == category]

    def count(self, category: str) -> int:
        """Return how many *buffered* events of the given category remain."""
        return sum(1 for event in self.events if event.category == category)

    def clear(self) -> None:
        """Discard all recorded events and reset the dropped counter."""
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)
