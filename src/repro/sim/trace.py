"""Structured trace logging.

A :class:`TraceLog` is an in-memory, filterable record of interesting events
(packet trims, retransmissions, session completions, ...).  It is disabled by
default so that large experiments pay no cost; tests and the examples enable
it to assert on protocol behaviour ("at least one symbol was trimmed under
Incast", "no data packet was ever dropped by a trimming switch").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: a timestamp, a category, and free-form details."""

    time: float
    category: str
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        rendered = " ".join(f"{key}={value}" for key, value in sorted(self.details.items()))
        return f"[{self.time:.9f}] {self.category} {rendered}"


class TraceLog:
    """An in-memory event trace with per-category filtering."""

    def __init__(self, enabled: bool = False, categories: Optional[Iterable[str]] = None) -> None:
        self.enabled = enabled
        self.categories = set(categories) if categories is not None else None
        self.events: list[TraceEvent] = []

    def record(self, time: float, category: str, **details: Any) -> None:
        """Record an event if tracing is enabled and the category is selected."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.events.append(TraceEvent(time=time, category=category, details=details))

    def filter(self, category: str) -> list[TraceEvent]:
        """Return all recorded events of the given category."""
        return [event for event in self.events if event.category == category]

    def count(self, category: str) -> int:
        """Return how many events of the given category were recorded."""
        return sum(1 for event in self.events if event.category == category)

    def clear(self) -> None:
        """Discard all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
