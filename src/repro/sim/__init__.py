"""Deterministic discrete-event simulation engine.

The engine is intentionally small: a binary-heap scheduler with stable
tie-breaking (:class:`~repro.sim.engine.Simulator`), named seeded random
streams (:class:`~repro.sim.randomness.RandomStreams`), lightweight statistics
collection (:mod:`repro.sim.stats`) and an optional structured trace
(:mod:`repro.sim.trace`).  Everything the network substrate and the transport
protocols do is expressed as callbacks scheduled on a single simulator.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.process import PeriodicProcess, Timer
from repro.sim.randomness import RandomStreams
from repro.sim.stats import Counter, RateEstimator, SummaryStats, TimeSeries
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "Event",
    "Simulator",
    "PeriodicProcess",
    "Timer",
    "RandomStreams",
    "Counter",
    "RateEstimator",
    "SummaryStats",
    "TimeSeries",
    "TraceEvent",
    "TraceLog",
]
