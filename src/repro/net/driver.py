"""Datagram drivers over the transport-agnostic protocol cores.

The net drivers are the wire-side twins of the sim wrappers in
:mod:`repro.core.sender` / :mod:`repro.core.receiver`: every input event is
forwarded to the core stamped with the scheduler's clock, then the core's
buffered actions are drained in emission order -- packets out through a
``transmit`` callable (normally ``sock.sendto`` behind
:func:`repro.net.wire.encode_frame`), timers onto
:class:`~repro.net.scheduler.NetTimer` instances, pulls into a per-endpoint
:class:`~repro.protocol.pacer.PacedPullQueue`.  Because the decision logic
lives entirely in the core, the conformance suite can replay one scripted
trace through a sim driver and a net driver and require identical outputs.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.config import PolyraptorConfig
from repro.core.packets import DoneAckPayload, DonePayload, PullPayload, SymbolPayload
from repro.protocol.actions import (
    KIND_CONTROL,
    CancelPulls,
    EnqueuePull,
    SendPacket,
    SessionCompleted,
    SetTimer,
    StopTimer,
    TransportFeedback,
)
from repro.protocol.pacer import PacedPullQueue
from repro.protocol.receiver import ReceiverCore
from repro.protocol.sender import SenderCore
from repro.net.scheduler import NetTimer, Scheduler
from repro.transport.tfrc import TfrcController
from repro.utils.units import serialization_delay

#: Nominal link rate assumed for pull pacing on a real path (loopback or a
#: modern NIC); one symbol packet every ~12 microseconds at the default MTU.
DEFAULT_WIRE_RATE_BPS = 1e9

#: Receiver-side stall timeout on a real path: long enough to sit above
#: loopback/LAN RTTs with scheduling jitter, short enough that a lost tail
#: symbol costs tens of milliseconds, not the sim's microsecond scales.
DEFAULT_WIRE_STALL_S = 0.05

#: Transmit callback signature: receives the core's SendPacket action.
Transmit = Callable[[SendPacket], Any]


def wire_config(**overrides: Any) -> PolyraptorConfig:
    """The :class:`PolyraptorConfig` profile for real UDP transport.

    Differences from the sim defaults, all forced by the nature of a real
    wire (pass ``overrides`` to tune further):

    * ``carry_payload=True`` -- packets carry real encoded bytes and the
      receiver actually decodes;
    * ``pull_on_gap=True`` -- a lost datagram vanishes silently (no trimmed
      header arrives to keep the pull clock running), so sequence gaps
      replace the lost pulls directly;
    * ``tfrc_pacing=True`` -- pulls and the initial window are paced by the
      same RFC 5348 controller the sim uses, fed by real RTT samples from
      the symbol frames' ``sent_at`` timestamps;
    * ``stall_timeout_s=0.05`` -- real clocks, not microsecond sim scales.
    """
    defaults: dict[str, Any] = dict(
        carry_payload=True,
        pull_on_gap=True,
        tfrc_pacing=True,
        stall_timeout_s=DEFAULT_WIRE_STALL_S,
    )
    defaults.update(overrides)
    return PolyraptorConfig(**defaults)


class _NetDriverBase:
    """Shared action-application machinery of the two net drivers."""

    def __init__(
        self,
        core: Any,
        scheduler: Scheduler,
        transmit: Transmit,
        timer_names: tuple[str, ...],
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.core = core
        self.scheduler = scheduler
        self._transmit = transmit
        self._on_complete = on_complete
        self._timers = {
            name: NetTimer(scheduler, self._timer_callback(name))
            for name in timer_names
        }

    def _timer_callback(self, name: str) -> Callable[[], None]:
        def fire() -> None:
            self.core.on_timer(name, self.scheduler.time())
            self._drain()
        return fire

    def close(self) -> None:
        """Disarm every timer this driver owns.

        Called when an endpoint retires the session early (idle reaping, a
        dead peer): a still-armed timer would otherwise fire into a session
        the endpoint has already forgotten and keep re-arming itself forever.
        """
        for timer in self._timers.values():
            timer.stop()

    def _drain(self) -> None:
        actions = self.core.poll_actions()
        while actions:
            for action in actions:
                self._apply(action)
            actions = self.core.poll_actions()

    def _apply(self, action: Any) -> None:
        if isinstance(action, SendPacket):
            self._transmit(action)
        elif isinstance(action, SetTimer):
            self._timers[action.name].start(action.delay_s)
        elif isinstance(action, StopTimer):
            self._timers[action.name].stop()
        elif isinstance(action, SessionCompleted):
            if self._on_complete is not None:
                self._on_complete(action.time_s)
        else:
            self._apply_extra(action)

    def _apply_extra(self, action: Any) -> None:
        raise TypeError(f"unexpected protocol action: {action!r}")


class NetSenderDriver(_NetDriverBase):
    """Drives one :class:`~repro.protocol.sender.SenderCore` on a datagram transport."""

    def __init__(
        self,
        core: SenderCore,
        scheduler: Scheduler,
        transmit: Transmit,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        super().__init__(
            core,
            scheduler,
            transmit,
            timer_names=(SenderCore.TIMER_STARTUP, SenderCore.TIMER_PACED),
            on_complete=on_complete,
        )

    def start(self) -> None:
        """Push the initial window of symbols."""
        self.core.start(self.scheduler.time())
        self._drain()

    def on_pull(self, pull: PullPayload) -> None:
        """Handle a pull request from the receiver."""
        self.core.on_pull(pull, self.scheduler.time())
        self._drain()

    def on_done(self, done: DonePayload) -> None:
        """Handle the receiver's DONE notification."""
        self.core.on_done(done, self.scheduler.time())
        self._drain()


class NetReceiverDriver(_NetDriverBase):
    """Drives one :class:`~repro.protocol.receiver.ReceiverCore` on a datagram transport.

    Owns the endpoint's pull pacer (and, with ``tfrc_pacing``, its TFRC
    controller): the same :class:`~repro.protocol.pacer.PacedPullQueue`
    code that paces the simulator's hosts, scheduled on the event loop.
    """

    def __init__(
        self,
        core: ReceiverCore,
        scheduler: Scheduler,
        transmit: Transmit,
        on_complete: Optional[Callable[[float], None]] = None,
        max_rate_bps: float = DEFAULT_WIRE_RATE_BPS,
    ) -> None:
        super().__init__(
            core,
            scheduler,
            transmit,
            timer_names=(ReceiverCore.TIMER_STALL, ReceiverCore.TIMER_DONE),
            on_complete=on_complete,
        )
        config = core.config
        self.tfrc: Optional[TfrcController] = None
        if config.tfrc_pacing:
            self.tfrc = TfrcController(
                segment_bytes=config.symbol_packet_bytes,
                max_rate_bps=max_rate_bps,
            )
        self.pacer = PacedPullQueue(
            base_interval_s=serialization_delay(
                config.symbol_packet_bytes, max_rate_bps
            ),
            schedule=scheduler.call_later,
            send=self._transmit,
            tfrc=self.tfrc,
        )
        # The core arms its stall timer at construction.
        self._drain()

    def close(self) -> None:
        """Disarm timers and drop the session's queued pulls from the pacer."""
        super().close()
        self.pacer.cancel_session(self.core.session_id)

    def start_fetch(self) -> None:
        """Send the session's REQUEST(s); safe to call again as a retransmit."""
        self.core.start_fetch()
        self._drain()

    def on_symbol(
        self,
        payload: SymbolPayload,
        trimmed: bool = False,
        ce: bool = False,
        multicast: bool = False,
        sent_at: float = 0.0,
    ) -> None:
        """Process one arriving symbol frame."""
        self.core.on_symbol(
            payload,
            trimmed,
            ce=ce,
            multicast=multicast,
            sent_at=sent_at,
            now=self.scheduler.time(),
        )
        self._drain()

    def on_done_ack(self, ack: DoneAckPayload) -> None:
        """The sender confirmed our DONE."""
        self.core.on_done_ack(ack)
        self._drain()

    def _apply_extra(self, action: Any) -> None:
        if isinstance(action, EnqueuePull):
            self.pacer.enqueue(
                action.session_id, self._pull_builder(action.target_sender)
            )
        elif isinstance(action, CancelPulls):
            self.pacer.cancel_session(action.session_id)
        elif isinstance(action, TransportFeedback):
            if self.tfrc is not None:
                self.tfrc.on_packet(action.packets)
                if action.rtt_sample_s is not None:
                    self.tfrc.on_rtt_sample(action.rtt_sample_s)
                if action.congestion:
                    self.tfrc.on_congestion(action.now_s)
        else:
            super()._apply_extra(action)

    def _pull_builder(self, target_sender: int) -> Callable[[], Optional[SendPacket]]:
        def build() -> Optional[SendPacket]:
            pull = self.core.build_pull(target_sender)
            if pull is None:
                return None
            return SendPacket(
                payload=pull,
                kind=KIND_CONTROL,
                size_bytes=self.core.config.pull_bytes,
                dest=target_sender,
            )
        return build
