"""The ``repro serve`` endpoint: Polyraptor object transfers over real UDP.

The server holds a name-keyed :class:`ObjectStore` and answers three kinds
of traffic on one socket:

* ``OPEN`` handshakes, mapping an object name to a freshly granted session
  id (idempotently -- a retransmitted OPEN gets the same grant back, so a
  lost ``OPEN_OK`` costs one round trip, never a duplicate session);
* ``REQUEST`` frames, spinning up one
  :class:`~repro.protocol.sender.SenderCore` per session exactly like the
  simulator's agent does on a fetch request (duplicates are ignored);
* ``PULL`` / ``DONE`` frames for the live sessions.

Junk datagrams are counted and dropped -- :mod:`repro.net.wire` decoding is
total -- so the server survives port scans and version-skewed peers.  An
optional seeded receive-loss rate drops arriving frames to exercise the
protocol's recovery paths in integration tests without real congestion.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from typing import Any, Dict, Optional, Tuple

from repro.core.config import PolyraptorConfig
from repro.core.packets import DonePayload, PullPayload, RequestPayload
from repro.net.driver import (
    DEFAULT_WIRE_RATE_BPS,
    NetSenderDriver,
    wire_config,
)
from repro.net.scheduler import AsyncioScheduler
from repro.net.wire import (
    OpenErrPayload,
    OpenOkPayload,
    OpenPayload,
    WireError,
    decode_frame,
    encode_frame,
)
from repro.protocol.actions import KIND_DATA, SendPacket
from repro.protocol.sender import SenderCore

#: Default UDP port of ``repro serve``.
DEFAULT_PORT = 9109

#: Host ids stamped into protocol payloads on the wire.  The real network
#: addresses peers by (ip, port); the protocol-level ids only distinguish
#: the two ends of a session, so fixed values suffice.
SERVER_HOST_ID = 0
CLIENT_HOST_ID = 1

Address = Tuple[str, int]


def deterministic_object(size: int, seed: str = "repro") -> bytes:
    """``size`` bytes derived from ``seed`` by a SHA-256 counter stream.

    The same (size, seed) always yields the same bytes, so a CI server and
    its checking script can agree on the expected hash without shipping a
    fixture file.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    chunks = []
    produced = 0
    counter = 0
    while produced < size:
        block = hashlib.sha256(f"{seed}:{counter}".encode("utf-8")).digest()
        chunks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(chunks)[:size]


class ObjectStore:
    """Named objects available for serving."""

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}

    def put(self, name: str, data: bytes) -> None:
        """Add (or replace) one named object."""
        self._objects[name] = data

    def get(self, name: str) -> Optional[bytes]:
        """The object's bytes, or None if the name is unknown."""
        return self._objects.get(name)

    def names(self) -> list[str]:
        """All stored object names, sorted."""
        return sorted(self._objects)

    def __len__(self) -> int:
        return len(self._objects)


class PolyraptorServerProtocol(asyncio.DatagramProtocol):
    """One UDP socket serving any number of concurrent fetch sessions."""

    def __init__(
        self,
        store: ObjectStore,
        config: Optional[PolyraptorConfig] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        max_sessions: Optional[int] = None,
        max_rate_bps: float = DEFAULT_WIRE_RATE_BPS,
    ) -> None:
        self.store = store
        self.config = config if config is not None else wire_config()
        self.max_rate_bps = max_rate_bps
        self._loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self._max_sessions = max_sessions
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.scheduler: Optional[AsyncioScheduler] = None
        #: OPEN idempotency: (addr, name) -> granted session id
        self._grants: Dict[Tuple[Address, str], int] = {}
        self._grant_names: Dict[int, str] = {}
        self._next_session_id = 1
        #: live sender drivers, keyed by (addr, session id)
        self._sessions: Dict[Tuple[Address, int], NetSenderDriver] = {}
        self.sessions_completed = 0
        self.frames_dropped = 0
        self.malformed_frames = 0
        #: set once ``max_sessions`` sessions have completed
        self.finished = asyncio.Event()

    # asyncio plumbing ---------------------------------------------------------

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        self.scheduler = AsyncioScheduler(asyncio.get_event_loop())

    def error_received(self, exc: Exception) -> None:  # pragma: no cover - OS-dependent
        pass

    def datagram_received(self, data: bytes, addr: Address) -> None:
        if self._loss_rate > 0.0 and self._loss_rng.random() < self._loss_rate:
            self.frames_dropped += 1
            return
        try:
            frame = decode_frame(data)
        except WireError:
            self.malformed_frames += 1
            return
        payload = frame.payload
        if isinstance(payload, OpenPayload):
            self._on_open(payload, addr)
        elif isinstance(payload, RequestPayload):
            self._on_request(payload, addr)
        elif isinstance(payload, PullPayload):
            driver = self._sessions.get((addr, payload.session_id))
            if driver is not None:
                driver.on_pull(payload)
        elif isinstance(payload, DonePayload):
            driver = self._sessions.get((addr, payload.session_id))
            if driver is not None:
                driver.on_done(payload)
        else:
            # A client-bound frame echoed back at us; ignore.
            self.malformed_frames += 1

    # Handshake ---------------------------------------------------------------

    def _on_open(self, open_req: OpenPayload, addr: Address) -> None:
        data = self.store.get(open_req.object_name)
        if data is None:
            self._sendto(
                encode_frame(OpenErrPayload(reason=f"unknown object {open_req.object_name!r}")),
                addr,
            )
            return
        key = (addr, open_req.object_name)
        session_id = self._grants.get(key)
        if session_id is None:
            session_id = self._next_session_id
            self._next_session_id += 1
            self._grants[key] = session_id
            self._grant_names[session_id] = open_req.object_name
        self._sendto(
            encode_frame(OpenOkPayload(session_id=session_id, object_bytes=len(data))),
            addr,
        )

    # Session lifecycle -------------------------------------------------------

    def _on_request(self, request: RequestPayload, addr: Address) -> None:
        key = (addr, request.session_id)
        if key in self._sessions:
            # Duplicate REQUEST (client retransmit); the live session stands.
            return
        name = self._grant_names.get(request.session_id)
        object_data = self.store.get(name) if name is not None else None
        if object_data is None or len(object_data) != request.object_bytes:
            # Unknown session id or stale size: nothing to serve.
            return
        core = SenderCore(
            config=self.config,
            session_id=request.session_id,
            object_bytes=request.object_bytes,
            receiver_host_ids=[request.receiver_host],
            local_host=SERVER_HOST_ID,
            link_rate_bps=self.max_rate_bps,
            sender_index=request.sender_index,
            num_senders=request.num_senders,
            object_data=object_data if self.config.carry_payload else None,
        )
        driver = NetSenderDriver(
            core,
            self.scheduler,
            transmit=lambda action, _addr=addr: self._transmit(action, _addr),
            on_complete=lambda _t, _key=key: self._session_done(_key),
        )
        self._sessions[key] = driver
        driver.start()

    def _session_done(self, key: Tuple[Address, int]) -> None:
        if self._sessions.pop(key, None) is None:
            return
        self.sessions_completed += 1
        if self._max_sessions is not None and self.sessions_completed >= self._max_sessions:
            self.finished.set()

    # Output ------------------------------------------------------------------

    def _transmit(self, action: SendPacket, addr: Address) -> None:
        sent_at = self.scheduler.time() if action.kind == KIND_DATA else 0.0
        self._sendto(encode_frame(action.payload, sent_at=sent_at), addr)

    def _sendto(self, datagram: bytes, addr: Address) -> None:
        if self.transport is not None:
            self.transport.sendto(datagram, addr)


async def run_server(
    store: ObjectStore,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    config: Optional[PolyraptorConfig] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    max_sessions: Optional[int] = None,
    max_rate_bps: float = DEFAULT_WIRE_RATE_BPS,
    ready: Optional[asyncio.Event] = None,
) -> PolyraptorServerProtocol:
    """Serve the store on (host, port) until ``max_sessions`` complete.

    With ``max_sessions=None`` the coroutine serves forever (cancel it to
    stop).  ``ready`` is set once the socket is bound, for tests that must
    not race the bind.  Returns the protocol instance (its counters are the
    run's statistics).
    """
    loop = asyncio.get_event_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        lambda: PolyraptorServerProtocol(
            store,
            config=config,
            loss_rate=loss_rate,
            loss_seed=loss_seed,
            max_sessions=max_sessions,
            max_rate_bps=max_rate_bps,
        ),
        local_addr=(host, port),
    )
    if ready is not None:
        ready.set()
    try:
        await protocol.finished.wait()
    finally:
        transport.close()
    return protocol
