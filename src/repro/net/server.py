"""The ``repro serve`` endpoint: Polyraptor object transfers over real UDP.

The server holds a name-keyed :class:`ObjectStore` and answers three kinds
of traffic on one socket:

* ``OPEN`` handshakes, mapping an object name to a freshly granted session
  id (idempotently -- a retransmitted OPEN gets the same grant back, so a
  lost ``OPEN_OK`` costs one round trip, never a duplicate session) and
  negotiating the session's symbol size against the client's path MTU;
* ``REQUEST`` frames, spinning up one
  :class:`~repro.protocol.sender.SenderCore` per session exactly like the
  simulator's agent does on a fetch request (duplicates are ignored);
* ``PULL`` / ``DONE`` frames for the live sessions.

Sessions have a real lifecycle: a grant is retired the moment its session
completes (so a later re-fetch of the same object gets a *new* session id),
grants that never progress to a transfer expire after a TTL, sessions whose
client went silent are reaped after an idle timeout, and a
``max_concurrent_sessions`` cap answers excess OPENs with
``OPEN_ERR code=busy`` instead of growing without bound.  A periodic sweep
on the event loop enforces the TTL and idle limits; every lifecycle event
is counted in a :class:`~repro.obs.MetricRegistry` so ``repro serve
--telemetry`` can export the server's aggregate state.

Junk datagrams are counted and dropped -- :mod:`repro.net.wire` decoding is
total -- so the server survives port scans and version-skewed peers.  An
optional seeded receive-loss rate drops arriving frames to exercise the
protocol's recovery paths in integration tests without real congestion.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.config import PolyraptorConfig
from repro.core.packets import DonePayload, PullPayload, RequestPayload
from repro.net.driver import (
    DEFAULT_WIRE_RATE_BPS,
    NetSenderDriver,
    wire_config,
)
from repro.net.scheduler import AsyncioScheduler
from repro.net.wire import (
    OPEN_ERR_BAD_SYMBOL_SIZE,
    OPEN_ERR_BUSY,
    OPEN_ERR_UNKNOWN_OBJECT,
    OpenErrPayload,
    OpenOkPayload,
    OpenPayload,
    WireError,
    decode_frame,
    encode_frame,
    max_symbol_size_for_mtu,
)
from repro.obs import MetricRegistry
from repro.protocol.actions import KIND_DATA, SendPacket
from repro.protocol.sender import SenderCore

#: Default UDP port of ``repro serve``.
DEFAULT_PORT = 9109

#: Host ids stamped into protocol payloads on the wire.  The real network
#: addresses peers by (ip, port); the protocol-level ids only distinguish
#: the ends of a session.  The client is host 1; the N replica holders of a
#: multi-source fetch take the even ids 0, 2, 4, ... (see
#: :func:`sender_host_id`), so a single-source session keeps the historical
#: server id 0 and no sender ever collides with the client.
SERVER_HOST_ID = 0
CLIENT_HOST_ID = 1

#: Default lifetime of a grant that never progresses to a completed
#: transfer, and default idle bound on a session whose client went silent.
DEFAULT_GRANT_TTL_S = 30.0
DEFAULT_SESSION_IDLE_S = 30.0

Address = Tuple[str, int]


def sender_host_id(sender_index: int) -> int:
    """The protocol host id a replica holder uses for ``sender_index``.

    Even ids (0, 2, 4, ...) keep every sender distinct from the client's
    fixed id 1 for any number of sources, while index 0 maps to the
    historical :data:`SERVER_HOST_ID`.
    """
    return 2 * sender_index


def deterministic_object(size: int, seed: str = "repro") -> bytes:
    """``size`` bytes derived from ``seed`` by a SHA-256 counter stream.

    The same (size, seed) always yields the same bytes, so a CI server and
    its checking script can agree on the expected hash without shipping a
    fixture file.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    chunks = []
    produced = 0
    counter = 0
    while produced < size:
        block = hashlib.sha256(f"{seed}:{counter}".encode("utf-8")).digest()
        chunks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(chunks)[:size]


class ObjectStore:
    """Named objects available for serving."""

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}

    def put(self, name: str, data: bytes) -> None:
        """Add (or replace) one named object."""
        self._objects[name] = data

    def get(self, name: str) -> Optional[bytes]:
        """The object's bytes, or None if the name is unknown."""
        return self._objects.get(name)

    def names(self) -> list[str]:
        """All stored object names, sorted."""
        return sorted(self._objects)

    def __len__(self) -> int:
        return len(self._objects)


@dataclass
class _Grant:
    """One OPEN grant: the session id bound to (client address, object name).

    ``created_at`` is refreshed by retransmitted OPENs and by the REQUEST
    that starts the transfer, so the TTL measures *inactivity*, not age.
    """

    session_id: int
    name: str
    symbol_size: int
    addr: Address
    created_at: float


class PolyraptorServerProtocol(asyncio.DatagramProtocol):
    """One UDP socket serving any number of concurrent fetch sessions."""

    def __init__(
        self,
        store: ObjectStore,
        config: Optional[PolyraptorConfig] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        max_sessions: Optional[int] = None,
        max_rate_bps: float = DEFAULT_WIRE_RATE_BPS,
        max_concurrent_sessions: Optional[int] = None,
        grant_ttl_s: float = DEFAULT_GRANT_TTL_S,
        session_idle_timeout_s: float = DEFAULT_SESSION_IDLE_S,
        mtu: Optional[int] = None,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.store = store
        self.config = config if config is not None else wire_config()
        self.max_rate_bps = max_rate_bps
        self._loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self._max_sessions = max_sessions
        self._max_concurrent = max_concurrent_sessions
        if grant_ttl_s <= 0 or session_idle_timeout_s <= 0:
            raise ValueError("grant_ttl_s and session_idle_timeout_s must be positive")
        self.grant_ttl_s = grant_ttl_s
        self.session_idle_timeout_s = session_idle_timeout_s
        self._symbol_size_cap = self.config.symbol_size_bytes
        if mtu is not None:
            fitting = max_symbol_size_for_mtu(mtu)
            if fitting <= 0:
                raise ValueError(f"mtu {mtu} cannot carry any symbol payload")
            self._symbol_size_cap = min(self._symbol_size_cap, fitting)
        self.registry = registry if registry is not None else MetricRegistry()
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.scheduler: Optional[AsyncioScheduler] = None
        #: OPEN idempotency: (addr, name) -> live grant; session id -> same
        #: grant for REQUEST lookup.  Both retire together.
        self._grants: Dict[Tuple[Address, str], _Grant] = {}
        self._grant_info: Dict[int, _Grant] = {}
        self._next_session_id = 1
        #: every session id ever granted, in grant order (tests assert
        #: completed ids are never reissued)
        self.issued_session_ids: list[int] = []
        #: live sender drivers, keyed by (addr, session id)
        self._sessions: Dict[Tuple[Address, int], NetSenderDriver] = {}
        self._session_activity: Dict[Tuple[Address, int], float] = {}
        self._sweep_handle: Optional[Any] = None
        self.sessions_completed = 0
        self.sessions_reaped = 0
        self.grants_expired = 0
        self.busy_rejections = 0
        self.frames_dropped = 0
        self.malformed_frames = 0
        #: set once ``max_sessions`` sessions have completed
        self.finished = asyncio.Event()

    # Observability ------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(f"net.server.{name}").increment(amount)

    def _update_gauges(self) -> None:
        self.registry.gauge("net.server.grants_active").set(len(self._grant_info))
        self.registry.gauge("net.server.sessions_active").set(len(self._sessions))

    def _fold_session_stats(self, core: SenderCore) -> None:
        """Fold one retiring session's core counters into the aggregates."""
        self._count("symbols_sent", core.symbols_sent)
        self._count("repair_symbols_sent", core.repair_symbols_sent)
        self._count("pulls_received", core.pulls_received)

    # asyncio plumbing ---------------------------------------------------------

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        self.scheduler = AsyncioScheduler(asyncio.get_running_loop())
        self._schedule_sweep()

    def connection_lost(self, exc: Optional[Exception]) -> None:
        if self._sweep_handle is not None:
            self._sweep_handle.cancel()
            self._sweep_handle = None
        for driver in self._sessions.values():
            driver.close()
        self._sessions.clear()
        self._session_activity.clear()

    def error_received(self, exc: Exception) -> None:  # pragma: no cover - OS-dependent
        pass

    def datagram_received(self, data: bytes, addr: Address) -> None:
        if self._loss_rate > 0.0 and self._loss_rng.random() < self._loss_rate:
            self.frames_dropped += 1
            self._count("frames_dropped")
            return
        try:
            frame = decode_frame(data)
        except WireError:
            self.malformed_frames += 1
            self._count("malformed_frames")
            return
        payload = frame.payload
        if isinstance(payload, OpenPayload):
            self._on_open(payload, addr)
        elif isinstance(payload, RequestPayload):
            self._on_request(payload, addr)
        elif isinstance(payload, PullPayload):
            key = (addr, payload.session_id)
            driver = self._sessions.get(key)
            if driver is not None:
                self._session_activity[key] = self.scheduler.time()
                driver.on_pull(payload)
        elif isinstance(payload, DonePayload):
            key = (addr, payload.session_id)
            driver = self._sessions.get(key)
            if driver is not None:
                self._session_activity[key] = self.scheduler.time()
                driver.on_done(payload)
        else:
            # A client-bound frame echoed back at us; ignore.
            self.malformed_frames += 1
            self._count("malformed_frames")

    # Handshake ---------------------------------------------------------------

    def _refuse(self, addr: Address, code: int, reason: str) -> None:
        self._sendto(encode_frame(OpenErrPayload(reason=reason, code=code)), addr)

    def _on_open(self, open_req: OpenPayload, addr: Address) -> None:
        self._count("opens")
        data = self.store.get(open_req.object_name)
        if data is None:
            self._refuse(
                addr,
                OPEN_ERR_UNKNOWN_OBJECT,
                f"unknown object {open_req.object_name!r}",
            )
            return
        now = self.scheduler.time()
        key = (addr, open_req.object_name)
        grant = self._grants.get(key)
        if grant is None:
            if (
                self._max_concurrent is not None
                and len(self._grant_info) >= self._max_concurrent
            ):
                self.busy_rejections += 1
                self._count("busy_rejections")
                self._refuse(
                    addr,
                    OPEN_ERR_BUSY,
                    f"busy: {len(self._grant_info)} of "
                    f"{self._max_concurrent} sessions in use",
                )
                return
            symbol_size = self._symbol_size_cap
            if open_req.symbol_size > 0:
                symbol_size = min(symbol_size, open_req.symbol_size)
            if symbol_size <= 0:
                self._refuse(
                    addr,
                    OPEN_ERR_BAD_SYMBOL_SIZE,
                    f"unusable symbol size {open_req.symbol_size}",
                )
                return
            grant = _Grant(
                session_id=self._next_session_id,
                name=open_req.object_name,
                symbol_size=symbol_size,
                addr=addr,
                created_at=now,
            )
            self._next_session_id += 1
            self._grants[key] = grant
            self._grant_info[grant.session_id] = grant
            self.issued_session_ids.append(grant.session_id)
            self._count("grants_issued")
            self._update_gauges()
        else:
            # Retransmitted OPEN: same grant, refreshed TTL.
            grant.created_at = now
        self._sendto(
            encode_frame(
                OpenOkPayload(
                    session_id=grant.session_id,
                    object_bytes=len(data),
                    symbol_size=grant.symbol_size,
                )
            ),
            addr,
        )

    # Session lifecycle -------------------------------------------------------

    def _session_config(self, grant: _Grant) -> PolyraptorConfig:
        if grant.symbol_size == self.config.symbol_size_bytes:
            return self.config
        return replace(self.config, symbol_size_bytes=grant.symbol_size)

    def _on_request(self, request: RequestPayload, addr: Address) -> None:
        key = (addr, request.session_id)
        now = self.scheduler.time()
        if key in self._sessions:
            # Duplicate REQUEST (client retransmit); the live session stands.
            self._session_activity[key] = now
            return
        grant = self._grant_info.get(request.session_id)
        if grant is None or grant.addr != addr:
            # Unknown or foreign session id: nothing to serve.  A client
            # recovering from our restart re-OPENs first, so this stays rare.
            return
        object_data = self.store.get(grant.name)
        if object_data is None or len(object_data) != request.object_bytes:
            # The object vanished or the grant is stale: reject the mismatch.
            return
        try:
            core = SenderCore(
                config=self._session_config(grant),
                session_id=request.session_id,
                object_bytes=request.object_bytes,
                receiver_host_ids=[request.receiver_host],
                local_host=sender_host_id(request.sender_index),
                link_rate_bps=self.max_rate_bps,
                sender_index=request.sender_index,
                num_senders=request.num_senders,
                object_data=object_data if self.config.carry_payload else None,
            )
        except ValueError:
            # e.g. sender_index >= num_senders from a confused client.
            self.malformed_frames += 1
            self._count("malformed_frames")
            return
        driver = NetSenderDriver(
            core,
            self.scheduler,
            transmit=lambda action, _addr=addr: self._transmit(action, _addr),
            on_complete=lambda _t, _key=key: self._session_done(_key),
        )
        grant.created_at = now
        self._sessions[key] = driver
        self._session_activity[key] = now
        self._count("sessions_started")
        self._update_gauges()
        driver.start()

    def _retire_grant(self, session_id: int) -> None:
        grant = self._grant_info.pop(session_id, None)
        if grant is not None:
            self._grants.pop((grant.addr, grant.name), None)

    def _session_done(self, key: Tuple[Address, int]) -> None:
        driver = self._sessions.pop(key, None)
        if driver is None:
            return
        driver.close()
        self._session_activity.pop(key, None)
        self._retire_grant(key[1])
        self._fold_session_stats(driver.core)
        self.sessions_completed += 1
        self._count("sessions_completed")
        self._update_gauges()
        if self._max_sessions is not None and self.sessions_completed >= self._max_sessions:
            self.finished.set()

    # TTL / idle sweep ---------------------------------------------------------

    @property
    def _sweep_interval_s(self) -> float:
        return max(0.05, min(self.grant_ttl_s, self.session_idle_timeout_s) / 4.0)

    def _schedule_sweep(self) -> None:
        self._sweep_handle = self.scheduler.call_later(
            self._sweep_interval_s, self._sweep
        )

    def _sweep(self) -> None:
        """Reap idle sessions and expired grants; reschedules itself."""
        now = self.scheduler.time()
        for key, driver in list(self._sessions.items()):
            last = self._session_activity.get(key, now)
            if now - last > self.session_idle_timeout_s:
                del self._sessions[key]
                self._session_activity.pop(key, None)
                driver.close()
                self._retire_grant(key[1])
                self._fold_session_stats(driver.core)
                self.sessions_reaped += 1
                self._count("sessions_reaped")
        for session_id, grant in list(self._grant_info.items()):
            if (grant.addr, session_id) in self._sessions:
                continue  # a live transfer keeps its grant
            if now - grant.created_at > self.grant_ttl_s:
                self._retire_grant(session_id)
                self.grants_expired += 1
                self._count("grants_expired")
        self._update_gauges()
        self._schedule_sweep()

    # Output ------------------------------------------------------------------

    def _transmit(self, action: SendPacket, addr: Address) -> None:
        sent_at = self.scheduler.time() if action.kind == KIND_DATA else 0.0
        self._sendto(encode_frame(action.payload, sent_at=sent_at), addr)

    def _sendto(self, datagram: bytes, addr: Address) -> None:
        if self.transport is not None:
            self.transport.sendto(datagram, addr)


async def run_server(
    store: ObjectStore,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    config: Optional[PolyraptorConfig] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    max_sessions: Optional[int] = None,
    max_rate_bps: float = DEFAULT_WIRE_RATE_BPS,
    ready: Optional[asyncio.Event] = None,
    max_concurrent_sessions: Optional[int] = None,
    grant_ttl_s: float = DEFAULT_GRANT_TTL_S,
    session_idle_timeout_s: float = DEFAULT_SESSION_IDLE_S,
    mtu: Optional[int] = None,
    registry: Optional[MetricRegistry] = None,
) -> PolyraptorServerProtocol:
    """Serve the store on (host, port) until ``max_sessions`` complete.

    With ``max_sessions=None`` the coroutine serves forever (cancel it to
    stop).  ``ready`` is set once the socket is bound, for tests that must
    not race the bind.  Returns the protocol instance (its counters are the
    run's statistics).
    """
    loop = asyncio.get_running_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        lambda: PolyraptorServerProtocol(
            store,
            config=config,
            loss_rate=loss_rate,
            loss_seed=loss_seed,
            max_sessions=max_sessions,
            max_rate_bps=max_rate_bps,
            max_concurrent_sessions=max_concurrent_sessions,
            grant_ttl_s=grant_ttl_s,
            session_idle_timeout_s=session_idle_timeout_s,
            mtu=mtu,
            registry=registry,
        ),
        local_addr=(host, port),
    )
    if ready is not None:
        ready.set()
    try:
        await protocol.finished.wait()
    finally:
        transport.close()
    return protocol
