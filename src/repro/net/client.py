"""The ``repro fetch`` endpoint: retrieve one named object over real UDP.

A fetch is three phases on one socket:

1. **Open** -- send ``OPEN(name)`` until an ``OPEN_OK`` (session id +
   object size) or ``OPEN_ERR`` arrives; retransmits are idempotent
   server-side, so a lost grant costs one round trip.
2. **Transfer** -- run a :class:`~repro.protocol.receiver.ReceiverCore`
   through :class:`~repro.net.driver.NetReceiverDriver`: the REQUEST goes
   out (retransmitted if the server stays silent), symbols stream back,
   pulls are paced by TFRC, and the stall timer plus gap-triggered pulls
   recover from datagram loss.
3. **Linger** -- after decoding completes, stay up briefly so DONE
   retransmissions can land their acks and the server can retire the
   session cleanly.

An optional seeded loss rate drops arriving *symbol* frames before they
reach the protocol core, turning a clean loopback into a reproducibly
lossy path for integration tests.
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional

from repro.core.config import PolyraptorConfig
from repro.core.packets import DoneAckPayload, SymbolPayload
from repro.net.driver import DEFAULT_WIRE_RATE_BPS, NetReceiverDriver, wire_config
from repro.net.scheduler import AsyncioScheduler
from repro.net.server import CLIENT_HOST_ID, DEFAULT_PORT, SERVER_HOST_ID
from repro.net.wire import (
    OpenErrPayload,
    OpenOkPayload,
    OpenPayload,
    WireError,
    decode_frame,
    encode_frame,
)
from repro.protocol.actions import SendPacket
from repro.protocol.receiver import ReceiverCore


class FetchError(RuntimeError):
    """A fetch could not be completed (refused, timed out, or undecodable)."""


class _FetchProtocol(asyncio.DatagramProtocol):
    """Client-side socket glue: frames in, driver events out."""

    def __init__(self, loss_rate: float, loss_seed: int) -> None:
        self._loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.driver: Optional[NetReceiverDriver] = None
        self.grant: Optional[asyncio.Future] = None
        self.frames_dropped = 0
        self.malformed_frames = 0

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        self.grant = asyncio.get_event_loop().create_future()

    def error_received(self, exc: Exception) -> None:  # pragma: no cover - OS-dependent
        # e.g. ICMP port-unreachable while the server is still starting;
        # the OPEN retry loop absorbs it.
        pass

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            frame = decode_frame(data)
        except WireError:
            self.malformed_frames += 1
            return
        payload = frame.payload
        if isinstance(payload, SymbolPayload):
            if self._loss_rate > 0.0 and self._loss_rng.random() < self._loss_rate:
                self.frames_dropped += 1
                return
            if (
                self.driver is not None
                and payload.session_id == self.driver.core.session_id
            ):
                self.driver.on_symbol(payload, sent_at=frame.sent_at)
        elif isinstance(payload, DoneAckPayload):
            if (
                self.driver is not None
                and payload.session_id == self.driver.core.session_id
            ):
                self.driver.on_done_ack(payload)
        elif isinstance(payload, (OpenOkPayload, OpenErrPayload)):
            if self.grant is not None and not self.grant.done():
                self.grant.set_result(payload)
        else:
            # Server-bound frame looped back at us; ignore.
            self.malformed_frames += 1

    def send_raw(self, datagram: bytes) -> None:
        if self.transport is not None:
            self.transport.sendto(datagram)

    def transmit(self, action: SendPacket) -> None:
        self.send_raw(encode_frame(action.payload))


def _done_fully_acked(core: ReceiverCore) -> bool:
    senders = core._known_senders | set(core.expected_senders)
    return not (senders - core._done_acked)


async def fetch_object_async(
    name: str,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    config: Optional[PolyraptorConfig] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 1,
    max_rate_bps: float = DEFAULT_WIRE_RATE_BPS,
    open_timeout_s: float = 0.5,
    open_retries: int = 5,
    transfer_timeout_s: float = 30.0,
    linger_s: float = 0.25,
) -> bytes:
    """Fetch one named object from a ``repro serve`` endpoint.

    Returns the decoded object bytes; raises :class:`FetchError` on refusal
    or timeout.
    """
    config = config if config is not None else wire_config()
    if not config.carry_payload:
        raise FetchError("fetching real bytes requires a carry_payload config")
    loop = asyncio.get_event_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        lambda: _FetchProtocol(loss_rate, loss_seed),
        remote_addr=(host, port),
    )
    try:
        grant = await _open_session(protocol, name, open_timeout_s, open_retries)
        scheduler = AsyncioScheduler(loop)
        completed = asyncio.Event()
        core = ReceiverCore(
            config=config,
            session_id=grant.session_id,
            object_bytes=grant.object_bytes,
            local_host=CLIENT_HOST_ID,
            expected_senders=[SERVER_HOST_ID],
            now=scheduler.time(),
        )
        driver = NetReceiverDriver(
            core,
            scheduler,
            transmit=protocol.transmit,
            on_complete=lambda _t: completed.set(),
            max_rate_bps=max_rate_bps,
        )
        protocol.driver = driver
        driver.start_fetch()

        deadline = loop.time() + transfer_timeout_s
        while not completed.is_set():
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise FetchError(
                    f"transfer of {name!r} timed out after {transfer_timeout_s}s "
                    f"({core.symbols_received} symbols received)"
                )
            try:
                await asyncio.wait_for(
                    completed.wait(), min(remaining, open_timeout_s)
                )
            except asyncio.TimeoutError:
                if core.symbols_received == 0 and core.trimmed_received == 0:
                    # The REQUEST (or the whole initial window) was lost and
                    # the server never learned of the session; REQUESTs are
                    # idempotent, so just ask again.
                    driver.start_fetch()

        data = core.received_data
        if data is None:
            raise FetchError(f"transfer of {name!r} completed without a decoded payload")

        # Let DONE retransmissions land their acks so the server retires the
        # session; bounded, and cut short as soon as every ack is in.
        linger_deadline = loop.time() + linger_s
        while loop.time() < linger_deadline and not _done_fully_acked(core):
            await asyncio.sleep(0.01)
        return data
    finally:
        transport.close()


async def _open_session(
    protocol: _FetchProtocol,
    name: str,
    open_timeout_s: float,
    open_retries: int,
) -> OpenOkPayload:
    open_frame = encode_frame(OpenPayload(object_name=name))
    for _ in range(max(1, open_retries)):
        protocol.send_raw(open_frame)
        try:
            reply = await asyncio.wait_for(
                asyncio.shield(protocol.grant), open_timeout_s
            )
        except asyncio.TimeoutError:
            continue
        if isinstance(reply, OpenErrPayload):
            raise FetchError(f"server refused {name!r}: {reply.reason}")
        return reply
    raise FetchError(
        f"no reply to OPEN({name!r}) after {max(1, open_retries)} attempts"
    )


def fetch_object(name: str, **kwargs) -> bytes:
    """Synchronous wrapper around :func:`fetch_object_async` (runs its own loop)."""
    return asyncio.run(fetch_object_async(name, **kwargs))
