"""The ``repro fetch`` endpoint: retrieve one named object over real UDP.

A fetch is three phases, one socket **per source** (a single server by
default, or any number of replica holders via ``sources=[...]``):

1. **Open** -- send ``OPEN(name, symbol_size)`` to every source until an
   ``OPEN_OK`` (session id + object size + granted symbol size) or
   ``OPEN_ERR`` arrives; retransmits are idempotent server-side, so a lost
   grant costs one round trip.  Every source must grant the same object
   size and symbol size -- mismatched grants abort the fetch.
2. **Transfer** -- run a single
   :class:`~repro.protocol.receiver.ReceiverCore` (with one expected
   sender per source) through
   :class:`~repro.net.driver.NetReceiverDriver`: REQUESTs go out to every
   source, symbols from all of them fold into one decode, pulls are paced
   by TFRC and routed to whichever sender delivered (the paper's natural
   load balancing), and the stall timer plus gap-triggered pulls recover
   from datagram loss.  Each server grants its *own* session id; the
   per-source connection translates between that wire id and the core's
   local session id on every frame, so the core never has to know.
3. **Linger** -- after decoding completes, stay up briefly so DONE
   retransmissions can land their acks and the servers can retire their
   sessions cleanly.

A source that stays silent for ``resume_interval_s`` -- regardless of how
many symbols it already delivered -- is re-opened and re-requested.  While
the server still holds the grant this is a pure (idempotent) retransmit;
after a server restart it obtains a fresh grant, re-binds the connection's
wire session id and resumes the transfer with the symbols already decoded,
so a mid-transfer restart costs one silent interval, not the whole fetch.

An optional seeded loss rate drops arriving *symbol* frames before they
reach the protocol core, turning a clean loopback into a reproducibly
lossy path for integration tests (each source's drop stream is seeded
independently).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import replace as dc_replace
from typing import Optional, Sequence, Tuple

from repro.core.config import PolyraptorConfig
from repro.core.packets import DoneAckPayload, SymbolPayload
from repro.net.driver import DEFAULT_WIRE_RATE_BPS, NetReceiverDriver, wire_config
from repro.net.scheduler import AsyncioScheduler
from repro.net.server import (
    CLIENT_HOST_ID,
    DEFAULT_PORT,
    sender_host_id,
)
from repro.net.wire import (
    OpenErrPayload,
    OpenOkPayload,
    OpenPayload,
    WireError,
    decode_frame,
    encode_frame,
    max_symbol_size_for_mtu,
)
from repro.protocol.actions import SendPacket
from repro.protocol.receiver import ReceiverCore


class FetchError(RuntimeError):
    """A fetch could not be completed (refused, timed out, or undecodable)."""


class _FetchProtocol(asyncio.DatagramProtocol):
    """Client-side socket glue for one source: frames in, driver events out.

    Owns the source's wire-level session id (the id *this* server granted)
    and rewrites it to the core's local session id on arriving frames --
    and back on departing ones -- so one :class:`ReceiverCore` can fold
    symbols from any number of independently granted sessions.
    """

    def __init__(self, loss_rate: float, loss_seed: int, index: int = 0) -> None:
        self._loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self.index = index
        #: the protocol host id this source's sender stamps on its symbols
        self.sender_host = sender_host_id(index)
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.driver: Optional[NetReceiverDriver] = None
        self.grant: Optional[asyncio.Future] = None
        #: the session id granted by this source's server (None until open)
        self.wire_session_id: Optional[int] = None
        #: loop time of the last frame this source delivered to the driver
        self.last_heard = 0.0
        self.frames_dropped = 0
        self.malformed_frames = 0

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        self.grant = asyncio.get_running_loop().create_future()

    def reset_grant(self) -> None:
        """Arm a fresh grant future (before an OPEN or a recovery re-OPEN)."""
        self.grant = asyncio.get_running_loop().create_future()

    def error_received(self, exc: Exception) -> None:  # pragma: no cover - OS-dependent
        # e.g. ICMP port-unreachable while the server is still starting;
        # the OPEN retry loop absorbs it.
        pass

    def _expected_session_id(self) -> Optional[int]:
        if self.wire_session_id is not None:
            return self.wire_session_id
        if self.driver is not None:
            return self.driver.core.session_id
        return None

    def _to_core(self, payload):
        """Rewrite a wire-session payload to the core's local session id."""
        core_id = self.driver.core.session_id
        if payload.session_id != core_id:
            payload = dc_replace(payload, session_id=core_id)
        return payload

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            frame = decode_frame(data)
        except WireError:
            self.malformed_frames += 1
            return
        payload = frame.payload
        if isinstance(payload, SymbolPayload):
            if self._loss_rate > 0.0 and self._loss_rng.random() < self._loss_rate:
                self.frames_dropped += 1
                return
            if (
                self.driver is not None
                and payload.session_id == self._expected_session_id()
            ):
                self._note_heard()
                self.driver.on_symbol(self._to_core(payload), sent_at=frame.sent_at)
        elif isinstance(payload, DoneAckPayload):
            if (
                self.driver is not None
                and payload.session_id == self._expected_session_id()
            ):
                self._note_heard()
                self.driver.on_done_ack(self._to_core(payload))
        elif isinstance(payload, (OpenOkPayload, OpenErrPayload)):
            if self.grant is not None and not self.grant.done():
                self.grant.set_result(payload)
        else:
            # Server-bound frame looped back at us; ignore.
            self.malformed_frames += 1

    def _note_heard(self) -> None:
        self.last_heard = asyncio.get_running_loop().time()

    def send_raw(self, datagram: bytes) -> None:
        if self.transport is not None:
            self.transport.sendto(datagram)

    def transmit(self, action: SendPacket) -> None:
        """Send one core action to this source, stamped with its wire id."""
        payload = action.payload
        if (
            self.wire_session_id is not None
            and payload.session_id != self.wire_session_id
        ):
            payload = dc_replace(payload, session_id=self.wire_session_id)
        self.send_raw(encode_frame(payload))


def _granted_symbol_size(grant: OpenOkPayload, default: int) -> int:
    """The symbol size a grant fixes (0 means the server offered no opinion)."""
    return grant.symbol_size if grant.symbol_size > 0 else default


async def fetch_object_async(
    name: str,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    sources: Optional[Sequence[Tuple[str, int]]] = None,
    config: Optional[PolyraptorConfig] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 1,
    max_rate_bps: float = DEFAULT_WIRE_RATE_BPS,
    open_timeout_s: float = 0.5,
    open_retries: int = 5,
    transfer_timeout_s: float = 30.0,
    linger_s: float = 0.25,
    mtu: Optional[int] = None,
    resume_interval_s: float = 1.0,
) -> bytes:
    """Fetch one named object from one or more ``repro serve`` endpoints.

    ``sources`` is a sequence of (host, port) replica holders; when omitted
    the single (``host``, ``port``) pair is used.  With N sources the fetch
    opens one session per server and folds all their symbols into a single
    decode.  ``mtu`` caps the proposed symbol size so every DATA frame fits
    one datagram of that path MTU.  Returns the decoded object bytes;
    raises :class:`FetchError` on refusal, mismatched grants or timeout.
    """
    config = config if config is not None else wire_config()
    if not config.carry_payload:
        raise FetchError("fetching real bytes requires a carry_payload config")
    endpoints = list(sources) if sources else [(host, port)]
    if not endpoints:
        raise FetchError("a fetch needs at least one source")
    proposal = config.symbol_size_bytes
    if mtu is not None:
        fitting = max_symbol_size_for_mtu(mtu)
        if fitting <= 0:
            raise FetchError(f"mtu {mtu} cannot carry any symbol payload")
        proposal = min(proposal, fitting)
    if resume_interval_s <= 0:
        raise FetchError("resume_interval_s must be positive")

    loop = asyncio.get_running_loop()
    connections: list[_FetchProtocol] = []
    try:
        for index, (src_host, src_port) in enumerate(endpoints):
            _, protocol = await loop.create_datagram_endpoint(
                lambda idx=index: _FetchProtocol(loss_rate, loss_seed + idx, idx),
                remote_addr=(src_host, src_port),
            )
            connections.append(protocol)

        grants = await asyncio.gather(
            *(
                _open_session(conn, name, proposal, open_timeout_s, open_retries)
                for conn in connections
            )
        )
        object_bytes = grants[0].object_bytes
        symbol_size = _granted_symbol_size(grants[0], config.symbol_size_bytes)
        for endpoint, grant in zip(endpoints, grants):
            granted = _granted_symbol_size(grant, config.symbol_size_bytes)
            if grant.object_bytes != object_bytes or granted != symbol_size:
                raise FetchError(
                    f"mismatched grants for {name!r}: {endpoint[0]}:{endpoint[1]} "
                    f"offers {grant.object_bytes} bytes in {granted}-byte symbols, "
                    f"expected {object_bytes} bytes in {symbol_size}-byte symbols"
                )
        if symbol_size > proposal:
            raise FetchError(
                f"server granted {symbol_size}-byte symbols, larger than the "
                f"proposed {proposal} (path MTU would fragment every frame)"
            )
        if symbol_size != config.symbol_size_bytes:
            config = dc_replace(config, symbol_size_bytes=symbol_size)

        scheduler = AsyncioScheduler(loop)
        completed = asyncio.Event()
        core = ReceiverCore(
            config=config,
            session_id=grants[0].session_id,
            object_bytes=object_bytes,
            local_host=CLIENT_HOST_ID,
            expected_senders=[conn.sender_host for conn in connections],
            now=scheduler.time(),
        )
        by_sender = {conn.sender_host: conn for conn in connections}

        def route(action: SendPacket) -> None:
            conn = by_sender.get(action.dest)
            if conn is not None:
                conn.transmit(action)

        driver = NetReceiverDriver(
            core,
            scheduler,
            transmit=route,
            on_complete=lambda _t: completed.set(),
            max_rate_bps=max_rate_bps,
        )
        now = loop.time()
        for conn, grant in zip(connections, grants):
            conn.wire_session_id = grant.session_id
            conn.driver = driver
            conn.last_heard = now
        driver.start_fetch()

        deadline = loop.time() + transfer_timeout_s
        while not completed.is_set():
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise FetchError(
                    f"transfer of {name!r} timed out after {transfer_timeout_s}s "
                    f"({core.symbols_received} symbols received)"
                )
            try:
                await asyncio.wait_for(
                    completed.wait(), min(remaining, open_timeout_s)
                )
                break
            except asyncio.TimeoutError:
                pass
            if core.symbols_received == 0 and core.trimmed_received == 0:
                # The REQUESTs (or the whole initial window) were lost and
                # no server ever learned of the session; REQUESTs are
                # idempotent, so just ask again.
                driver.start_fetch()
            await _recover_silent_sources(
                connections, driver, name, proposal, object_bytes, symbol_size,
                config, open_timeout_s, resume_interval_s, completed,
            )

        data = core.received_data
        if data is None:
            raise FetchError(f"transfer of {name!r} completed without a decoded payload")

        # Let DONE retransmissions land their acks so the servers retire
        # their sessions; bounded, and cut short as soon as every ack is in.
        linger_deadline = loop.time() + linger_s
        while loop.time() < linger_deadline and not core.done_fully_acked:
            await asyncio.sleep(0.01)
        return data
    finally:
        for conn in connections:
            if conn.transport is not None:
                conn.transport.close()


async def _recover_silent_sources(
    connections: Sequence[_FetchProtocol],
    driver: NetReceiverDriver,
    name: str,
    proposal: int,
    object_bytes: int,
    symbol_size: int,
    config: PolyraptorConfig,
    open_timeout_s: float,
    resume_interval_s: float,
    completed: asyncio.Event,
) -> None:
    """Re-OPEN and re-REQUEST every source silent past ``resume_interval_s``.

    Unconditional on prior progress: a server restarted mid-transfer holds
    no grant for our session id anymore, so a bare re-REQUEST would be
    ignored forever -- the re-OPEN either returns the same grant (server
    alive, a pure idempotent retransmit) or a fresh one (server restarted),
    which is re-bound to the connection before the REQUESTs go out again.
    A re-grant that changes the object's size or symbol size is a different
    object and aborts the fetch.
    """
    loop = asyncio.get_running_loop()
    for conn in connections:
        if completed.is_set():
            return
        if loop.time() - conn.last_heard <= resume_interval_s:
            continue
        # Pace the attempts: one re-OPEN per silent interval per source.
        conn.last_heard = loop.time()
        try:
            grant = await _open_session(conn, name, proposal, open_timeout_s, 1)
        except FetchError:
            continue  # still down; the overall deadline bounds the retries
        if (
            grant.object_bytes != object_bytes
            or _granted_symbol_size(grant, config.symbol_size_bytes) != symbol_size
        ):
            raise FetchError(
                f"source {conn.index} re-granted {name!r} with different "
                f"parameters mid-transfer (object changed on the server?)"
            )
        conn.wire_session_id = grant.session_id
        if not completed.is_set():
            driver.start_fetch()


async def _open_session(
    protocol: _FetchProtocol,
    name: str,
    symbol_size: int,
    open_timeout_s: float,
    open_retries: int,
) -> OpenOkPayload:
    open_frame = encode_frame(OpenPayload(object_name=name, symbol_size=symbol_size))
    protocol.reset_grant()
    for _ in range(max(1, open_retries)):
        protocol.send_raw(open_frame)
        try:
            reply = await asyncio.wait_for(
                asyncio.shield(protocol.grant), open_timeout_s
            )
        except asyncio.TimeoutError:
            continue
        if isinstance(reply, OpenErrPayload):
            raise FetchError(f"server refused {name!r}: {reply.reason}")
        return reply
    raise FetchError(
        f"no reply to OPEN({name!r}) after {max(1, open_retries)} attempts"
    )


def fetch_object(name: str, **kwargs) -> bytes:
    """Synchronous wrapper around :func:`fetch_object_async` (runs its own loop)."""
    return asyncio.run(fetch_object_async(name, **kwargs))
