"""Real-network Polyraptor: asyncio UDP endpoints over the protocol core.

This package drives the exact same state machines as the simulator
(:mod:`repro.protocol`) from real sockets:

* :mod:`repro.net.wire` -- versioned binary framing for every protocol
  packet plus the OPEN handshake that maps object names to sessions;
* :mod:`repro.net.scheduler` -- the clock/timer abstraction
  (:class:`AsyncioScheduler` for real endpoints,
  :class:`ManualScheduler` for deterministic tests);
* :mod:`repro.net.driver` -- sender/receiver drivers applying core actions
  to a datagram transport, and :func:`wire_config`, the
  :class:`~repro.core.config.PolyraptorConfig` profile tuned for lossy UDP;
* :mod:`repro.net.server` / :mod:`repro.net.client` -- the
  ``repro serve`` / ``repro fetch`` endpoints completing real loopback
  object transfers.

Only the Python standard library's ``asyncio`` is used -- no extra
dependencies.
"""

from repro.net.client import FetchError, fetch_object, fetch_object_async
from repro.net.driver import NetReceiverDriver, NetSenderDriver, wire_config
from repro.net.scheduler import AsyncioScheduler, ManualScheduler, NetTimer
from repro.net.server import (
    DEFAULT_PORT,
    ObjectStore,
    PolyraptorServerProtocol,
    deterministic_object,
    run_server,
    sender_host_id,
)
from repro.net.wire import WireError, decode_frame, encode_frame, max_symbol_size_for_mtu

__all__ = [
    "AsyncioScheduler",
    "DEFAULT_PORT",
    "FetchError",
    "ManualScheduler",
    "NetReceiverDriver",
    "NetSenderDriver",
    "NetTimer",
    "ObjectStore",
    "PolyraptorServerProtocol",
    "WireError",
    "decode_frame",
    "deterministic_object",
    "encode_frame",
    "fetch_object",
    "fetch_object_async",
    "max_symbol_size_for_mtu",
    "run_server",
    "sender_host_id",
    "wire_config",
]
