"""Versioned wire framing for Polyraptor over UDP.

One datagram carries one frame::

    +-------+---------+------+------------------------+
    | magic | version | type | type-specific body     |
    | 2 B   | 1 B     | 1 B  | struct-packed + tail   |
    +-------+---------+------+------------------------+

The five protocol payloads of :mod:`repro.core.packets` are encoded
verbatim (same fields, no reinterpretation), plus three session-setup
frames for the name-to-session handshake a real network needs (the sim
hands out session ids out of band):

* ``OPEN``      -- client asks for an object by name, proposing the
  largest symbol payload its path MTU admits (0 = no preference);
* ``OPEN_OK``   -- server grants a session id, reveals the object size and
  fixes the session's symbol size (never larger than the proposal);
* ``OPEN_ERR``  -- server refuses, with a machine-readable code
  (unknown object, busy, unusable symbol size) and a reason string.

Symbol frames additionally carry the sender's monotonic emission timestamp
(``sent_at``) so receivers can take RTT samples for TFRC, exactly like the
simulator stamps ``Packet.created_at``.

Every decoder is total: malformed input of any kind raises
:class:`WireError`, never an unhandled struct/index error, so a server
can sit on a public port without crashing on junk datagrams.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.packets import (
    DoneAckPayload,
    DonePayload,
    PullPayload,
    RequestPayload,
    SymbolPayload,
)

#: First bytes of every frame.
MAGIC = b"PQ"
#: Bumped on any incompatible framing change; decoders reject other versions.
#: Version 2 added symbol-size negotiation to OPEN/OPEN_OK and the refusal
#: code to OPEN_ERR.
WIRE_VERSION = 2

_HEADER = struct.Struct("!2sBB")

TYPE_SYMBOL = 1
TYPE_PULL = 2
TYPE_REQUEST = 3
TYPE_DONE = 4
TYPE_DONE_ACK = 5
TYPE_OPEN = 6
TYPE_OPEN_OK = 7
TYPE_OPEN_ERR = 8

_SYMBOL = struct.Struct("!QIIIIIQIdBI")  # ... sent_at(d), flags(B), data length(I); data = tail
_PULL = struct.Struct("!QIIiId")  # block_hint: -1 encodes None
_REQUEST = struct.Struct("!QIQII")
_DONE = struct.Struct("!QI")
_DONE_ACK = struct.Struct("!QI")
_OPEN = struct.Struct("!IH")  # proposed symbol size, name length; name = tail
_OPEN_OK = struct.Struct("!QQI")  # session id, object bytes, granted symbol size
_OPEN_ERR = struct.Struct("!BH")  # refusal code, reason length; reason = tail

_FLAG_HAS_DATA = 0x01

#: OPEN_ERR refusal codes.
OPEN_ERR_UNKNOWN_OBJECT = 1
OPEN_ERR_BUSY = 2
OPEN_ERR_BAD_SYMBOL_SIZE = 3

#: IPv4 + UDP header bytes between the link MTU and the datagram payload.
UDP_IPV4_OVERHEAD = 28

#: Frame bytes around a symbol's data tail (frame header + symbol body).
SYMBOL_FRAME_OVERHEAD = _HEADER.size + _SYMBOL.size


def max_symbol_size_for_mtu(mtu: int) -> int:
    """The largest symbol payload whose DATA frame fits one ``mtu`` datagram.

    Accounts for the IPv4/UDP headers and the symbol frame's own framing;
    the result can be zero or negative for absurdly small MTUs, which
    callers must reject.
    """
    return mtu - UDP_IPV4_OVERHEAD - SYMBOL_FRAME_OVERHEAD


class WireError(ValueError):
    """A frame could not be decoded (truncated, junk, or wrong version)."""


@dataclass(frozen=True)
class OpenPayload:
    """Client -> server: open a transfer session for a named object.

    ``symbol_size`` is the largest symbol payload the client's path MTU
    admits (0 = no preference; the server grants its own default).
    """

    object_name: str
    symbol_size: int = 0


@dataclass(frozen=True)
class OpenOkPayload:
    """Server -> client: the granted session id, object size and symbol size.

    The granted ``symbol_size`` is final for the session: the receiver must
    partition the object with it, and it is never larger than the client's
    proposal (when one was made).
    """

    session_id: int
    object_bytes: int
    symbol_size: int = 0


@dataclass(frozen=True)
class OpenErrPayload:
    """Server -> client: the open was refused.

    ``code`` is machine-readable (:data:`OPEN_ERR_UNKNOWN_OBJECT`,
    :data:`OPEN_ERR_BUSY`, :data:`OPEN_ERR_BAD_SYMBOL_SIZE`); ``reason``
    is the human-readable explanation.
    """

    reason: str
    code: int = OPEN_ERR_UNKNOWN_OBJECT


WirePayload = Union[
    SymbolPayload,
    PullPayload,
    RequestPayload,
    DonePayload,
    DoneAckPayload,
    OpenPayload,
    OpenOkPayload,
    OpenErrPayload,
]


@dataclass(frozen=True)
class WireFrame:
    """One decoded frame: the protocol payload plus frame-level metadata."""

    payload: WirePayload
    #: sender's monotonic emission time (symbol frames only; 0.0 otherwise)
    sent_at: float = 0.0


def encode_frame(payload: WirePayload, sent_at: float = 0.0) -> bytes:
    """Encode one protocol payload into a datagram."""
    if isinstance(payload, SymbolPayload):
        flags = _FLAG_HAS_DATA if payload.data is not None else 0
        tail = payload.data if payload.data is not None else b""
        body = _SYMBOL.pack(
            payload.session_id,
            payload.sender_host,
            payload.block_number,
            payload.esi,
            payload.block_symbol_count,
            payload.num_blocks,
            payload.object_bytes,
            payload.sequence,
            sent_at,
            flags,
            len(tail),
        )
        return _header(TYPE_SYMBOL) + body + tail
    if isinstance(payload, PullPayload):
        hint = -1 if payload.block_hint is None else payload.block_hint
        return _header(TYPE_PULL) + _PULL.pack(
            payload.session_id,
            payload.receiver_host,
            payload.pull_sequence,
            hint,
            payload.congestion_echo,
            payload.loss_estimate,
        )
    if isinstance(payload, RequestPayload):
        return _header(TYPE_REQUEST) + _REQUEST.pack(
            payload.session_id,
            payload.receiver_host,
            payload.object_bytes,
            payload.sender_index,
            payload.num_senders,
        )
    if isinstance(payload, DonePayload):
        return _header(TYPE_DONE) + _DONE.pack(payload.session_id, payload.receiver_host)
    if isinstance(payload, DoneAckPayload):
        return _header(TYPE_DONE_ACK) + _DONE_ACK.pack(
            payload.session_id, payload.sender_host
        )
    if isinstance(payload, OpenPayload):
        name = payload.object_name.encode("utf-8")
        return _header(TYPE_OPEN) + _OPEN.pack(payload.symbol_size, len(name)) + name
    if isinstance(payload, OpenOkPayload):
        return _header(TYPE_OPEN_OK) + _OPEN_OK.pack(
            payload.session_id, payload.object_bytes, payload.symbol_size
        )
    if isinstance(payload, OpenErrPayload):
        reason = payload.reason.encode("utf-8")
        return _header(TYPE_OPEN_ERR) + _OPEN_ERR.pack(
            payload.code, len(reason)
        ) + reason
    raise WireError(f"cannot encode payload of type {type(payload).__name__}")


def decode_frame(data: bytes) -> WireFrame:
    """Decode one datagram into a :class:`WireFrame`.

    Raises:
        WireError: on anything that is not a well-formed frame of the
            current :data:`WIRE_VERSION`.
    """
    if len(data) < _HEADER.size:
        raise WireError(f"frame too short ({len(data)} bytes)")
    magic, version, frame_type = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version}")
    body = data[_HEADER.size:]
    try:
        return _decode_body(frame_type, body)
    except (struct.error, UnicodeDecodeError) as exc:
        raise WireError(f"malformed frame body (type {frame_type}): {exc}") from exc


def _decode_body(frame_type: int, body: bytes) -> WireFrame:
    if frame_type == TYPE_SYMBOL:
        fields = _SYMBOL.unpack_from(body)
        (session_id, sender_host, block, esi, k, num_blocks,
         object_bytes, sequence, sent_at, flags, data_len) = fields
        tail = body[_SYMBOL.size:]
        data: Optional[bytes] = None
        if flags & _FLAG_HAS_DATA:
            # The declared length makes truncated symbol payloads detectable
            # (the tail would otherwise silently absorb any cut).
            if len(tail) != data_len:
                raise WireError(
                    f"symbol data is {len(tail)} bytes, expected {data_len}"
                )
            data = bytes(tail)
        elif tail:
            raise WireError("dataless symbol frame has trailing bytes")
        return WireFrame(
            SymbolPayload(
                session_id=session_id,
                sender_host=sender_host,
                block_number=block,
                esi=esi,
                block_symbol_count=k,
                num_blocks=num_blocks,
                object_bytes=object_bytes,
                data=data,
                sequence=sequence,
            ),
            sent_at=sent_at,
        )
    if frame_type == TYPE_PULL:
        session_id, receiver_host, pull_sequence, hint, echo, loss = _require_exact(
            _PULL, body
        )
        return WireFrame(
            PullPayload(
                session_id=session_id,
                receiver_host=receiver_host,
                pull_sequence=pull_sequence,
                block_hint=None if hint < 0 else hint,
                congestion_echo=echo,
                loss_estimate=loss,
            )
        )
    if frame_type == TYPE_REQUEST:
        session_id, receiver_host, object_bytes, index, num = _require_exact(
            _REQUEST, body
        )
        return WireFrame(
            RequestPayload(
                session_id=session_id,
                receiver_host=receiver_host,
                object_bytes=object_bytes,
                sender_index=index,
                num_senders=num,
            )
        )
    if frame_type == TYPE_DONE:
        session_id, receiver_host = _require_exact(_DONE, body)
        return WireFrame(DonePayload(session_id=session_id, receiver_host=receiver_host))
    if frame_type == TYPE_DONE_ACK:
        session_id, sender_host = _require_exact(_DONE_ACK, body)
        return WireFrame(DoneAckPayload(session_id=session_id, sender_host=sender_host))
    if frame_type == TYPE_OPEN:
        symbol_size, length = _OPEN.unpack_from(body)
        name = body[_OPEN.size:]
        if len(name) != length:
            raise WireError("OPEN name length mismatch")
        return WireFrame(
            OpenPayload(object_name=name.decode("utf-8"), symbol_size=symbol_size)
        )
    if frame_type == TYPE_OPEN_OK:
        session_id, object_bytes, symbol_size = _require_exact(_OPEN_OK, body)
        return WireFrame(
            OpenOkPayload(
                session_id=session_id,
                object_bytes=object_bytes,
                symbol_size=symbol_size,
            )
        )
    if frame_type == TYPE_OPEN_ERR:
        code, length = _OPEN_ERR.unpack_from(body)
        reason = body[_OPEN_ERR.size:]
        if len(reason) != length:
            raise WireError("OPEN_ERR reason length mismatch")
        return WireFrame(OpenErrPayload(reason=reason.decode("utf-8"), code=code))
    raise WireError(f"unknown frame type {frame_type}")


def _header(frame_type: int) -> bytes:
    return _HEADER.pack(MAGIC, WIRE_VERSION, frame_type)


def _require_exact(layout: struct.Struct, body: bytes) -> tuple:
    if len(body) != layout.size:
        raise WireError(
            f"frame body is {len(body)} bytes, expected {layout.size}"
        )
    return layout.unpack(body)
