"""Clock and timer abstraction for the net drivers.

The protocol cores never touch a clock; the *drivers* need one to arm the
cores' named timers and to pace pulls.  Two interchangeable schedulers
implement the same two-method surface (``time()`` and
``call_later(delay, callback)``):

* :class:`AsyncioScheduler` -- real endpoints, backed by the running event
  loop (``loop.time`` / ``loop.call_later``);
* :class:`ManualScheduler` -- deterministic tests and the conformance
  harness: a plain event heap with an explicitly advanced clock, ordered
  exactly like the simulator's (time, then scheduling order), so scripted
  traces replay identically under both drivers with no real sleeping.

:class:`NetTimer` mirrors the simulator's restartable one-shot
:class:`repro.sim.process.Timer` semantics on top of either scheduler.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Any, Callable, Optional, Protocol


class Scheduler(Protocol):
    """The minimal clock surface the net drivers depend on."""

    def time(self) -> float:
        """The current monotonic time in seconds."""
        ...  # pragma: no cover - protocol stub

    def call_later(self, delay: float, callback: Callable[[], Any]) -> Any:
        """Arrange ``callback()`` to run ``delay`` seconds from now.

        Returns a handle with a ``cancel()`` method.
        """
        ...  # pragma: no cover - protocol stub


class AsyncioScheduler:
    """Scheduler backed by a running asyncio event loop."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        # get_running_loop, not the deprecated get_event_loop: a scheduler
        # constructed outside a running loop is a bug, not a reason to spin
        # up an implicit one.
        self._loop = loop if loop is not None else asyncio.get_running_loop()

    def time(self) -> float:
        return self._loop.time()

    def call_later(self, delay: float, callback: Callable[[], Any]) -> asyncio.TimerHandle:
        return self._loop.call_later(delay, callback)


class _ManualHandle:
    """A pending callback on the manual heap; mirrors ``asyncio.TimerHandle``."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int, callback: Callable[[], Any]) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_ManualHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class ManualScheduler:
    """A deterministic scheduler with an explicitly advanced clock.

    Callbacks due at the same instant run in scheduling order -- the same
    tie-break as the simulator's event heap -- which is what makes
    conformance traces replay in exactly the sim's sequence.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: list[_ManualHandle] = []
        self._seq = 0

    def time(self) -> float:
        return self._now

    def call_later(self, delay: float, callback: Callable[[], Any]) -> _ManualHandle:
        if delay < 0:
            raise ValueError(f"cannot schedule {delay}s in the past")
        handle = _ManualHandle(self._now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def next_time(self) -> Optional[float]:
        """The due time of the next pending callback (None when idle)."""
        self._discard_cancelled()
        return self._heap[0].when if self._heap else None

    def run_until(self, until: float) -> int:
        """Run every callback due at or before ``until``; advance the clock to it.

        Mirrors ``Simulator.run(until=...)``: the clock lands exactly on
        ``until`` even when no callback was due.  A target in the past is
        clamped to the current time -- the deterministic clock is monotonic
        and never moves backwards.
        """
        until = max(until, self._now)
        fired = 0
        while True:
            self._discard_cancelled()
            if not self._heap or self._heap[0].when > until:
                break
            handle = heapq.heappop(self._heap)
            self._now = handle.when
            handle.callback()
            fired += 1
        self._now = until
        return fired

    def run_all(self, horizon: float) -> int:
        """Run everything due up to ``horizon`` (a convenience wrapper)."""
        return self.run_until(horizon)

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)


class NetTimer:
    """A restartable one-shot timer over a :class:`Scheduler`.

    Semantics match :class:`repro.sim.process.Timer`: ``start`` re-arms,
    ``stop`` on an unarmed timer is a no-op, and the handle clears *before*
    the callback runs so a callback re-arming itself never self-cancels.
    """

    def __init__(self, scheduler: Scheduler, callback: Callable[[], Any]) -> None:
        self._scheduler = scheduler
        self._callback = callback
        self._handle: Optional[Any] = None

    @property
    def running(self) -> bool:
        """Whether the timer is currently armed."""
        return self._handle is not None

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now; restarts if already armed."""
        self.stop()
        self._handle = self._scheduler.call_later(delay, self._fire)

    def restart(self, delay: float) -> None:
        """Alias of :meth:`start`, for readability at call sites."""
        self.start(delay)

    def stop(self) -> None:
        """Disarm the timer if it is armed."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()
