"""Pluggable codec backends and the shared :class:`CodecContext`.

The encoder and decoder no longer run Gaussian elimination themselves; they
delegate the two linear-algebra problems of the codec to a backend:

* ``compute_intermediate`` -- encode side: solve ``A . C = [0; source]``
  for the (L x symbol_size) intermediate-symbol plane of one block;
* ``solve_received``       -- decode side: solve the stacked
  LDPC/HDPC/LT-row system for the intermediate symbols given whatever
  encoding symbols arrived.

Two backends ship:

* ``reference`` -- rebuilds the matrix and re-runs full elimination for
  every block, byte-for-byte preserving the original behaviour (and cost);
* ``planned``   -- the default: looks up an :class:`~repro.rq.plan.EliminationPlan`
  in the context's shared plan cache (keyed by K' on the encode side, and
  **canonically** by the missing-source pattern plus the repair rows
  consumed on the decode side -- see
  :func:`~repro.rq.plan.canonical_decode_candidates`) and replays it over
  the block's symbol plane as one batched GF(256) matrix product.

A :class:`CodecContext` bundles one backend with one
:mod:`~repro.rq.kernels` GF(256) kernel, one plan cache and its hit/miss
counters (overall plus decode-side, so canonical-key effectiveness is
observable in experiment reports).  All sessions of a simulation share a
single context, so the first block of the first transfer pays for
elimination and every later block with the same parameters rides the cache;
under loss, every block that lost the same source pattern rides the same
decode plan no matter how many surplus repair symbols it happened to
receive.

Because plans are immutable they can also cross process boundaries: a
context can export its cache as a picklable :class:`~repro.rq.plan.PlanStore`
(:meth:`CodecContext.snapshot_plans`) and a fresh context can be seeded from
one (the ``preload`` constructor argument).  :func:`prewarm_encode_plans` /
:func:`prewarm_decode_plans` build stores ahead of time; the parallel
experiment executor (:mod:`repro.experiments.parallel`) uses them so every
worker process starts with a warm cache.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Hashable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.rq.kernels import GFKernel, get_kernel
from repro.rq.matrix import build_constraint_matrix
from repro.rq.params import CodeParameters, for_k
from repro.rq.plan import (
    EliminationPlan,
    PlanCache,
    PlanStore,
    build_plan,
    canonical_decode_candidates,
    constraint_matrix,
    received_matrix,
)
from repro.rq.solver import SingularMatrixError, solve
from repro.sim.stats import CacheStats

#: Name of the backend used when none is configured explicitly.
DEFAULT_BACKEND = "planned"

_BACKENDS: dict[str, type["CodecBackend"]] = {}


def register_backend(cls: type["CodecBackend"]) -> type["CodecBackend"]:
    """Class decorator: add a backend to the registry under ``cls.name``."""
    if not getattr(cls, "name", None):
        raise ValueError(f"backend {cls!r} must define a non-empty name")
    _BACKENDS[cls.name] = cls
    return cls


def available_backends() -> list[str]:
    """Names of every registered backend, sorted."""
    return sorted(_BACKENDS)


def create_backend(name: str) -> "CodecBackend":
    """Instantiate a registered backend by name."""
    try:
        return _BACKENDS[name]()
    except KeyError:
        raise ValueError(
            f"unknown codec backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


class CodecBackend(ABC):
    """Strategy interface for the codec's two solve problems."""

    name: ClassVar[str] = ""

    @abstractmethod
    def compute_intermediate(
        self, context: "CodecContext", params: CodeParameters, source: np.ndarray
    ) -> np.ndarray:
        """Return the (L x T) intermediate plane for a (K x T) source plane."""

    @abstractmethod
    def solve_received(
        self,
        context: "CodecContext",
        params: CodeParameters,
        esis: tuple[int, ...],
        received: np.ndarray,
    ) -> np.ndarray:
        """Return the (L x T) intermediate plane from received symbol values.

        ``esis`` are the received encoding-symbol ids in ascending order and
        ``received`` the matching (len(esis) x T) symbol plane.
        """


@register_backend
class ReferenceBackend(CodecBackend):
    """The original per-block elimination path, kept as ground truth."""

    name = "reference"

    def compute_intermediate(
        self, context: "CodecContext", params: CodeParameters, source: np.ndarray
    ) -> np.ndarray:
        matrix = build_constraint_matrix(params)
        constraints = params.num_ldpc_symbols + params.num_hdpc_symbols
        rhs = np.zeros((params.num_intermediate_symbols, source.shape[1]), dtype=np.uint8)
        rhs[constraints:] = source
        return solve(matrix, rhs, kernel=context.kernel)

    def solve_received(
        self,
        context: "CodecContext",
        params: CodeParameters,
        esis: tuple[int, ...],
        received: np.ndarray,
    ) -> np.ndarray:
        matrix = received_matrix(params, esis)
        constraints = params.num_ldpc_symbols + params.num_hdpc_symbols
        rhs = np.zeros((constraints + len(esis), received.shape[1]), dtype=np.uint8)
        rhs[constraints:] = received
        return solve(
            matrix, rhs, num_unknowns=params.num_intermediate_symbols, kernel=context.kernel
        )


@register_backend
class PlannedBackend(CodecBackend):
    """Elimination-plan cache + batched replay (the default backend)."""

    name = "planned"

    def compute_intermediate(
        self, context: "CodecContext", params: CodeParameters, source: np.ndarray
    ) -> np.ndarray:
        plan = context.plan_for(
            ("encode", params),
            lambda: build_plan(
                constraint_matrix(params), record_steps=False, kernel=context.kernel
            ),
        )
        constraints = params.num_ldpc_symbols + params.num_hdpc_symbols
        return plan.apply_from_row(source, constraints, kernel=context.kernel)

    def solve_received(
        self,
        context: "CodecContext",
        params: CodeParameters,
        esis: tuple[int, ...],
        received: np.ndarray,
    ) -> np.ndarray:
        if context.canonical_decode_plans:
            return self._solve_received_canonical(context, params, esis, received)
        plan = context.plan_for(
            ("decode", params, esis),
            lambda: build_plan(
                received_matrix(params, esis),
                num_unknowns=params.num_intermediate_symbols,
                record_steps=False,
                kernel=context.kernel,
            ),
            decode=True,
        )
        constraints = params.num_ldpc_symbols + params.num_hdpc_symbols
        return plan.apply_from_row(received, constraints, kernel=context.kernel)

    def _solve_received_canonical(
        self,
        context: "CodecContext",
        params: CodeParameters,
        esis: tuple[int, ...],
        received: np.ndarray,
    ) -> np.ndarray:
        """Decode through canonical plan keys, widening on singular systems.

        Candidates run from the minimal system (surviving sources plus
        exactly as many repair rows as sources went missing -- the key most
        likely to be shared across blocks) outward, adding one received
        repair row per step.  A candidate whose matrix is singular is
        remembered in the context so later blocks with the same pattern skip
        straight to the first workable width instead of re-running a doomed
        elimination.
        """
        constraints = params.num_ldpc_symbols + params.num_hdpc_symbols
        position = {esi: index for index, esi in enumerate(esis)}
        last_error: Optional[SingularMatrixError] = None
        for key, used in canonical_decode_candidates(params, esis):
            if key in context.singular_decode_keys:
                context.decode_plan_retries += 1
                last_error = SingularMatrixError(
                    f"known-singular decode system for {len(used)} received symbols"
                )
                continue
            try:
                plan = context.plan_for(
                    key,
                    lambda used=used: build_plan(
                        received_matrix(params, used),
                        num_unknowns=params.num_intermediate_symbols,
                        record_steps=False,
                        kernel=context.kernel,
                    ),
                    decode=True,
                )
            except SingularMatrixError as error:
                context.singular_decode_keys.add(key)
                context.decode_plan_retries += 1
                last_error = error
                continue
            if used == tuple(esis):
                rhs_tail = received
            else:
                rows = np.fromiter(
                    (position[esi] for esi in used), dtype=np.intp, count=len(used)
                )
                rhs_tail = received[rows]
            return plan.apply_from_row(rhs_tail, constraints, kernel=context.kernel)
        raise last_error if last_error is not None else SingularMatrixError(
            "no received symbols to decode from"
        )


class CodecContext:
    """One backend + one GF(256) kernel + one shared plan cache + counters.

    Create one per simulation (the experiment runner does) and hand it to
    every agent so all sessions amortise plan construction; the module-level
    :func:`default_context` serves library users who do not manage contexts.

    Args:
        backend: a registered backend name (``"planned"`` / ``"reference"``)
            or an already-constructed :class:`CodecBackend` instance.
        max_cached_plans: LRU capacity of the elimination-plan cache.
        preload: optional :class:`~repro.rq.plan.PlanStore` whose plans seed
            the cache before any block is processed (used by sharded runs so
            workers start warm; preloading counts neither hits nor misses).
        kernel: a :mod:`repro.rq.kernels` kernel name, ``"auto"``/``None``
            (honour ``REPRO_GF_KERNEL``, then pick the best available), or a
            pre-built :class:`~repro.rq.kernels.GFKernel`.  Every kernel
            produces byte-identical symbols; only wall-clock changes.
        canonical_decode_plans: key decode plans by the canonical
            missing-source pattern (default) instead of the exact
            received-ESI set.  The legacy exact keying is kept selectable so
            tests and reports can quantify the canonicalisation win.
    """

    def __init__(
        self,
        backend: Union[str, CodecBackend] = DEFAULT_BACKEND,
        max_cached_plans: int = 256,
        preload: Optional[PlanStore] = None,
        kernel: Union[str, GFKernel, None] = None,
        canonical_decode_plans: bool = True,
    ) -> None:
        self.backend = create_backend(backend) if isinstance(backend, str) else backend
        self.kernel = get_kernel(kernel)
        self.canonical_decode_plans = canonical_decode_plans
        self.stats = CacheStats(name="rq_plan_cache")
        self.decode_stats = CacheStats(name="rq_decode_plan_cache")
        #: Canonical decode keys whose matrix turned out singular; remembered
        #: so repeated loss patterns skip doomed eliminations.
        self.singular_decode_keys: set[Hashable] = set()
        #: Canonical decode candidates abandoned as singular (fresh or memoised).
        self.decode_plan_retries = 0
        self._plans = PlanCache(max_entries=max_cached_plans)
        self.blocks_encoded = 0
        self.blocks_decoded = 0
        if preload is not None:
            self._plans.preload(preload)

    @property
    def backend_name(self) -> str:
        """Name of the active backend."""
        return self.backend.name

    @property
    def kernel_name(self) -> str:
        """Name of the active GF(256) kernel."""
        return self.kernel.name

    @property
    def cached_plans(self) -> int:
        """Number of plans currently held by the cache."""
        return len(self._plans)

    def plan_for(self, key, builder, decode: bool = False) -> EliminationPlan:
        """Fetch a plan from the shared cache, counting hits and misses.

        ``decode=True`` additionally books the lookup on the decode-side
        counters (``decode_stats``), which is what experiment reports use to
        show how well canonical keys hold up under loss.
        """
        plan, hit = self._plans.get_or_build(key, builder)
        if hit:
            self.stats.record_hit()
            if decode:
                self.decode_stats.record_hit()
        else:
            self.stats.record_miss()
            if decode:
                self.decode_stats.record_miss()
        self.stats.evictions = self._plans.evictions
        return plan

    def encode_intermediate(self, params: CodeParameters, source: np.ndarray) -> np.ndarray:
        """Encode-side solve for one block (see :class:`CodecBackend`)."""
        self.blocks_encoded += 1
        return self.backend.compute_intermediate(self, params, source)

    def decode_intermediate(
        self, params: CodeParameters, esis: Sequence[int], received: np.ndarray
    ) -> np.ndarray:
        """Decode-side solve for one block (see :class:`CodecBackend`)."""
        self.blocks_decoded += 1
        return self.backend.solve_received(self, params, tuple(esis), received)

    def snapshot_plans(self) -> PlanStore:
        """Export the current plan cache as a picklable :class:`PlanStore`."""
        return self._plans.snapshot()

    def preload_plans(self, store: PlanStore) -> int:
        """Seed the plan cache from a store; returns how many plans were new."""
        return self._plans.preload(store)

    def stats_dict(self) -> dict:
        """A JSON-friendly snapshot for experiment reports."""
        return {
            "backend": self.backend_name,
            "kernel": self.kernel_name,
            "canonical_decode_plans": self.canonical_decode_plans,
            "blocks_encoded": self.blocks_encoded,
            "blocks_decoded": self.blocks_decoded,
            "plan_cache": self.stats.as_dict(),
            "decode_plan_cache": self.decode_stats.as_dict(),
            "decode_plan_retries": self.decode_plan_retries,
            "cached_plans": self.cached_plans,
        }


_default_context: Optional[CodecContext] = None


def default_context() -> CodecContext:
    """The process-wide context used when callers do not supply one."""
    global _default_context
    if _default_context is None:
        _default_context = CodecContext(DEFAULT_BACKEND)
    return _default_context


def set_default_backend(name: str) -> CodecContext:
    """Replace the process-wide default context with one for ``name``."""
    global _default_context
    _default_context = CodecContext(name)
    return _default_context


# Plan pre-warming -------------------------------------------------------------------
#
# These build the same plans, under the same keys, that PlannedBackend would
# build lazily, so a store produced here is indistinguishable from one
# snapshotted after a run.


def prewarm_encode_plans(
    k_values: Iterable[int], store: Optional[PlanStore] = None
) -> PlanStore:
    """Build the encode-side elimination plan for each block size K.

    The encode-side matrix is a pure function of K, so pre-warming is exact:
    every block of ``k`` source symbols anywhere in a run will hit.  Returns
    the (possibly supplied) store with the plans added.
    """
    store = store if store is not None else PlanStore()
    for k in sorted(set(k_values)):
        params = for_k(k)
        key = ("encode", params)
        if key not in store:
            store.add(key, build_plan(constraint_matrix(params), record_steps=False))
    return store


def prewarm_decode_plans(
    k: int,
    esi_sets: Iterable[Sequence[int]],
    store: Optional[PlanStore] = None,
    canonical: bool = True,
) -> PlanStore:
    """Build decode-side plans for explicit received-ESI sets of a K-symbol block.

    Decode plans depend on which packets the network lost -- the parent
    cannot enumerate them in general.  This helper exists for callers that do
    know their loss patterns (tests, replay tooling); the parallel executor
    pre-warms only encode plans and lets decode plans accumulate per worker.

    With ``canonical=True`` (the default, matching
    ``CodecContext(canonical_decode_plans=True)``) each ESI set is reduced to
    the same candidate ladder :class:`PlannedBackend` walks -- minimal system
    first, widening past singular matrices -- so the stored key is exactly
    the one a live decode of that pattern will look up.  One canonical plan
    therefore pre-warms *every* ESI set sharing the missing-source pattern,
    not just the literal set given.

    ``canonical=False`` writes the exact-ESI keys that only a
    ``CodecContext(canonical_decode_plans=False)`` context looks up -- pair
    the store with such a context.  The two key shapes cannot collide (a
    3- vs 4-tuple), so mixing them in one store is safe, but exact keys
    preloaded into a *canonical* context are inert: never matched, only
    occupying LRU capacity.  The :data:`~repro.rq.plan.PLAN_STORE_SCHEMA`
    stamp guards the *store format* across releases, not which of the two
    intra-format keyings a given plan was stored under.
    """
    store = store if store is not None else PlanStore()
    params = for_k(k)
    for esis in esi_sets:
        if not canonical:
            key = ("decode", params, tuple(esis))
            if key not in store:
                store.add(
                    key,
                    build_plan(
                        received_matrix(params, tuple(esis)),
                        num_unknowns=params.num_intermediate_symbols,
                        record_steps=False,
                    ),
                )
            continue
        for key, used in canonical_decode_candidates(params, esis):
            if key in store:
                break
            try:
                plan = build_plan(
                    received_matrix(params, used),
                    num_unknowns=params.num_intermediate_symbols,
                    record_steps=False,
                )
            except SingularMatrixError:
                continue
            store.add(key, plan)
            break
    return store


#: Per-K cap on pre-warmed loss patterns.  Singletons always fit (K of
#: them); the pair budget bounds the quadratic tail for large blocks so
#: pre-warming stays a fraction of the sweep it accelerates.
DEFAULT_PREWARM_PATTERNS = 192


def common_loss_patterns(
    k: int, max_missing: int = 2, budget: Optional[int] = DEFAULT_PREWARM_PATTERNS
) -> list[tuple[int, ...]]:
    """The most common missing-source patterns of a K-symbol block.

    Under independent per-packet loss every singleton is more likely than
    any pair, so patterns are ordered all singletons first, then pairs in
    lexicographic order, truncated to ``budget`` (``None`` = no cap).  The
    order is deterministic -- the executor's jobs-N determinism contract
    extends to which plans get pre-warmed.
    """
    if max_missing < 1:
        return []
    patterns: list[tuple[int, ...]] = [(esi,) for esi in range(k)]
    if max_missing >= 2:
        for first in range(k):
            if budget is not None and len(patterns) >= budget:
                break
            for second in range(first + 1, k):
                if budget is not None and len(patterns) >= budget:
                    break
                patterns.append((first, second))
    if budget is not None:
        patterns = patterns[:budget]
    return patterns


def prewarm_canonical_decode_plans(
    k_values: Iterable[int],
    store: Optional[PlanStore] = None,
    max_missing: int = 2,
    budget_per_k: Optional[int] = DEFAULT_PREWARM_PATTERNS,
) -> PlanStore:
    """Pre-warm canonical decode plans for the common loss patterns of each K.

    For every block size and every pattern from :func:`common_loss_patterns`
    this synthesises the received-ESI set a receiver would hold after losing
    exactly those sources -- the surviving sources plus the first
    ``len(missing) + 2`` repair ESIs, enough headroom for the candidate
    ladder to widen past a singular minimal system -- and stores the first
    non-singular canonical plan.  Keys are exactly what a live
    ``CodecContext(canonical_decode_plans=True)`` decode of that pattern
    looks up, so a lossy sweep's workers start with their hot paths solved.
    """
    store = store if store is not None else PlanStore()
    for k in sorted(set(k_values)):
        esi_sets = []
        for missing in common_loss_patterns(k, max_missing=max_missing, budget=budget_per_k):
            gone = set(missing)
            surviving = [esi for esi in range(k) if esi not in gone]
            repairs = list(range(k, k + len(missing) + 2))
            esi_sets.append(surviving + repairs)
        prewarm_decode_plans(k, esi_sets, store=store, canonical=True)
    return store
