"""Code parameters derived from the number of source symbols K.

For a source block of K source symbols the codec derives:

* ``S``  -- number of LDPC constraint symbols (GF(2)),
* ``H``  -- number of HDPC constraint symbols (GF(256)),
* ``L``  -- number of intermediate symbols (``K + S + H``),
* ``W``  -- number of LT intermediate symbols,
* ``P``  -- number of PI (permanently inactive) intermediate symbols
  (``L - W``), and ``P1`` the smallest prime >= P,
* ``B``  -- ``W - S``, the number of LT symbols that are not LDPC symbols.

RFC 6330 additionally tabulates a *systematic index* ``J(K')`` per supported
K'; its only role is to guarantee that the L x L constraint matrix is
invertible so that intermediate symbols exist and the code is systematic.
Here the same guarantee is obtained by searching (and caching) the smallest
``systematic_seed`` for which the constraint matrix is invertible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

#: Smallest number of source symbols the codec accepts.  Blocks smaller than
#: this are padded with zero symbols by the block layer.
MIN_SOURCE_SYMBOLS = 4

#: Largest number of source symbols per block supported by this implementation.
#: (RFC 6330 supports 56403; we cap lower because the pure-Python Gaussian
#: elimination is cubic in L.  The block layer splits larger objects.)
MAX_SOURCE_SYMBOLS = 2048


def is_prime(value: int) -> bool:
    """Return True if ``value`` is a prime number."""
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    for divisor in range(3, int(math.isqrt(value)) + 1, 2):
        if value % divisor == 0:
            return False
    return True


def next_prime(value: int) -> int:
    """Return the smallest prime >= ``value``."""
    candidate = max(2, value)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def _ldpc_symbol_count(k: int) -> int:
    """S: smallest prime >= ceil(0.01 K) + X with X(X-1) >= 2K (RFC 6330 shape)."""
    x = 1
    while x * (x - 1) < 2 * k:
        x += 1
    return next_prime(math.ceil(0.01 * k) + x)


def _hdpc_symbol_count(k: int, s: int) -> int:
    """H: smallest integer with C(H, ceil(H/2)) >= K + S (dense GF(256) rows)."""
    h = 6
    while math.comb(h, math.ceil(h / 2)) < k + s:
        h += 1
    return h


@dataclass(frozen=True)
class CodeParameters:
    """All derived parameters for one source-block size.

    Attributes:
        num_source_symbols: K, the number of source symbols in the block.
        num_ldpc_symbols: S.
        num_hdpc_symbols: H.
        num_intermediate_symbols: L = K + S + H.
        num_lt_symbols: W (LT intermediate symbols).
        num_pi_symbols: P = L - W (permanently inactive symbols).
        pi_prime: P1, smallest prime >= P.
        lt_non_ldpc_symbols: B = W - S.
        systematic_seed: seed for which the constraint matrix is invertible.
    """

    num_source_symbols: int
    num_ldpc_symbols: int
    num_hdpc_symbols: int
    num_intermediate_symbols: int
    num_lt_symbols: int
    num_pi_symbols: int
    pi_prime: int
    lt_non_ldpc_symbols: int
    systematic_seed: int

    @property
    def k(self) -> int:
        """Alias for :attr:`num_source_symbols`."""
        return self.num_source_symbols

    @property
    def overhead_symbols(self) -> int:
        """Recommended extra symbols to collect before attempting to decode."""
        return 2


def _structural_parameters(k: int) -> tuple[int, int, int, int, int, int, int]:
    """Compute (S, H, L, W, P, P1, B) for K source symbols."""
    s = _ldpc_symbol_count(k)
    h = _hdpc_symbol_count(k, s)
    l = k + s + h
    # PI symbols: the HDPC symbols plus a small share of the block; keeping a
    # handful of dense-ish columns out of the LT neighbourhood is what lets the
    # decoder succeed with tiny overhead.
    p = max(h + 2, math.ceil(0.05 * l))
    w = l - p
    if w <= s + 2:
        # Degenerate small blocks: fall back to a minimal PI set.
        p = h + 1
        w = l - p
    p1 = next_prime(p)
    b = w - s
    if b < 1:
        raise ValueError(f"block of {k} source symbols is too small for the pre-code")
    return s, h, l, w, p, p1, b


@lru_cache(maxsize=None)
def for_k(num_source_symbols: int) -> CodeParameters:
    """Return (and cache) the :class:`CodeParameters` for K source symbols.

    The systematic seed search imports :mod:`repro.rq.matrix` lazily to avoid
    a circular import (the matrix construction needs the structural
    parameters computed here).
    """
    if num_source_symbols < MIN_SOURCE_SYMBOLS:
        raise ValueError(
            f"K must be >= {MIN_SOURCE_SYMBOLS}, got {num_source_symbols} "
            "(the block layer pads smaller blocks)"
        )
    if num_source_symbols > MAX_SOURCE_SYMBOLS:
        raise ValueError(
            f"K must be <= {MAX_SOURCE_SYMBOLS}, got {num_source_symbols} "
            "(split the object into more source blocks)"
        )
    s, h, l, w, p, p1, b = _structural_parameters(num_source_symbols)

    from repro.rq.matrix import find_systematic_seed

    candidate = CodeParameters(
        num_source_symbols=num_source_symbols,
        num_ldpc_symbols=s,
        num_hdpc_symbols=h,
        num_intermediate_symbols=l,
        num_lt_symbols=w,
        num_pi_symbols=p,
        pi_prime=p1,
        lt_non_ldpc_symbols=b,
        systematic_seed=0,
    )
    seed = find_systematic_seed(candidate)
    return CodeParameters(
        num_source_symbols=num_source_symbols,
        num_ldpc_symbols=s,
        num_hdpc_symbols=h,
        num_intermediate_symbols=l,
        num_lt_symbols=w,
        num_pi_symbols=p,
        pi_prime=p1,
        lt_non_ldpc_symbols=b,
        systematic_seed=seed,
    )
