"""The codec's deterministic pseudo-random function ``Rand[y, i, m]``.

RFC 6330 defines ``Rand`` through four 256-entry tables of 32-bit constants
(V0..V3).  This implementation substitutes a hash-based construction with the
same signature and the same statistical role (documented in DESIGN.md): both
the encoder and the decoder in this package use the same function, so the
code remains fully self-consistent, systematic and rateless.

The function must be *fast* (it is called several times per encoding symbol),
so it uses a splitmix64-style integer mix rather than a cryptographic hash.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1


def _mix64(value: int) -> int:
    """A splitmix64 finalisation: a fast, well-distributed 64-bit mixer."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def rand(y: int, i: int, m: int) -> int:
    """Return a pseudo-random integer in ``[0, m)`` determined by ``(y, i)``.

    Mirrors RFC 6330's ``Rand[y, i, m]``: ``y`` is the per-symbol seed value,
    ``i`` selects one of several independent sub-streams, and ``m`` is the
    modulus.  ``m`` must be positive.
    """
    if m <= 0:
        raise ValueError(f"modulus must be positive, got {m}")
    mixed = _mix64(((y & _MASK64) << 8) ^ (i & 0xFF))
    return (mixed & _MASK32) % m
