"""Pluggable GF(256) kernels: the byte-crunching layer under the codec.

Everything above this module decides *what* linear algebra to run (which
elimination plan, which symbol rows); this module decides *how* the bytes
are crunched.  A :class:`GFKernel` bundles the three operations the codec's
hot paths consume:

* ``matmul``     -- batched GF(256) matrix product, the workhorse of
  elimination-plan replay (``R . D`` over a whole symbol plane);
* ``matvec``     -- matrix-vector product (single-symbol paths, tests);
* ``scale_rows`` -- per-row scaling, the fused multiply-XOR building block
  of Gaussian elimination itself.

Three kernels register here:

* ``numpy``   -- the original table-lookup implementations from
  :mod:`repro.rq.gf256`, kept verbatim as ground truth;
* ``blocked`` -- a pure-numpy variant that reuses one scratch plane per
  product and streams the multiplication-table gathers through it in
  column tiles (``np.take(..., out=scratch)`` + in-place XOR), avoiding the
  per-column (rows x symbol_size) allocation the ``numpy`` kernel pays;
* ``numba``   -- nopython-JIT'd loops over the same tables; registered
  always, *available* only when :mod:`numba` imports.

Selection is by name through :func:`get_kernel`: an explicit name wins,
otherwise the ``REPRO_GF_KERNEL`` environment variable, otherwise the best
available kernel by :attr:`GFKernel.priority` (``numba`` when importable,
else ``blocked``).  An unavailable *explicit* choice raises; an unavailable
*environment* choice warns and falls back, so ambient configuration can
never break a run.  Every kernel produces byte-identical results (GF(256)
arithmetic is exact), which ``tests/rq/test_kernels.py`` enforces against
the ``numpy`` ground truth.
"""

from __future__ import annotations

import os
import warnings
from abc import ABC, abstractmethod
from typing import ClassVar, Optional, Union

import numpy as np

from repro.rq.gf256 import MUL_TABLE, gf_matmul, gf_matvec, gf_scale_rows

#: Environment variable consulted when no kernel is named explicitly.
KERNEL_ENV_VAR = "REPRO_GF_KERNEL"

_KERNELS: dict[str, type["GFKernel"]] = {}
_INSTANCES: dict[str, "GFKernel"] = {}


def register_kernel(cls: type["GFKernel"]) -> type["GFKernel"]:
    """Class decorator: add a kernel to the registry under ``cls.name``."""
    if not getattr(cls, "name", None):
        raise ValueError(f"kernel {cls!r} must define a non-empty name")
    _KERNELS[cls.name] = cls
    return cls


def registered_kernels() -> list[str]:
    """Names of every registered kernel (available on this platform or not)."""
    return sorted(_KERNELS)


def available_kernels() -> list[str]:
    """Names of the kernels that can actually run here, sorted."""
    return sorted(name for name, cls in _KERNELS.items() if cls.is_available())


def best_kernel_name() -> str:
    """The highest-priority available kernel (``numba`` > ``blocked`` > ``numpy``)."""
    names = available_kernels()
    return max(names, key=lambda name: _KERNELS[name].priority)


def default_kernel_name() -> str:
    """Resolve the process default: ``REPRO_GF_KERNEL`` if usable, else the best.

    An environment choice that names an unavailable or unknown kernel warns
    and falls back to auto-selection rather than failing the run -- ambient
    configuration must never be load-bearing.
    """
    choice = os.environ.get(KERNEL_ENV_VAR, "").strip()
    if choice and choice.lower() != "auto":
        cls = _KERNELS.get(choice)
        if cls is not None and cls.is_available():
            return choice
        warnings.warn(
            f"{KERNEL_ENV_VAR}={choice!r} is not an available GF(256) kernel "
            f"(available: {', '.join(available_kernels())}); auto-selecting instead",
            RuntimeWarning,
            stacklevel=2,
        )
    return best_kernel_name()


def get_kernel(choice: Union[str, "GFKernel", None] = None) -> "GFKernel":
    """Resolve a kernel choice to a (shared) kernel instance.

    Args:
        choice: an already-built :class:`GFKernel` (returned as-is), a
            registered kernel name, ``"auto"``, or ``None``.  ``"auto"`` and
            ``None`` consult ``REPRO_GF_KERNEL`` and then auto-select.

    Raises:
        ValueError: for an unknown name, or an explicit name whose kernel is
            not available on this platform (e.g. ``"numba"`` without numba).
    """
    if isinstance(choice, GFKernel):
        return choice
    if choice is None or choice == "auto":
        choice = default_kernel_name()
    cls = _KERNELS.get(choice)
    if cls is None:
        raise ValueError(
            f"unknown GF(256) kernel {choice!r}; registered: {', '.join(registered_kernels())}"
        )
    if not cls.is_available():
        raise ValueError(
            f"GF(256) kernel {choice!r} is registered but not available on this "
            f"platform (available: {', '.join(available_kernels())})"
        )
    instance = _INSTANCES.get(choice)
    if instance is None:
        instance = _INSTANCES[choice] = cls()
    return instance


class GFKernel(ABC):
    """Strategy interface for the codec's GF(256) byte work.

    Kernels are stateless and shared process-wide (:func:`get_kernel` caches
    one instance per name); they never cross process boundaries -- each
    worker of a sharded sweep resolves its own from the job's config.
    """

    name: ClassVar[str] = ""
    #: Auto-selection rank; higher wins among available kernels.
    priority: ClassVar[int] = 0

    @classmethod
    def is_available(cls) -> bool:
        """Whether this kernel can run on the current platform."""
        return True

    @abstractmethod
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """GF(256) matrix product ``(m, n) . (n, t) -> (m, t)`` (uint8)."""

    @abstractmethod
    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """GF(256) matrix-vector product (uint8 in, uint8 out)."""

    @abstractmethod
    def scale_rows(self, rows: np.ndarray, factors: np.ndarray) -> np.ndarray:
        """Scale each row of ``rows`` by the matching entry of ``factors``."""


@register_kernel
class NumpyKernel(GFKernel):
    """The original :mod:`repro.rq.gf256` implementations -- ground truth."""

    name = "numpy"
    priority = 0

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return gf_matmul(a, b)

    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        return gf_matvec(matrix, vector)

    def scale_rows(self, rows: np.ndarray, factors: np.ndarray) -> np.ndarray:
        return gf_scale_rows(rows, factors)


@register_kernel
class BlockedKernel(GFKernel):
    """Scratch-reusing, tiled pure-numpy matmul.

    The ``numpy`` kernel's inner loop allocates a fresh (m x t) gather result
    for every column of ``a`` (``products[:, value_row]``), which for a warm
    128-symbol block is ~130 allocations of ~200 KiB each per plan replay.
    This kernel allocates one scratch plane per product, fills it in place
    with ``np.take(..., out=...)`` tile by tile, and XOR-accumulates in
    place -- same table lookups, no per-column garbage, tiles bounded so the
    scratch stays cache-resident for very wide planes.
    """

    name = "blocked"
    priority = 10

    #: Symbol-plane columns processed per gather; bounds the scratch plane at
    #: (rows x 4096) bytes however wide the caller's plane is.
    tile_columns = 4096

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("gf matmul needs two 2-D arrays")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} . {b.shape}")
        m, t = a.shape[0], b.shape[1]
        out = np.zeros((m, t), dtype=np.uint8)
        if m == 0 or t == 0 or a.shape[1] == 0:
            return out
        tile = min(t, self.tile_columns)
        scratch = np.empty((m, tile), dtype=np.uint8)
        for k in range(a.shape[1]):
            column = a[:, k]
            if not column.any():
                continue
            value_row = b[k]
            if not value_row.any():
                continue
            products = MUL_TABLE[column]
            for start in range(0, t, tile):
                stop = min(start + tile, t)
                window = scratch[:, : stop - start]
                np.take(products, value_row[start:stop], axis=1, out=window)
                np.bitwise_xor(out[:, start:stop], window, out=out[:, start:stop])
        return out

    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        if matrix.ndim != 2 or vector.ndim != 1:
            raise ValueError("gf matvec needs a 2-D matrix and a 1-D vector")
        return self.matmul(matrix, vector.reshape(-1, 1))[:, 0]

    def scale_rows(self, rows: np.ndarray, factors: np.ndarray) -> np.ndarray:
        return gf_scale_rows(rows, factors)


# Numba kernel -----------------------------------------------------------------------
#
# The jitted loops close over the shared multiplication table; they are
# compiled once per process, lazily, the first time the kernel runs.  The
# class is *registered* unconditionally (so names/validation stay uniform)
# but *available* only when numba imports.

_NUMBA_FUNCS: Optional[dict] = None
_NUMBA_OK: Optional[bool] = None


def _numba_importable() -> bool:
    global _NUMBA_OK
    if _NUMBA_OK is None:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except Exception:  # pragma: no cover - exercised only without numba
            _NUMBA_OK = False
    return _NUMBA_OK


def _numba_funcs() -> dict:
    """Compile (once) and return the jitted matmul/matvec/scale_rows."""
    global _NUMBA_FUNCS
    if _NUMBA_FUNCS is not None:
        return _NUMBA_FUNCS
    import numba

    @numba.njit(cache=False, nogil=True)
    def matmul(a, b, mul_table):  # pragma: no cover - requires numba
        m, n = a.shape
        t = b.shape[1]
        out = np.zeros((m, t), dtype=np.uint8)
        for i in range(m):
            accumulator = out[i]
            for k in range(n):
                coefficient = a[i, k]
                if coefficient == 0:
                    continue
                lut = mul_table[coefficient]
                row = b[k]
                for j in range(t):
                    accumulator[j] ^= lut[row[j]]
        return out

    @numba.njit(cache=False, nogil=True)
    def matvec(matrix, vector, mul_table):  # pragma: no cover - requires numba
        m, n = matrix.shape
        out = np.zeros(m, dtype=np.uint8)
        for i in range(m):
            accumulator = np.uint8(0)
            for k in range(n):
                coefficient = matrix[i, k]
                if coefficient != 0:
                    accumulator ^= mul_table[coefficient, vector[k]]
            out[i] = accumulator
        return out

    @numba.njit(cache=False, nogil=True)
    def scale_rows(rows, factors, mul_table):  # pragma: no cover - requires numba
        n, m = rows.shape
        out = np.zeros((n, m), dtype=np.uint8)
        for i in range(n):
            factor = factors[i]
            if factor == 0:
                continue
            lut = mul_table[factor]
            for j in range(m):
                out[i, j] = lut[rows[i, j]]
        return out

    _NUMBA_FUNCS = {"matmul": matmul, "matvec": matvec, "scale_rows": scale_rows}
    return _NUMBA_FUNCS


@register_kernel
class NumbaKernel(GFKernel):
    """Nopython-JIT'd table-lookup loops (requires :mod:`numba`).

    The loops fuse the gather and the XOR-accumulate cell by cell, so there
    are no intermediate planes at all; with numba installed this is the
    fastest kernel by a wide margin and auto-selection prefers it.
    """

    name = "numba"
    priority = 20

    @classmethod
    def is_available(cls) -> bool:
        return _numba_importable()

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError("gf matmul needs two 2-D arrays")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} . {b.shape}")
        funcs = _numba_funcs()
        return funcs["matmul"](
            np.ascontiguousarray(a), np.ascontiguousarray(b), MUL_TABLE
        )

    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        if matrix.ndim != 2 or vector.ndim != 1:
            raise ValueError("gf matvec needs a 2-D matrix and a 1-D vector")
        funcs = _numba_funcs()
        return funcs["matvec"](
            np.ascontiguousarray(matrix), np.ascontiguousarray(vector), MUL_TABLE
        )

    def scale_rows(self, rows: np.ndarray, factors: np.ndarray) -> np.ndarray:
        if rows.ndim != 2:
            raise ValueError("rows must be a 2-D array")
        funcs = _numba_funcs()
        return funcs["scale_rows"](
            np.ascontiguousarray(rows), np.ascontiguousarray(factors), MUL_TABLE
        )
