"""Construction of the pre-code constraint matrix A.

The L x L matrix A relates the intermediate symbols C to the constraint
vector D:

* rows ``0 .. S-1``        -- LDPC constraints over GF(2) (sparse),
* rows ``S .. S+H-1``      -- HDPC constraints over GF(256) (dense),
* rows ``S+H .. L-1``      -- the LT rows of the K source symbols, i.e.
  ``A[S+H+i] . C = source_symbol_i``.

Solving ``A . C = D`` with ``D = [0 .. 0, source symbols]`` yields the
intermediate symbols; the code is systematic because the last K rows *are*
the LT rows for ISIs 0..K-1, so re-encoding those ISIs reproduces the source
symbols exactly.
"""

from __future__ import annotations

import numpy as np

from repro.rq.gf256 import alpha_power, gf_mul
from repro.rq.params import CodeParameters
from repro.rq.rand import rand


def lt_row(params: CodeParameters, internal_symbol_id: int) -> np.ndarray:
    """Return the GF(2) LT encoding row (length L) for an internal symbol id."""
    from repro.rq.tuples import lt_neighbours

    row = np.zeros(params.num_intermediate_symbols, dtype=np.uint8)
    for index in lt_neighbours(params, internal_symbol_id):
        row[index] ^= 1
    return row


def ldpc_rows(params: CodeParameters) -> np.ndarray:
    """Return the S x L LDPC constraint rows (GF(2))."""
    s = params.num_ldpc_symbols
    b = params.lt_non_ldpc_symbols
    w = params.num_lt_symbols
    p = params.num_pi_symbols
    l = params.num_intermediate_symbols

    rows = np.zeros((s, l), dtype=np.uint8)
    # Circulant part over the B LT-only columns (RFC 6330 section 5.3.3.3).
    for i in range(b):
        a = 1 + i // s
        row = i % s
        rows[row, i] ^= 1
        row = (row + a) % s
        rows[row, i] ^= 1
        row = (row + a) % s
        rows[row, i] ^= 1
    # Identity over the S LDPC columns.
    for i in range(s):
        rows[i, b + i] ^= 1
    # Two diagonals over the PI columns.
    for i in range(s):
        rows[i, w + (i % p)] ^= 1
        rows[i, w + ((i + 1) % p)] ^= 1
    return rows


def hdpc_rows(params: CodeParameters) -> np.ndarray:
    """Return the H x L HDPC constraint rows (GF(256)).

    Built as ``MT . GAMMA`` over the first K+S columns followed by an identity
    over the H HDPC columns, following the structure of RFC 6330 section
    5.3.3.3 (coefficients are powers of alpha; the exact placement uses this
    package's ``rand`` function).
    """
    k = params.num_source_symbols
    s = params.num_ldpc_symbols
    h = params.num_hdpc_symbols
    l = params.num_intermediate_symbols
    span = k + s

    # MT: H x span sparse matrix with two ones per column (last column: alpha^j).
    mt = np.zeros((h, span), dtype=np.uint8)
    for i in range(span - 1):
        first = rand(i + 1, 6, h)
        second = (first + rand(i + 1, 7, h - 1) + 1) % h
        mt[first, i] = 1
        mt[second, i] = 1
    for j in range(h):
        mt[j, span - 1] = alpha_power(j)

    # GAMMA: span x span lower-triangular matrix with GAMMA[i][j] = alpha^(i-j).
    # The product MT . GAMMA is computed column-by-column without materialising
    # GAMMA (which would be dense and O(span^2) memory for large blocks).
    result = np.zeros((h, l), dtype=np.uint8)
    # accumulated[j] = sum_i MT[:, i] * alpha^(i - j) for i >= j.  Computing from
    # the highest column down lets us reuse the previous accumulation:
    # acc_j = MT[:, j] + alpha * acc_{j+1}.
    accumulator = np.zeros(h, dtype=np.uint8)
    columns = np.zeros((h, span), dtype=np.uint8)
    for j in range(span - 1, -1, -1):
        scaled = np.array([gf_mul(int(value), alpha_power(1)) for value in accumulator], dtype=np.uint8)
        accumulator = scaled ^ mt[:, j]
        columns[:, j] = accumulator
    result[:, :span] = columns
    # Identity over the H HDPC columns.
    for j in range(h):
        result[j, span + j] = 1
    return result


def build_constraint_matrix(params: CodeParameters) -> np.ndarray:
    """Return the full L x L constraint matrix A (uint8, GF(256) entries)."""
    l = params.num_intermediate_symbols
    s = params.num_ldpc_symbols
    h = params.num_hdpc_symbols
    k = params.num_source_symbols

    matrix = np.zeros((l, l), dtype=np.uint8)
    matrix[:s] = ldpc_rows(params)
    matrix[s : s + h] = hdpc_rows(params)
    for i in range(k):
        matrix[s + h + i] = lt_row(params, i)
    return matrix


def matrix_rank_gf256(matrix: np.ndarray) -> int:
    """Compute the rank of a matrix over GF(256) (destructive on a copy)."""
    from repro.rq.solver import gaussian_rank

    return gaussian_rank(matrix)


def find_systematic_seed(params: CodeParameters, max_attempts: int = 64) -> int:
    """Find the smallest seed for which the constraint matrix is invertible.

    This replaces RFC 6330's tabulated systematic index J(K').  Because the
    HDPC rows are dense over GF(256), almost every seed works; the loop exists
    for the rare unlucky degree draw.
    """
    from dataclasses import replace

    for seed in range(max_attempts):
        candidate = replace(params, systematic_seed=seed)
        matrix = build_constraint_matrix(candidate)
        if matrix_rank_gf256(matrix) == candidate.num_intermediate_symbols:
            return seed
    raise RuntimeError(
        f"no systematic seed found for K={params.num_source_symbols} "
        f"after {max_attempts} attempts"
    )
