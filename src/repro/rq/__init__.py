"""A systematic, rateless RaptorQ-style fountain codec.

This package implements the architecture of RFC 6330 (RaptorQ):

* intermediate symbols are defined by a pre-code consisting of **LDPC**
  constraints over GF(2) and dense **HDPC** constraints over GF(256)
  (:mod:`repro.rq.matrix`);
* encoding symbols are produced by an **LT encoder** driven by a
  degree distribution and a per-symbol tuple generator
  (:mod:`repro.rq.degree`, :mod:`repro.rq.tuples`);
* the code is **systematic**: encoding symbols 0..K-1 are exactly the source
  symbols, so in the absence of loss no decoding work is required
  (:mod:`repro.rq.encoder`);
* decoding solves the constraint system with Gaussian elimination over
  GF(256) (:mod:`repro.rq.decoder`, :mod:`repro.rq.solver`); any K + epsilon
  received symbols decode with overwhelming probability (epsilon of 2 gives
  a failure probability far below 1e-6 thanks to the dense HDPC rows).

Deviation from RFC 6330 (documented in DESIGN.md): the RFC's pre-computed
tables (systematic indices J(K'), the V0..V3 random tables and the exact
degree table) are replaced by computed equivalents, so the codec is
self-consistent but not wire-compatible with other RaptorQ implementations.
All behavioural properties the Polyraptor paper relies on are preserved.

High-level usage::

    from repro.rq import ObjectEncoder, ObjectDecoder

    encoder = ObjectEncoder(data, symbol_size=1024)
    symbols = [encoder.symbol(0, esi) for esi in range(encoder.block(0).num_source_symbols + 2)]
    decoder = ObjectDecoder(encoder.oti)
    for symbol in symbols:
        decoder.add_symbol(symbol)
    assert decoder.decode() == data
"""

from repro.rq.api import decode_object, encode_object
from repro.rq.backend import (
    DEFAULT_BACKEND,
    CodecBackend,
    CodecContext,
    available_backends,
    create_backend,
    default_context,
    prewarm_decode_plans,
    prewarm_encode_plans,
    register_backend,
    set_default_backend,
)
from repro.rq.block import EncodedSymbol, ObjectDecoder, ObjectEncoder, ObjectTransmissionInfo
from repro.rq.decoder import BlockDecoder, DecodeFailure, DecodeResult
from repro.rq.encoder import BlockEncoder
from repro.rq.kernels import (
    KERNEL_ENV_VAR,
    GFKernel,
    available_kernels,
    best_kernel_name,
    default_kernel_name,
    get_kernel,
    register_kernel,
    registered_kernels,
)
from repro.rq.params import CodeParameters
from repro.rq.plan import (
    PLAN_STORE_SCHEMA,
    EliminationPlan,
    PlanCache,
    PlanStore,
    PlanStoreSchemaError,
    build_plan,
    canonical_decode_candidates,
    canonical_decode_key,
    missing_source_pattern,
)

__all__ = [
    "CodeParameters",
    "BlockEncoder",
    "BlockDecoder",
    "DecodeResult",
    "DecodeFailure",
    "ObjectEncoder",
    "ObjectDecoder",
    "ObjectTransmissionInfo",
    "EncodedSymbol",
    "encode_object",
    "decode_object",
    "CodecBackend",
    "CodecContext",
    "DEFAULT_BACKEND",
    "available_backends",
    "create_backend",
    "default_context",
    "register_backend",
    "set_default_backend",
    "EliminationPlan",
    "PlanCache",
    "PlanStore",
    "PlanStoreSchemaError",
    "PLAN_STORE_SCHEMA",
    "build_plan",
    "canonical_decode_candidates",
    "canonical_decode_key",
    "missing_source_pattern",
    "prewarm_encode_plans",
    "prewarm_decode_plans",
    "GFKernel",
    "KERNEL_ENV_VAR",
    "available_kernels",
    "best_kernel_name",
    "default_kernel_name",
    "get_kernel",
    "register_kernel",
    "registered_kernels",
]
