"""Cached elimination plans: factorise once per K', replay per block.

The RFC 6330 style codec spends nearly all of its CPU in Gaussian
elimination, yet the matrix being eliminated depends only on the code
parameters (encode side: the L x L constraint matrix is a pure function of
K') or on the parameters plus the set of received ESIs (decode side).  An
:class:`EliminationPlan` captures one elimination as

* the ordered **row-op sequence** (swap / scale / fused multiply-XOR)
  recorded as numpy index arrays while :func:`repro.rq.solver.solve` runs,
  and
* the fused **solution operator** ``R`` obtained by applying that sequence
  to an identity right-hand side, so that for any symbol plane ``D`` the
  solution of ``A . X = D`` is simply ``R . D``.

Replaying a plan over the (n x symbol_size) symbol plane of a block is one
batched GF(256) matrix product -- no pivot searches, no matrix-side row
operations, no per-step allocations.  The byte work of that product (and of
elimination itself) executes on a pluggable :mod:`repro.rq.kernels` kernel;
every kernel computes identical bytes, so plans and kernels compose freely.
Plans are immutable and safe to share across sessions, simulations and
processes.

Decode-side plans are keyed **canonically** by the *missing-source pattern*
plus the repair rows actually consumed (:func:`canonical_decode_candidates`)
rather than by the raw received-ESI set: a receiver that lost source
symbols {2, 5} decodes with the same elimination plan whether it received
two or five surplus repair symbols, which is what keeps the decode plan
cache hot under heavy loss.  The persistent :class:`PlanStore` records a
schema number (:data:`PLAN_STORE_SCHEMA`) so stores written under the old
exact-ESI keying are rejected cleanly instead of poisoning the cache.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Hashable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from repro.rq.gf256 import gf_matmul, gf_scale_rows, gf_scale_vector
from repro.rq.matrix import build_constraint_matrix, hdpc_rows, ldpc_rows, lt_row
from repro.rq.params import CodeParameters
from repro.rq.solver import solve

if TYPE_CHECKING:  # pragma: no cover
    from repro.rq.kernels import GFKernel

#: Version of the plan-key schema a :class:`PlanStore` is written under.
#: Bumped whenever the key convention changes (v1: decode plans keyed by the
#: exact received-ESI set; v2: canonical missing-source-pattern keys), so a
#: persisted store from another schema is rejected instead of silently
#: serving plans nothing will ever look up -- or worse, colliding.
PLAN_STORE_SCHEMA = 2


class PlanStoreSchemaError(ValueError):
    """A persisted :class:`PlanStore` was written under a different key schema."""


@dataclass(frozen=True)
class PlanStep:
    """One recorded row operation.

    ``kind`` is ``"swap"`` (rows = [a, b]), ``"scale"`` (rows = [row],
    factors = [factor]) or ``"xor"`` (rows = targets, factors = per-target
    multipliers, source_row = the pivot row XORed into the targets).
    """

    kind: str
    rows: np.ndarray
    factors: np.ndarray
    source_row: int = -1


class _StepRecorder:
    """Collects the row-op sequence emitted by the solver."""

    def __init__(self) -> None:
        self.steps: list[PlanStep] = []

    def swap(self, row_a: int, row_b: int) -> None:
        self.steps.append(
            PlanStep("swap", np.array([row_a, row_b], dtype=np.intp), np.empty(0, dtype=np.uint8))
        )

    def scale(self, row: int, factor: int) -> None:
        self.steps.append(
            PlanStep("scale", np.array([row], dtype=np.intp), np.array([factor], dtype=np.uint8))
        )

    def eliminate(self, source_row: int, targets: np.ndarray, factors: np.ndarray) -> None:
        self.steps.append(
            PlanStep("xor", targets.astype(np.intp), factors.astype(np.uint8), source_row)
        )


@dataclass(frozen=True)
class EliminationPlan:
    """A recorded, replayable Gaussian elimination of one fixed matrix.

    ``steps`` is the recorded row-op tape, or ``None`` when the plan was
    built with ``record_steps=False`` (the cached production path keeps only
    the fused operator, halving per-plan memory).
    """

    num_rows: int
    num_unknowns: int
    operator: np.ndarray
    steps: Optional[tuple[PlanStep, ...]]

    def apply(self, rhs: np.ndarray, kernel: Optional["GFKernel"] = None) -> np.ndarray:
        """Solve for the unknowns given a full (num_rows x T) right-hand side.

        ``kernel`` selects the :mod:`repro.rq.kernels` implementation of the
        batched product; ``None`` uses the numpy ground truth.  The result is
        byte-identical for every kernel.
        """
        if rhs.shape[0] != self.num_rows:
            raise ValueError(f"plan expects {self.num_rows} rhs rows, got {rhs.shape[0]}")
        matmul = gf_matmul if kernel is None else kernel.matmul
        return matmul(self.operator, rhs)

    def apply_from_row(
        self, rhs_tail: np.ndarray, first_row: int, kernel: Optional["GFKernel"] = None
    ) -> np.ndarray:
        """Solve when rhs rows ``0 .. first_row-1`` are all-zero.

        Both codec systems have this shape: the S + H constraint rows carry a
        zero right-hand side, so only the operator columns for the symbol
        rows contribute.
        """
        if first_row + rhs_tail.shape[0] != self.num_rows:
            raise ValueError(
                f"plan expects {self.num_rows - first_row} tail rows, got {rhs_tail.shape[0]}"
            )
        matmul = gf_matmul if kernel is None else kernel.matmul
        return matmul(self.operator[:, first_row:], rhs_tail)

    def replay(self, rhs: np.ndarray) -> np.ndarray:
        """Step-by-step replay of the recorded row ops (reference/testing path).

        Produces exactly what :meth:`apply` computes via the fused operator;
        tests use the agreement of the two paths to validate plan recording.
        """
        if self.steps is None:
            raise ValueError("plan was built with record_steps=False; no op tape to replay")
        work = rhs.astype(np.uint8).copy()
        for step in self.steps:
            if step.kind == "swap":
                a, b = step.rows
                work[[a, b]] = work[[b, a]]
            elif step.kind == "scale":
                work[step.rows[0]] = gf_scale_vector(work[step.rows[0]], int(step.factors[0]))
            else:
                source = work[step.source_row]
                work[step.rows] ^= gf_scale_rows(
                    np.tile(source, (step.rows.size, 1)), step.factors
                )
        return work[: self.num_unknowns]


def build_plan(
    matrix: np.ndarray,
    num_unknowns: Optional[int] = None,
    record_steps: bool = True,
    kernel: Optional["GFKernel"] = None,
) -> EliminationPlan:
    """Eliminate ``matrix`` once, recording the ops and the fused operator.

    ``record_steps=False`` keeps only the fused operator (what replay needs);
    the op tape is O(L^2) numpy data, so cached production plans skip it.
    ``kernel`` runs the elimination's row operations on a
    :mod:`repro.rq.kernels` kernel; the resulting operator is byte-identical
    for every kernel.

    Raises :class:`repro.rq.solver.SingularMatrixError` when the matrix does
    not have full column rank, exactly like a direct solve would.
    """
    recorder = _StepRecorder() if record_steps else None
    rows = matrix.shape[0]
    identity = np.eye(rows, dtype=np.uint8)
    operator = solve(matrix, identity, num_unknowns, recorder=recorder, kernel=kernel)
    operator.setflags(write=False)
    return EliminationPlan(
        num_rows=rows,
        num_unknowns=operator.shape[0],
        operator=operator,
        steps=tuple(recorder.steps) if recorder is not None else None,
    )


# Structure caches ------------------------------------------------------------------
#
# These depend only on the (frozen, hashable) CodeParameters, so they are
# process-global: every context, session and simulation shares them.  The
# returned arrays are marked read-only; callers copy before mutating.


@lru_cache(maxsize=None)
def constraint_matrix(params: CodeParameters) -> np.ndarray:
    """The L x L pre-code constraint matrix A for one parameter set."""
    matrix = build_constraint_matrix(params)
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=None)
def precode_rows(params: CodeParameters) -> np.ndarray:
    """The (S + H) x L LDPC + HDPC constraint rows for one parameter set."""
    s = params.num_ldpc_symbols
    h = params.num_hdpc_symbols
    rows = np.zeros((s + h, params.num_intermediate_symbols), dtype=np.uint8)
    rows[:s] = ldpc_rows(params)
    rows[s:] = hdpc_rows(params)
    rows.setflags(write=False)
    return rows


def received_matrix(params: CodeParameters, esis: Sequence[int]) -> np.ndarray:
    """The decode-side coefficient matrix for one set of received ESIs."""
    l = params.num_intermediate_symbols
    constraints = precode_rows(params)
    matrix = np.zeros((constraints.shape[0] + len(esis), l), dtype=np.uint8)
    matrix[: constraints.shape[0]] = constraints
    for offset, esi in enumerate(esis):
        matrix[constraints.shape[0] + offset] = lt_row(params, esi)
    return matrix


# Canonical decode-plan keys ---------------------------------------------------------
#
# The decode-side matrix is fully determined by which rows go into it, so the
# *plan key* only needs to name those rows -- and the rows worth using are a
# canonical function of the loss pattern, not of everything that happened to
# arrive.  A receiver that lost source symbols {2, 5} needs exactly the
# surviving sources plus (at least) two repair rows; any surplus repair
# symbols beyond those add rows that change the raw ESI set -- and therefore
# fragmented the old exact-ESI cache key -- without changing the system that
# actually has to be solved.


def missing_source_pattern(params: CodeParameters, esis: Sequence[int]) -> tuple[int, ...]:
    """The canonical loss fingerprint: source ESIs *not* in ``esis``, ascending."""
    received = {esi for esi in esis if esi < params.num_source_symbols}
    return tuple(esi for esi in range(params.num_source_symbols) if esi not in received)


def canonical_decode_candidates(
    params: CodeParameters, esis: Sequence[int]
) -> Iterator[tuple[tuple, tuple[int, ...]]]:
    """Yield ``(plan_key, used_esis)`` candidates for one received-ESI set.

    Candidates are ordered from the minimal system outward: the first uses
    the surviving source rows plus exactly ``len(missing)`` repair rows (the
    smallest full-rank candidate, and the key most likely to be shared with
    other blocks), each later one adds one more received repair row.  A
    caller walks the sequence until a candidate's matrix turns out to be
    non-singular; the last candidate uses every received symbol, which is
    exactly the system the legacy exact-ESI path solved.

    Keys have the shape ``("decode", params, missing_sources, used_repairs)``
    -- the missing-source pattern plus the ascending repair ESIs consumed.
    The row *selection* (which rows of a caller's received plane feed the
    plan) is recomputed per call from ``used_esis``, so one plan serves any
    superset of received symbols that shares the pattern.
    """
    ordered = sorted(set(esis))
    k = params.num_source_symbols
    sources = tuple(esi for esi in ordered if esi < k)
    repairs = [esi for esi in ordered if esi >= k]
    missing = missing_source_pattern(params, ordered)
    for needed in range(min(len(missing), len(repairs)), len(repairs) + 1):
        used_repairs = tuple(repairs[:needed])
        yield ("decode", params, missing, used_repairs), sources + used_repairs


def canonical_decode_key(
    params: CodeParameters, esis: Sequence[int]
) -> tuple[tuple, tuple[int, ...]]:
    """The first (minimal-system) candidate of :func:`canonical_decode_candidates`."""
    return next(canonical_decode_candidates(params, esis))


@dataclass
class PlanStore:
    """A picklable bag of elimination plans, keyed like the live plan cache.

    This is the artifact that crosses process boundaries: the parent of a
    sharded experiment snapshots (or pre-warms) a store, serialises it once,
    and every worker preloads its per-run :class:`PlanCache` from it so warm
    -block speedups apply from the first block of the first transfer.  Plans
    are immutable, so a store can be shared by any number of caches.

    Keys follow the convention of :mod:`repro.rq.backend`:
    ``("encode", params)`` for encode-side plans and
    ``("decode", params, missing_sources, used_repairs)`` (see
    :func:`canonical_decode_candidates`) for decode-side plans.  The
    ``schema`` field records which key convention the store was written
    under; loading a store from a different schema raises
    :class:`PlanStoreSchemaError` so stale keys can never poison a cache --
    callers treat that as "rebuild", never as fatal.
    """

    plans: dict[Hashable, EliminationPlan] = field(default_factory=dict)
    schema: int = PLAN_STORE_SCHEMA

    def __len__(self) -> int:
        return len(self.plans)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.plans

    def add(self, key: Hashable, plan: EliminationPlan) -> None:
        """Insert (or replace) one plan."""
        self.plans[key] = plan

    def merge(self, other: "PlanStore") -> None:
        """Absorb every plan of ``other`` (existing keys are kept)."""
        for key, plan in other.plans.items():
            self.plans.setdefault(key, plan)

    def to_bytes(self) -> bytes:
        """Serialise the store (pickle) for shipping to worker processes."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "PlanStore":
        """Rebuild a store serialised with :meth:`to_bytes`.

        Raises :class:`PlanStoreSchemaError` when the store was written
        under a different plan-key schema (including pre-versioning stores,
        which unpickle as schema 1): its keys would never be looked up under
        the current convention, so serving them would waste cache capacity
        at best and replay stale plans at worst.
        """
        store = pickle.loads(payload)
        if not isinstance(store, cls):
            raise TypeError(f"payload does not contain a PlanStore (got {type(store)!r})")
        if store.schema != PLAN_STORE_SCHEMA:
            raise PlanStoreSchemaError(
                f"plan store uses key schema v{store.schema}, this build expects "
                f"v{PLAN_STORE_SCHEMA}; discard the store and rebuild"
            )
        return store

    def save(self, path: Union[str, Path]) -> Path:
        """Write the store to ``path``; returns the path written."""
        path = Path(path)
        path.write_bytes(self.to_bytes())
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PlanStore":
        """Read a store previously written by :meth:`save`."""
        return cls.from_bytes(Path(path).read_bytes())

    def __setstate__(self, state: Mapping) -> None:
        # Unpickled numpy arrays come back writable; re-freeze the operators
        # so shared plans stay immutable in every process.  Stores pickled
        # before versioning carry no schema field: they were written under
        # the exact-ESI keying, i.e. schema 1.
        self.__dict__.update(state)
        self.schema = state.get("schema", 1)
        for plan in self.plans.values():
            plan.operator.setflags(write=False)


class PlanCache:
    """A bounded LRU mapping of plan keys to :class:`EliminationPlan` objects.

    One instance is shared by every session of a simulation (via the
    :class:`repro.rq.backend.CodecContext`); because plans are immutable the
    cache needs no locking for the single-threaded simulator, and its
    contents can be exported to / imported from a :class:`PlanStore` for
    multi-process shards.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.evictions = 0
        self._plans: "OrderedDict[Hashable, EliminationPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    def get_or_build(
        self, key: Hashable, builder: Callable[[], EliminationPlan]
    ) -> tuple[EliminationPlan, bool]:
        """Return ``(plan, was_cache_hit)`` for ``key``, building on miss."""
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            return plan, True
        plan = builder()
        self._plans[key] = plan
        if len(self._plans) > self.max_entries:
            self._plans.popitem(last=False)
            self.evictions += 1
        return plan, False

    def snapshot(self) -> PlanStore:
        """Export the current contents as an immutable, picklable store."""
        return PlanStore(dict(self._plans))

    def preload(self, store: PlanStore) -> int:
        """Seed the cache from a store; returns how many plans were inserted.

        Preloading does not count as hits or misses (nothing was looked up)
        but does respect ``max_entries``: if the store is larger than the
        cache, the oldest insertions are evicted as usual.
        """
        inserted = 0
        for key, plan in store.plans.items():
            if key in self._plans:
                continue
            self._plans[key] = plan
            inserted += 1
            if len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)
                self.evictions += 1
        return inserted
