"""Gaussian elimination over GF(256).

The solver is shared by the encoder (square system: constraint matrix ->
intermediate symbols) and the decoder (overdetermined system: received
encoding symbols + static constraints -> intermediate symbols).  Row
operations are vectorised with numpy so that the cost is dominated by
``O(L^2)`` row-XOR/scale operations rather than Python-level loops over
matrix cells.

:func:`solve` optionally reports every row operation it performs (swap,
scale, fused multiply-XOR) to a recorder object.  :mod:`repro.rq.plan` uses
this to capture the elimination of a fixed matrix once and replay it over
the symbol plane of every later block with the same code parameters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

import numpy as np

from repro.rq.gf256 import gf_inv, gf_scale_rows, gf_scale_vector

if TYPE_CHECKING:  # pragma: no cover
    from repro.rq.kernels import GFKernel


class RowOpRecorder(Protocol):
    """Receives the row operations :func:`solve` performs, in order."""

    def swap(self, row_a: int, row_b: int) -> None:
        """Rows ``row_a`` and ``row_b`` were exchanged."""

    def scale(self, row: int, factor: int) -> None:
        """Row ``row`` was multiplied by ``factor``."""

    def eliminate(self, source_row: int, targets: np.ndarray, factors: np.ndarray) -> None:
        """``rows[targets] ^= factors[:, None] * rows[source_row]`` was applied."""


class SingularMatrixError(ValueError):
    """Raised when the system does not have full column rank."""


def gaussian_rank(matrix: np.ndarray) -> int:
    """Return the rank of ``matrix`` over GF(256) (the input is not modified)."""
    work = matrix.astype(np.uint8).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for row in range(rank, rows):
            if work[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
        pivot_value = int(work[rank, col])
        if pivot_value != 1:
            work[rank] = gf_scale_vector(work[rank], gf_inv(pivot_value))
        column = work[rank + 1 :, col]
        targets = np.nonzero(column)[0]
        if targets.size:
            factors = column[targets]
            work[rank + 1 + targets] ^= gf_scale_rows(
                np.tile(work[rank], (targets.size, 1)), factors
            )
        rank += 1
        if rank == rows:
            break
    return rank


def solve(
    matrix: np.ndarray,
    values: np.ndarray,
    num_unknowns: Optional[int] = None,
    recorder: Optional[RowOpRecorder] = None,
    kernel: Optional["GFKernel"] = None,
) -> np.ndarray:
    """Solve ``matrix . X = values`` for X over GF(256).

    Args:
        matrix: (n, L) uint8 coefficient matrix; ``n >= L`` is required.
        values: (n, T) uint8 right-hand sides (one row of T bytes per equation).
        num_unknowns: L; defaults to ``matrix.shape[1]``.
        recorder: optional sink notified of every row operation performed;
            the recorded sequence depends only on ``matrix``, never on
            ``values``, so it can be replayed against other right-hand sides.
        kernel: optional :class:`~repro.rq.kernels.GFKernel` whose
            ``scale_rows`` executes the fused multiply-XOR row operations;
            defaults to the numpy ground truth.  Every kernel computes the
            exact same field arithmetic, so the solution (and any recorded
            plan) is byte-identical regardless of the choice.

    Returns:
        (L, T) uint8 array of solved unknowns.

    Raises:
        SingularMatrixError: if the system does not have full column rank.
    """
    scale_rows = gf_scale_rows if kernel is None else kernel.scale_rows
    work = matrix.astype(np.uint8).copy()
    rhs = values.astype(np.uint8).copy()
    rows, cols = work.shape
    unknowns = cols if num_unknowns is None else num_unknowns
    if rhs.shape[0] != rows:
        raise ValueError(f"matrix has {rows} rows but values has {rhs.shape[0]}")
    if rows < unknowns:
        raise SingularMatrixError(
            f"not enough equations: {rows} rows for {unknowns} unknowns"
        )

    pivot_column_of_row: list[int] = []
    rank = 0
    for col in range(unknowns):
        pivot = None
        for row in range(rank, rows):
            if work[row, col]:
                pivot = row
                break
        if pivot is None:
            raise SingularMatrixError(f"no pivot available for column {col}")
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
            rhs[[rank, pivot]] = rhs[[pivot, rank]]
            if recorder is not None:
                recorder.swap(rank, pivot)
        pivot_value = int(work[rank, col])
        if pivot_value != 1:
            inverse = gf_inv(pivot_value)
            work[rank] = gf_scale_vector(work[rank], inverse)
            rhs[rank] = gf_scale_vector(rhs[rank], inverse)
            if recorder is not None:
                recorder.scale(rank, inverse)
        # Eliminate the pivot column from every other row (Gauss-Jordan) so the
        # solution can be read off directly at the end.
        column = work[:, col].copy()
        column[rank] = 0
        targets = np.nonzero(column)[0]
        if targets.size:
            factors = column[targets]
            work[targets] ^= scale_rows(np.tile(work[rank], (targets.size, 1)), factors)
            rhs[targets] ^= scale_rows(np.tile(rhs[rank], (targets.size, 1)), factors)
            if recorder is not None:
                recorder.eliminate(rank, targets.copy(), factors.copy())
        pivot_column_of_row.append(col)
        rank += 1

    solution = np.zeros((unknowns, rhs.shape[1]), dtype=np.uint8)
    for row, col in enumerate(pivot_column_of_row):
        solution[col] = rhs[row]
    return solution
