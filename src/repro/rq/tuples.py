"""The LT tuple generator.

For every encoding symbol identifier (ESI / ISI) ``X`` the generator derives a
tuple ``(d, a, b, d1, a1, b1)`` that determines which intermediate symbols are
XORed together to form the encoding symbol:

* ``d`` neighbours are drawn from the ``W`` LT intermediate symbols, walking
  from ``b`` with stride ``a`` (``1 <= a < W``);
* ``d1`` neighbours (2 or 3) are drawn from the ``P`` PI intermediate symbols,
  walking from ``b1`` with stride ``a1`` modulo the prime ``P1``.

The structure follows RFC 6330 section 5.3.5.4, with the systematic index
replaced by the block's ``systematic_seed`` (see :mod:`repro.rq.params`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.rq.degree import DEGREE_RANDOM_RANGE, deg
from repro.rq.params import CodeParameters
from repro.rq.rand import rand


@dataclass(frozen=True)
class EncodingTuple:
    """The neighbour-selection tuple for one encoding symbol."""

    d: int
    a: int
    b: int
    d1: int
    a1: int
    b1: int


def make_tuple(params: CodeParameters, internal_symbol_id: int) -> EncodingTuple:
    """Derive the encoding tuple for internal symbol id ``X``.

    ``internal_symbol_id`` (ISI) counts source symbols 0..K-1 followed by
    repair symbols K, K+1, ...
    """
    if internal_symbol_id < 0:
        raise ValueError(f"internal symbol id must be non-negative, got {internal_symbol_id}")
    w = params.num_lt_symbols
    p1 = params.pi_prime

    seed_a = 53591 + params.systematic_seed * 997
    seed_b = 10267 * (params.systematic_seed + 1)
    y = (seed_b + internal_symbol_id * seed_a) & 0xFFFFFFFF

    v = rand(y, 0, DEGREE_RANDOM_RANGE)
    d = deg(v, w)
    a = 1 + rand(y, 1, w - 1)
    b = rand(y, 2, w)
    if d < 4:
        d1 = 2 + rand(internal_symbol_id, 3, 2)
    else:
        d1 = 2
    a1 = 1 + rand(internal_symbol_id, 4, p1 - 1)
    b1 = rand(internal_symbol_id, 5, p1)
    return EncodingTuple(d=d, a=a, b=b, d1=d1, a1=a1, b1=b1)


@lru_cache(maxsize=1 << 16)
def lt_neighbours(params: CodeParameters, internal_symbol_id: int) -> tuple[int, ...]:
    """Return the intermediate-symbol indices XORed to form encoding symbol X.

    Indices below ``W`` refer to LT intermediate symbols; indices in
    ``[W, L)`` refer to PI symbols.  Each index appears at most once.  The
    result is memoised (and therefore an immutable tuple): the same source
    ESIs recur for every block of every transfer with the same parameters,
    so the tuple derivation is paid once per (params, ESI) process-wide.
    """
    t = make_tuple(params, internal_symbol_id)
    w = params.num_lt_symbols
    p = params.num_pi_symbols
    p1 = params.pi_prime

    neighbours: list[int] = []
    b = t.b
    neighbours.append(b)
    for _ in range(1, t.d):
        b = (b + t.a) % w
        neighbours.append(b)

    b1 = t.b1
    while b1 >= p:
        b1 = (b1 + t.a1) % p1
    neighbours.append(w + b1)
    for _ in range(1, t.d1):
        b1 = (b1 + t.a1) % p1
        while b1 >= p:
            b1 = (b1 + t.a1) % p1
        neighbours.append(w + b1)

    # The strided walk over W can revisit an index when d approaches W; XOR of
    # a symbol with itself cancels, so collapse duplicates to "appears odd
    # number of times".
    unique: dict[int, int] = {}
    for index in neighbours:
        unique[index] = unique.get(index, 0) + 1
    return tuple(sorted(index for index, count in unique.items() if count % 2 == 1))
