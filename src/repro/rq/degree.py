"""The LT degree distribution.

``deg(v)`` maps a 20-bit pseudo-random value ``v`` to an encoding-symbol
degree, following the shape of RFC 6330 section 5.3.5.2: degree 2 dominates,
low degrees are common and the maximum degree is 30.  The cumulative table
below reproduces the RFC's distribution (any small numeric deviation is
harmless because this package controls both encoder and decoder; the
distribution's shape is what drives decoding performance).
"""

from __future__ import annotations

#: Cumulative degree table: ``DEGREE_TABLE[d]`` is the threshold f[d] such that
#: the returned degree is the smallest d with v < f[d].  Index 0 is unused.
DEGREE_TABLE: tuple[int, ...] = (
    0,
    5243,
    529531,
    704294,
    791675,
    844104,
    879057,
    904023,
    922747,
    937311,
    948962,
    958494,
    966438,
    973160,
    978921,
    983914,
    988283,
    992138,
    995565,
    998631,
    1001391,
    1003887,
    1006157,
    1008229,
    1010129,
    1011876,
    1013490,
    1014983,
    1016370,
    1017662,
    1048576,
)

#: ``v`` is drawn from ``[0, 2**20)``.
DEGREE_RANDOM_RANGE = 1 << 20

MAX_DEGREE = len(DEGREE_TABLE) - 1


def deg(v: int, w: int) -> int:
    """Map a random value ``v`` in [0, 2^20) to an LT degree.

    The returned degree is additionally capped at ``w - 2`` (the number of LT
    intermediate symbols minus two), as in RFC 6330, so that small blocks
    never request a degree larger than the available symbols.
    """
    if not 0 <= v < DEGREE_RANDOM_RANGE:
        raise ValueError(f"v must be in [0, {DEGREE_RANDOM_RANGE}), got {v}")
    for degree in range(1, MAX_DEGREE + 1):
        if v < DEGREE_TABLE[degree]:
            return min(degree, w - 2)
    raise AssertionError("unreachable: DEGREE_TABLE must end at DEGREE_RANDOM_RANGE")


def degree_probabilities() -> dict[int, float]:
    """Return the probability mass function implied by :data:`DEGREE_TABLE`.

    Exposed for tests and for the codec documentation; the values sum to 1.
    """
    pmf: dict[int, float] = {}
    for degree in range(1, MAX_DEGREE + 1):
        mass = DEGREE_TABLE[degree] - DEGREE_TABLE[degree - 1]
        pmf[degree] = mass / DEGREE_RANDOM_RANGE
    return pmf
