"""Block decoder: recover the source symbols from any sufficient symbol set.

The decoder accumulates received encoding symbols (source or repair, in any
order, from any number of senders).  Once at least K symbols are available it
attempts to solve the combined system

* S LDPC constraint rows          = 0
* H HDPC constraint rows          = 0
* one LT row per received symbol  = received symbol value

for the L intermediate symbols, then re-encodes ESIs 0..K-1 to obtain the
source block.  Source symbols that were received directly are returned as-is
(no re-encoding cost), matching the "zero decoding latency without loss"
property the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rq.matrix import hdpc_rows, ldpc_rows, lt_row
from repro.rq.params import CodeParameters, for_k
from repro.rq.solver import SingularMatrixError, solve
from repro.rq.tuples import lt_neighbours


class DecodeFailure(RuntimeError):
    """Raised by :meth:`BlockDecoder.decode_or_raise` when decoding fails."""


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a decode attempt."""

    success: bool
    source_symbols: Optional[list[bytes]]
    symbols_received: int
    symbols_used: int
    overhead: int
    used_gaussian_elimination: bool

    @property
    def data(self) -> bytes:
        """Concatenated source symbols (only valid when :attr:`success`)."""
        if not self.success or self.source_symbols is None:
            raise DecodeFailure("decode did not succeed; no data available")
        return b"".join(self.source_symbols)


class BlockDecoder:
    """Decoder for a single source block."""

    def __init__(self, num_source_symbols: int, symbol_size: int,
                 params: CodeParameters | None = None) -> None:
        self.params = params if params is not None else for_k(num_source_symbols)
        if self.params.num_source_symbols != num_source_symbols:
            raise ValueError("params do not match num_source_symbols")
        if symbol_size <= 0:
            raise ValueError("symbol_size must be positive")
        self.symbol_size = symbol_size
        self._received: dict[int, bytes] = {}
        self._decoded: Optional[list[bytes]] = None

    @property
    def num_source_symbols(self) -> int:
        """K for this block."""
        return self.params.num_source_symbols

    @property
    def symbols_received(self) -> int:
        """Number of distinct encoding symbols received so far."""
        return len(self._received)

    @property
    def source_symbols_received(self) -> int:
        """How many of the received symbols are source symbols (ESI < K)."""
        return sum(1 for esi in self._received if esi < self.num_source_symbols)

    @property
    def is_decoded(self) -> bool:
        """Whether a previous decode attempt succeeded."""
        return self._decoded is not None

    def add_symbol(self, esi: int, data: bytes) -> bool:
        """Add one received encoding symbol.

        Returns True if the symbol was new (not a duplicate ESI).  Duplicate
        ESIs are ignored: they carry no new information.
        """
        if esi < 0:
            raise ValueError(f"ESI must be non-negative, got {esi}")
        if len(data) != self.symbol_size:
            raise ValueError(
                f"symbol has size {len(data)}, expected {self.symbol_size}"
            )
        if esi in self._received:
            return False
        self._received[esi] = data
        return True

    def can_attempt_decode(self) -> bool:
        """True once at least K distinct symbols are available."""
        return len(self._received) >= self.num_source_symbols

    def missing_source_symbols(self) -> list[int]:
        """ESIs of source symbols not received directly."""
        return [
            esi for esi in range(self.num_source_symbols) if esi not in self._received
        ]

    def decode(self) -> DecodeResult:
        """Attempt to decode; never raises on failure (returns a result object)."""
        k = self.num_source_symbols
        received = len(self._received)

        if self._decoded is not None:
            return DecodeResult(
                success=True,
                source_symbols=self._decoded,
                symbols_received=received,
                symbols_used=received,
                overhead=received - k,
                used_gaussian_elimination=False,
            )

        # Fast path: every source symbol arrived directly; no coding work at all.
        if self.source_symbols_received == k:
            self._decoded = [self._received[esi] for esi in range(k)]
            return DecodeResult(
                success=True,
                source_symbols=self._decoded,
                symbols_received=received,
                symbols_used=k,
                overhead=received - k,
                used_gaussian_elimination=False,
            )

        if not self.can_attempt_decode():
            return DecodeResult(
                success=False,
                source_symbols=None,
                symbols_received=received,
                symbols_used=0,
                overhead=received - k,
                used_gaussian_elimination=False,
            )

        try:
            intermediate = self._solve_intermediate()
        except SingularMatrixError:
            return DecodeResult(
                success=False,
                source_symbols=None,
                symbols_received=received,
                symbols_used=received,
                overhead=received - k,
                used_gaussian_elimination=True,
            )

        source: list[bytes] = []
        for esi in range(k):
            if esi in self._received:
                source.append(self._received[esi])
            else:
                source.append(self._lt_encode(intermediate, esi))
        self._decoded = source
        return DecodeResult(
            success=True,
            source_symbols=source,
            symbols_received=received,
            symbols_used=received,
            overhead=received - k,
            used_gaussian_elimination=True,
        )

    def decode_or_raise(self) -> list[bytes]:
        """Decode and return the source symbols, raising :class:`DecodeFailure` on failure."""
        result = self.decode()
        if not result.success or result.source_symbols is None:
            raise DecodeFailure(
                f"decoding failed with {result.symbols_received} symbols for K={self.num_source_symbols}"
            )
        return result.source_symbols

    def _solve_intermediate(self) -> np.ndarray:
        params = self.params
        l = params.num_intermediate_symbols
        s = params.num_ldpc_symbols
        h = params.num_hdpc_symbols
        esis = sorted(self._received)
        num_rows = s + h + len(esis)

        matrix = np.zeros((num_rows, l), dtype=np.uint8)
        rhs = np.zeros((num_rows, self.symbol_size), dtype=np.uint8)
        matrix[:s] = ldpc_rows(params)
        matrix[s : s + h] = hdpc_rows(params)
        for row_offset, esi in enumerate(esis):
            matrix[s + h + row_offset] = lt_row(params, esi)
            rhs[s + h + row_offset] = np.frombuffer(self._received[esi], dtype=np.uint8)
        return solve(matrix, rhs)

    def _lt_encode(self, intermediate: np.ndarray, internal_symbol_id: int) -> bytes:
        accumulator = np.zeros(self.symbol_size, dtype=np.uint8)
        for index in lt_neighbours(self.params, internal_symbol_id):
            accumulator ^= intermediate[index]
        return accumulator.tobytes()
