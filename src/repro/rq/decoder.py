"""Block decoder: recover the source symbols from any sufficient symbol set.

The decoder accumulates received encoding symbols (source or repair, in any
order, from any number of senders).  Once at least K symbols are available it
attempts to solve the combined system

* S LDPC constraint rows          = 0
* H HDPC constraint rows          = 0
* one LT row per received symbol  = received symbol value

for the L intermediate symbols, then re-encodes ESIs 0..K-1 to obtain the
source block.  Source symbols that were received directly are returned as-is
(no re-encoding cost), matching the "zero decoding latency without loss"
property the paper highlights.

The solve itself is delegated to the shared
:class:`~repro.rq.backend.CodecContext`: under the default ``planned``
backend the elimination plan is cached canonically by this block's
*missing-source pattern* (not the raw ESI set), so every later block that
lost the same sources decodes by replaying one cached plan on the context's
GF(256) kernel, no matter how many surplus repair symbols arrived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.rq.params import CodeParameters, for_k
from repro.rq.solver import SingularMatrixError
from repro.rq.tuples import lt_neighbours

if TYPE_CHECKING:  # pragma: no cover
    from repro.rq.backend import CodecContext


class DecodeFailure(RuntimeError):
    """Raised by :meth:`BlockDecoder.decode_or_raise` when decoding fails."""


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a decode attempt."""

    success: bool
    source_symbols: Optional[list[bytes]]
    symbols_received: int
    symbols_used: int
    overhead: int
    used_gaussian_elimination: bool

    @property
    def data(self) -> bytes:
        """Concatenated source symbols (only valid when :attr:`success`)."""
        if not self.success or self.source_symbols is None:
            raise DecodeFailure("decode did not succeed; no data available")
        return b"".join(self.source_symbols)


class BlockDecoder:
    """Decoder for a single source block."""

    def __init__(self, num_source_symbols: int, symbol_size: int,
                 params: CodeParameters | None = None,
                 context: Optional["CodecContext"] = None) -> None:
        if context is None:
            from repro.rq.backend import default_context

            context = default_context()
        self.context = context
        self.params = params if params is not None else for_k(num_source_symbols)
        if self.params.num_source_symbols != num_source_symbols:
            raise ValueError("params do not match num_source_symbols")
        if symbol_size <= 0:
            raise ValueError("symbol_size must be positive")
        self.symbol_size = symbol_size
        self._received: dict[int, bytes] = {}
        self._decoded: Optional[list[bytes]] = None

    @property
    def num_source_symbols(self) -> int:
        """K for this block."""
        return self.params.num_source_symbols

    @property
    def symbols_received(self) -> int:
        """Number of distinct encoding symbols received so far."""
        return len(self._received)

    @property
    def source_symbols_received(self) -> int:
        """How many of the received symbols are source symbols (ESI < K)."""
        return sum(1 for esi in self._received if esi < self.num_source_symbols)

    @property
    def is_decoded(self) -> bool:
        """Whether a previous decode attempt succeeded."""
        return self._decoded is not None

    def add_symbol(self, esi: int, data: bytes) -> bool:
        """Add one received encoding symbol.

        Returns True if the symbol was new (not a duplicate ESI).  Duplicate
        ESIs are ignored: they carry no new information.
        """
        if esi < 0:
            raise ValueError(f"ESI must be non-negative, got {esi}")
        if len(data) != self.symbol_size:
            raise ValueError(
                f"symbol has size {len(data)}, expected {self.symbol_size}"
            )
        if esi in self._received:
            return False
        self._received[esi] = data
        return True

    def can_attempt_decode(self) -> bool:
        """True once at least K distinct symbols are available."""
        return len(self._received) >= self.num_source_symbols

    def missing_source_symbols(self) -> list[int]:
        """ESIs of source symbols not received directly."""
        return [
            esi for esi in range(self.num_source_symbols) if esi not in self._received
        ]

    def decode(self) -> DecodeResult:
        """Attempt to decode; never raises on failure (returns a result object)."""
        k = self.num_source_symbols
        received = len(self._received)

        if self._decoded is not None:
            return DecodeResult(
                success=True,
                source_symbols=self._decoded,
                symbols_received=received,
                symbols_used=received,
                overhead=received - k,
                used_gaussian_elimination=False,
            )

        # Fast path: every source symbol arrived directly; no coding work at all.
        if self.source_symbols_received == k:
            self._decoded = [self._received[esi] for esi in range(k)]
            return DecodeResult(
                success=True,
                source_symbols=self._decoded,
                symbols_received=received,
                symbols_used=k,
                overhead=received - k,
                used_gaussian_elimination=False,
            )

        if not self.can_attempt_decode():
            return DecodeResult(
                success=False,
                source_symbols=None,
                symbols_received=received,
                symbols_used=0,
                overhead=received - k,
                used_gaussian_elimination=False,
            )

        try:
            intermediate = self._solve_intermediate()
        except SingularMatrixError:
            return DecodeResult(
                success=False,
                source_symbols=None,
                symbols_received=received,
                symbols_used=received,
                overhead=received - k,
                used_gaussian_elimination=True,
            )

        # Re-encode every missing source symbol in one batched pass over the
        # intermediate plane; directly-received source symbols are reused.
        missing = [esi for esi in range(k) if esi not in self._received]
        recovered = dict(zip(missing, self._lt_encode_block(intermediate, missing)))
        source = [
            self._received[esi] if esi in self._received else recovered[esi]
            for esi in range(k)
        ]
        self._decoded = source
        return DecodeResult(
            success=True,
            source_symbols=source,
            symbols_received=received,
            symbols_used=received,
            overhead=received - k,
            used_gaussian_elimination=True,
        )

    def decode_or_raise(self) -> list[bytes]:
        """Decode and return the source symbols, raising :class:`DecodeFailure` on failure."""
        result = self.decode()
        if not result.success or result.source_symbols is None:
            raise DecodeFailure(
                f"decoding failed with {result.symbols_received} symbols for K={self.num_source_symbols}"
            )
        return result.source_symbols

    def _solve_intermediate(self) -> np.ndarray:
        esis = sorted(self._received)
        received = np.empty((len(esis), self.symbol_size), dtype=np.uint8)
        for row, esi in enumerate(esis):
            received[row] = np.frombuffer(self._received[esi], dtype=np.uint8)
        return self.context.decode_intermediate(self.params, esis, received)

    def _lt_encode_block(self, intermediate: np.ndarray, esis: list[int]) -> list[bytes]:
        symbols: list[bytes] = []
        for esi in esis:
            indices = list(lt_neighbours(self.params, esi))
            symbols.append(np.bitwise_xor.reduce(intermediate[indices], axis=0).tobytes())
        return symbols
