"""Object-level segmentation: split an object into source blocks.

Large objects are split into ``Z`` source blocks, each with at most
``max_symbols_per_block`` source symbols of ``symbol_size`` bytes (the last
symbol of the last block is zero-padded; the original length is carried in
the :class:`ObjectTransmissionInfo` so the decoder can strip the padding).

The split mirrors RFC 6330's source-block partitioning: block sizes differ by
at most one symbol, so load is spread evenly — which also matters for the
multi-source transport where different senders may serve different blocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from repro.rq.decoder import BlockDecoder, DecodeFailure
from repro.rq.encoder import BlockEncoder
from repro.rq.params import MAX_SOURCE_SYMBOLS, MIN_SOURCE_SYMBOLS

if TYPE_CHECKING:  # pragma: no cover
    from repro.rq.backend import CodecContext

#: Default symbol size: fits (with headers) in a 1500-byte data-centre MTU.
DEFAULT_SYMBOL_SIZE = 1408

#: Default cap on source symbols per block; keeps the Gaussian elimination fast.
DEFAULT_MAX_SYMBOLS_PER_BLOCK = 256


@dataclass(frozen=True)
class ObjectTransmissionInfo:
    """Everything a receiver needs to know to decode an object (RFC 6330's OTI)."""

    transfer_length: int
    symbol_size: int
    num_source_blocks: int
    symbols_per_block: tuple[int, ...]

    @property
    def total_source_symbols(self) -> int:
        """Total number of source symbols across all blocks."""
        return sum(self.symbols_per_block)

    def block_symbol_count(self, block_number: int) -> int:
        """Number of source symbols in the given block."""
        return self.symbols_per_block[block_number]


@dataclass(frozen=True)
class EncodedSymbol:
    """One encoding symbol on the wire: block number, ESI and payload."""

    block_number: int
    esi: int
    data: bytes

    def is_source_for(self, num_source_symbols: int) -> bool:
        """True if this symbol is a source symbol of a block with the given K."""
        return self.esi < num_source_symbols


def partition_object(transfer_length: int, symbol_size: int,
                     max_symbols_per_block: int) -> ObjectTransmissionInfo:
    """Compute the block structure for an object of ``transfer_length`` bytes."""
    if transfer_length <= 0:
        raise ValueError("transfer_length must be positive")
    if symbol_size <= 0:
        raise ValueError("symbol_size must be positive")
    if not MIN_SOURCE_SYMBOLS <= max_symbols_per_block <= MAX_SOURCE_SYMBOLS:
        raise ValueError(
            f"max_symbols_per_block must be in [{MIN_SOURCE_SYMBOLS}, {MAX_SOURCE_SYMBOLS}]"
        )
    total_symbols = max(MIN_SOURCE_SYMBOLS, math.ceil(transfer_length / symbol_size))
    # Splitting must never create a block smaller than the codec's minimum, so
    # the block count is capped by how many MIN_SOURCE_SYMBOLS-sized blocks fit
    # (respecting the minimum takes precedence over the soft per-block cap).
    max_blocks_by_minimum = max(1, total_symbols // MIN_SOURCE_SYMBOLS)
    num_blocks = min(math.ceil(total_symbols / max_symbols_per_block), max_blocks_by_minimum)
    base = total_symbols // num_blocks
    remainder = total_symbols % num_blocks
    symbols_per_block = tuple(
        base + 1 if block < remainder else base for block in range(num_blocks)
    )
    return ObjectTransmissionInfo(
        transfer_length=transfer_length,
        symbol_size=symbol_size,
        num_source_blocks=num_blocks,
        symbols_per_block=symbols_per_block,
    )


class ObjectEncoder:
    """Encode a whole object: block partitioning + per-block systematic encoders."""

    def __init__(
        self,
        data: bytes,
        symbol_size: int = DEFAULT_SYMBOL_SIZE,
        max_symbols_per_block: int = DEFAULT_MAX_SYMBOLS_PER_BLOCK,
        context: Optional["CodecContext"] = None,
    ) -> None:
        if not data:
            raise ValueError("cannot encode an empty object")
        self.data = bytes(data)
        self.context = context
        self.oti = partition_object(len(data), symbol_size, max_symbols_per_block)
        self._encoders: dict[int, BlockEncoder] = {}

    @property
    def num_blocks(self) -> int:
        """Number of source blocks the object was split into."""
        return self.oti.num_source_blocks

    def _block_source_symbols(self, block_number: int) -> list[bytes]:
        symbol_size = self.oti.symbol_size
        start_symbol = sum(self.oti.symbols_per_block[:block_number])
        count = self.oti.symbols_per_block[block_number]
        symbols = []
        for index in range(start_symbol, start_symbol + count):
            chunk = self.data[index * symbol_size : (index + 1) * symbol_size]
            if len(chunk) < symbol_size:
                chunk = chunk + b"\x00" * (symbol_size - len(chunk))
            symbols.append(chunk)
        return symbols

    def block(self, block_number: int) -> BlockEncoder:
        """Return (and cache) the encoder for one source block."""
        if not 0 <= block_number < self.num_blocks:
            raise IndexError(f"block {block_number} out of range")
        if block_number not in self._encoders:
            self._encoders[block_number] = BlockEncoder(
                self._block_source_symbols(block_number), context=self.context
            )
        return self._encoders[block_number]

    def symbol(self, block_number: int, esi: int) -> EncodedSymbol:
        """Generate one encoding symbol for the given block."""
        data = self.block(block_number).symbol(esi)
        return EncodedSymbol(block_number=block_number, esi=esi, data=data)

    def symbol_block(self, block_number: int, esis: Sequence[int]) -> list[EncodedSymbol]:
        """Generate a batch of encoding symbols for one block in the symbol plane."""
        plane = self.block(block_number).symbol_block(esis)
        return [
            EncodedSymbol(block_number=block_number, esi=esi, data=plane[row].tobytes())
            for row, esi in enumerate(esis)
        ]

    def source_symbols(self) -> Iterator[EncodedSymbol]:
        """Yield every source symbol of every block, in order."""
        for block_number in range(self.num_blocks):
            for esi in range(self.oti.block_symbol_count(block_number)):
                yield self.symbol(block_number, esi)

    def repair_symbols(self, block_number: int, start_esi: int, count: int) -> Iterator[EncodedSymbol]:
        """Yield ``count`` repair symbols for one block starting at ``start_esi``."""
        k = self.oti.block_symbol_count(block_number)
        esi = max(start_esi, k)
        for _ in range(count):
            yield self.symbol(block_number, esi)
            esi += 1


class ObjectDecoder:
    """Decode a whole object from encoding symbols of any of its blocks."""

    def __init__(self, oti: ObjectTransmissionInfo,
                 context: Optional["CodecContext"] = None) -> None:
        self.oti = oti
        self.context = context
        self._decoders = {
            block: BlockDecoder(oti.block_symbol_count(block), oti.symbol_size,
                                context=context)
            for block in range(oti.num_source_blocks)
        }

    def add_symbol(self, symbol: EncodedSymbol) -> bool:
        """Feed one received encoding symbol to the right block decoder."""
        if symbol.block_number not in self._decoders:
            raise ValueError(f"unknown block number {symbol.block_number}")
        return self._decoders[symbol.block_number].add_symbol(symbol.esi, symbol.data)

    def add_symbols(self, symbols: Iterable[EncodedSymbol]) -> int:
        """Feed many symbols; returns how many were new."""
        return sum(1 for symbol in symbols if self.add_symbol(symbol))

    def block_decoder(self, block_number: int) -> BlockDecoder:
        """Access the underlying per-block decoder (for inspection/tests)."""
        return self._decoders[block_number]

    def is_complete(self) -> bool:
        """True when every block has enough symbols to have decoded successfully."""
        return all(decoder.is_decoded for decoder in self._decoders.values())

    def can_attempt_decode(self) -> bool:
        """True when every block has at least K symbols."""
        return all(decoder.can_attempt_decode() for decoder in self._decoders.values())

    def decode(self) -> bytes:
        """Decode all blocks and return the original object bytes.

        Raises:
            DecodeFailure: if any block cannot be decoded yet.
        """
        pieces: list[bytes] = []
        for block_number in range(self.oti.num_source_blocks):
            symbols = self._decoders[block_number].decode_or_raise()
            pieces.extend(symbols)
        data = b"".join(pieces)
        return data[: self.oti.transfer_length]
