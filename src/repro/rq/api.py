"""Convenience one-shot helpers on top of the object encoder/decoder.

These are what the examples and most tests use; the transport protocol uses
the lower-level :class:`~repro.rq.block.ObjectEncoder` /
:class:`~repro.rq.block.ObjectDecoder` directly so that it can generate repair
symbols on demand.

Both helpers accept an optional :class:`~repro.rq.backend.CodecContext`:
pass one to choose a backend (``"planned"`` / ``"reference"``), to share an
elimination-plan cache across many objects, or to seed that cache from a
pre-warmed :class:`~repro.rq.plan.PlanStore`; without one, the process-wide
default context is used.  See ``docs/ARCHITECTURE.md`` for how contexts,
plans and stores fit together.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.rq.block import (
    DEFAULT_MAX_SYMBOLS_PER_BLOCK,
    DEFAULT_SYMBOL_SIZE,
    EncodedSymbol,
    ObjectDecoder,
    ObjectEncoder,
    ObjectTransmissionInfo,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.rq.backend import CodecContext


def encode_object(
    data: bytes,
    symbol_size: int = DEFAULT_SYMBOL_SIZE,
    repair_symbols_per_block: int = 0,
    max_symbols_per_block: int = DEFAULT_MAX_SYMBOLS_PER_BLOCK,
    context: Optional["CodecContext"] = None,
) -> tuple[ObjectTransmissionInfo, list[EncodedSymbol]]:
    """Encode ``data`` and return its OTI plus a list of encoding symbols.

    The returned list contains every source symbol followed by
    ``repair_symbols_per_block`` repair symbols per block.  Each block is
    produced with one batched symbol-plane pass.

    Args:
        data: the object bytes (must be non-empty).
        symbol_size: bytes per encoding symbol (default fits one MTU).
        repair_symbols_per_block: extra rateless symbols appended per block.
        max_symbols_per_block: cap on source symbols per block; larger
            objects are split into several blocks.
        context: optional shared codec context (backend + plan cache).

    Returns:
        ``(oti, symbols)`` -- the transmission info the decoder needs, and
        the encoding symbols in (block-major, source-then-repair) order.
    """
    encoder = ObjectEncoder(data, symbol_size=symbol_size,
                            max_symbols_per_block=max_symbols_per_block,
                            context=context)
    symbols: list[EncodedSymbol] = []
    for block_number in range(encoder.num_blocks):
        k = encoder.oti.block_symbol_count(block_number)
        symbols.extend(encoder.symbol_block(block_number, list(range(k))))
    for block_number in range(encoder.num_blocks):
        k = encoder.oti.block_symbol_count(block_number)
        repair_esis = list(range(k, k + repair_symbols_per_block))
        symbols.extend(encoder.symbol_block(block_number, repair_esis))
    return encoder.oti, symbols


def decode_object(oti: ObjectTransmissionInfo, symbols: Iterable[EncodedSymbol],
                  context: Optional["CodecContext"] = None) -> bytes:
    """Decode an object from its OTI and any sufficient set of encoding symbols.

    Args:
        oti: the transmission info produced by :func:`encode_object`.
        symbols: received encoding symbols, in any order, from any senders;
            each block needs at least K (plus the usual small overhead when
            source symbols were lost).
        context: optional shared codec context (backend + plan cache).

    Raises:
        repro.rq.decoder.DecodeFailure: if some block cannot be decoded yet.
    """
    decoder = ObjectDecoder(oti, context=context)
    decoder.add_symbols(symbols)
    return decoder.decode()
