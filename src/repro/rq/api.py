"""Convenience one-shot helpers on top of the object encoder/decoder.

These are what the examples and most tests use; the transport protocol uses
the lower-level :class:`~repro.rq.block.ObjectEncoder` /
:class:`~repro.rq.block.ObjectDecoder` directly so that it can generate repair
symbols on demand.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.rq.block import (
    DEFAULT_MAX_SYMBOLS_PER_BLOCK,
    DEFAULT_SYMBOL_SIZE,
    EncodedSymbol,
    ObjectDecoder,
    ObjectEncoder,
    ObjectTransmissionInfo,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.rq.backend import CodecContext


def encode_object(
    data: bytes,
    symbol_size: int = DEFAULT_SYMBOL_SIZE,
    repair_symbols_per_block: int = 0,
    max_symbols_per_block: int = DEFAULT_MAX_SYMBOLS_PER_BLOCK,
    context: Optional["CodecContext"] = None,
) -> tuple[ObjectTransmissionInfo, list[EncodedSymbol]]:
    """Encode ``data`` and return its OTI plus a list of encoding symbols.

    The returned list contains every source symbol followed by
    ``repair_symbols_per_block`` repair symbols per block.  Each block is
    produced with one batched symbol-plane pass.
    """
    encoder = ObjectEncoder(data, symbol_size=symbol_size,
                            max_symbols_per_block=max_symbols_per_block,
                            context=context)
    symbols: list[EncodedSymbol] = []
    for block_number in range(encoder.num_blocks):
        k = encoder.oti.block_symbol_count(block_number)
        symbols.extend(encoder.symbol_block(block_number, list(range(k))))
    for block_number in range(encoder.num_blocks):
        k = encoder.oti.block_symbol_count(block_number)
        repair_esis = list(range(k, k + repair_symbols_per_block))
        symbols.extend(encoder.symbol_block(block_number, repair_esis))
    return encoder.oti, symbols


def decode_object(oti: ObjectTransmissionInfo, symbols: Iterable[EncodedSymbol],
                  context: Optional["CodecContext"] = None) -> bytes:
    """Decode an object from its OTI and any sufficient set of encoding symbols."""
    decoder = ObjectDecoder(oti, context=context)
    decoder.add_symbols(symbols)
    return decoder.decode()
