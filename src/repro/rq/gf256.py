"""GF(256) arithmetic used by the HDPC rows and the decoder.

The field is GF(2^8) defined by the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D) with generator alpha = 2, matching
RFC 6330 section 5.7.  Addition is XOR; multiplication uses exp/log tables.

The module exposes scalar operations plus numpy-vectorised helpers used by
the Gaussian-elimination solver (scaling whole rows, scaling a batch of rows
by per-row factors).
"""

from __future__ import annotations

import numpy as np

_PRIMITIVE_POLYNOMIAL = 0x11D
_FIELD_SIZE = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build exp/log tables for GF(256) with generator alpha = 2."""
    exp = np.zeros(510, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(255):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLYNOMIAL
    # Duplicate the exp table so that exp[log(a) + log(b)] never needs a modulo.
    for power in range(255, 510):
        exp[power] = exp[power - 255]
    log[0] = 0  # never used for zero operands; guarded explicitly
    return exp, log


OCT_EXP, OCT_LOG = _build_tables()

#: alpha (the field generator) as an integer, exposed for the HDPC construction.
ALPHA = 2


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return int(OCT_EXP[int(OCT_LOG[a]) + int(OCT_LOG[b])])


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b`` (``b`` must be non-zero)."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(OCT_EXP[(int(OCT_LOG[a]) - int(OCT_LOG[b])) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of a non-zero field element."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return int(OCT_EXP[(255 - int(OCT_LOG[a])) % 255])


def gf_pow(a: int, exponent: int) -> int:
    """Raise a field element to an integer power (exponent may exceed 255)."""
    if a == 0:
        return 0 if exponent != 0 else 1
    return int(OCT_EXP[(int(OCT_LOG[a]) * exponent) % 255])


def alpha_power(exponent: int) -> int:
    """Return alpha**exponent, the conventional HDPC coefficient."""
    return int(OCT_EXP[exponent % 255])


def gf_scale_vector(vector: np.ndarray, factor: int) -> np.ndarray:
    """Return ``factor * vector`` element-wise over GF(256).

    ``vector`` must be a uint8 numpy array; the result is a new array.
    """
    if factor == 0:
        return np.zeros_like(vector)
    if factor == 1:
        return vector.copy()
    result = np.zeros_like(vector)
    nonzero = vector != 0
    if np.any(nonzero):
        logs = OCT_LOG[vector[nonzero]] + int(OCT_LOG[factor])
        result[nonzero] = OCT_EXP[logs]
    return result


def gf_scale_rows(rows: np.ndarray, factors: np.ndarray) -> np.ndarray:
    """Scale each row of ``rows`` by the corresponding entry of ``factors``.

    Used by the solver to eliminate a pivot column from many rows at once:
    ``rows[i] <- factors[i] * pivot_row`` is computed for every i in one
    vectorised pass.

    Args:
        rows: (n, m) uint8 array (each row will be scaled independently).
        factors: (n,) uint8 array of per-row scale factors.

    Returns:
        A new (n, m) uint8 array.
    """
    if rows.ndim != 2:
        raise ValueError("rows must be a 2-D array")
    result = np.zeros_like(rows)
    nonzero_factor = factors != 0
    if not np.any(nonzero_factor):
        return result
    active_rows = rows[nonzero_factor]
    active_factors = factors[nonzero_factor]
    nonzero_cells = active_rows != 0
    factor_logs = OCT_LOG[active_factors].astype(np.int64)
    logs = OCT_LOG[active_rows] + factor_logs[:, None]
    scaled = np.where(nonzero_cells, OCT_EXP[logs], 0).astype(np.uint8)
    result[nonzero_factor] = scaled
    return result


def _build_mul_table() -> np.ndarray:
    """Build the full 256 x 256 GF(256) multiplication table (64 KiB)."""
    logs = OCT_LOG[np.arange(256)]
    table = OCT_EXP[logs[:, None] + logs[None, :]].astype(np.uint8)
    table[0, :] = 0
    table[:, 0] = 0
    return table


#: Full multiplication table: ``MUL_TABLE[a, b] == gf_mul(a, b)``.  One fancy
#: index replaces the log/exp/zero-mask dance, which is what makes the batched
#: matrix product below fast enough for whole-block symbol planes.
MUL_TABLE = _build_mul_table()


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two GF(256) matrices: ``(m, n) . (n, t) -> (m, t)`` (uint8).

    Vectorised column-by-column: for each k the outer product of ``a[:, k]``
    and ``b[k]`` is one table gather plus one XOR-accumulate, so the Python
    loop is O(n) regardless of the symbol size t.  This is the workhorse of
    elimination-plan replay, where ``a`` is a cached solution operator and
    ``b`` is the (n x symbol_size) symbol plane of a block.
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("gf_matmul needs two 2-D arrays")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} . {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for k in range(a.shape[1]):
        column = a[:, k]
        if not column.any():
            continue
        value_row = b[k]
        if not value_row.any():
            continue
        # Two-stage gather: expand the column against the full table first
        # ((m, 256), cheap), then index by the value row.  Roughly 4x faster
        # than one broadcast 2-D fancy index over the same data.
        products = MUL_TABLE[column]
        out ^= products[:, value_row]
    return out


def gf_matvec(matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Multiply a GF(256) matrix by a GF(256) column vector (both uint8)."""
    result = np.zeros(matrix.shape[0], dtype=np.uint8)
    for row_index in range(matrix.shape[0]):
        accumulator = 0
        row = matrix[row_index]
        nonzero_columns = np.nonzero(row)[0]
        for column in nonzero_columns:
            accumulator ^= gf_mul(int(row[column]), int(vector[column]))
        result[row_index] = accumulator
    return result
