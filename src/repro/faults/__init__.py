"""Fault injection and dynamic topology.

The subsystem has two halves:

* :mod:`repro.faults.schedule` -- declarative, seeded, picklable
  :class:`FaultSchedule` value objects (link down/up, link degrade, random
  loss, switch failure, host slowdown) plus the :func:`random_fault_schedule`
  generator the resilience experiment parameterises by intensity;
* :mod:`repro.faults.injector` -- the :class:`FaultInjector` simulation
  process that executes a schedule against a live network, recomputing
  routes on topology changes and counting every fault-caused packet drop.
"""

from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    fabric_edges,
    host_slowdown,
    link_degrade,
    link_down,
    link_loss,
    link_up,
    random_fault_schedule,
    straggler_schedule,
    switch_down,
    switch_up,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "fabric_edges",
    "host_slowdown",
    "link_degrade",
    "link_down",
    "link_loss",
    "link_up",
    "random_fault_schedule",
    "straggler_schedule",
    "switch_down",
    "switch_up",
]
