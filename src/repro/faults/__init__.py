"""Fault injection and dynamic topology.

The subsystem has two halves:

* :mod:`repro.faults.schedule` -- declarative, seeded, picklable
  :class:`FaultSchedule` value objects (link down/up, link degrade, random
  loss, switch failure, host slowdown) plus the seeded generators the
  experiments parameterise: :func:`random_fault_schedule` (independent
  faults by intensity), :func:`shared_risk_group_schedule` (SRLGs),
  :func:`rack_power_schedule` (a ToR and all its host links as one unit),
  :func:`gray_failure_schedule` (low-probability loss smeared across many
  links, invisible to routing) and :func:`straggler_schedule`;
* :mod:`repro.faults.injector` -- the :class:`FaultInjector` simulation
  process that executes a schedule against a live network, recomputing
  routes on topology changes and counting every fault-caused packet drop.
"""

from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    fabric_edges,
    gray_failure_schedule,
    host_slowdown,
    link_degrade,
    link_down,
    link_loss,
    link_up,
    rack_power_schedule,
    random_fault_schedule,
    shared_risk_group_schedule,
    straggler_schedule,
    switch_down,
    switch_up,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "fabric_edges",
    "gray_failure_schedule",
    "host_slowdown",
    "link_degrade",
    "link_down",
    "link_loss",
    "link_up",
    "rack_power_schedule",
    "random_fault_schedule",
    "shared_risk_group_schedule",
    "straggler_schedule",
    "switch_down",
    "switch_up",
]
