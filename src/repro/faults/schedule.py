"""Declarative, seeded fault schedules.

A :class:`FaultSchedule` is a value object: an immutable, time-sorted tuple
of :class:`FaultEvent` records describing *what* goes wrong in the fabric and
*when* -- links failing and recovering, links degrading to a fraction of
their rate, elevated random loss, whole-switch failures, and host-NIC
slowdowns (the declarative form of the straggler scenario whose detection
side lives in :mod:`repro.core.straggler`).

Schedules are plain frozen dataclasses, so they pickle and hash: the
parallel executor ships them to worker processes inside
:class:`~repro.experiments.parallel.RunJob` and the run is byte-identical
for any ``--jobs N``.  Execution is the job of
:class:`repro.faults.injector.FaultInjector`.

:func:`random_fault_schedule` generates a schedule whose event count scales
with a single ``intensity`` knob, drawing every placement and timing from a
caller-supplied seeded RNG -- the resilience experiment's way of
parameterising "how broken is the fabric".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional, Sequence

from repro.network.topology import NodeRole, Topology


class FaultKind(str, Enum):
    """What a fault event does to its target."""

    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    LINK_DEGRADE = "link_degrade"
    LINK_LOSS = "link_loss"
    SWITCH_DOWN = "switch_down"
    SWITCH_UP = "switch_up"
    HOST_SLOWDOWN = "host_slowdown"


#: kinds that address a full-duplex link (two node names)
LINK_KINDS = frozenset(
    {FaultKind.LINK_DOWN, FaultKind.LINK_UP, FaultKind.LINK_DEGRADE, FaultKind.LINK_LOSS}
)
#: kinds that change the topology and therefore force a route recompute
TOPOLOGY_KINDS = frozenset(
    {FaultKind.LINK_DOWN, FaultKind.LINK_UP, FaultKind.SWITCH_DOWN, FaultKind.SWITCH_UP}
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        time: absolute simulation time the event applies at.
        kind: what happens.
        target: ``(a, b)`` node names for link kinds, ``(name,)`` otherwise.
        severity: kind-specific magnitude -- the surviving rate fraction for
            ``LINK_DEGRADE`` / ``HOST_SLOWDOWN`` (1.0 restores nominal rate),
            the loss probability for ``LINK_LOSS`` (0.0 clears it); unused
            (1.0) for the binary kinds.
    """

    time: float
    kind: FaultKind
    target: tuple[str, ...]
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time cannot be negative, got {self.time}")
        expected = 2 if self.kind in LINK_KINDS else 1
        if len(self.target) != expected:
            raise ValueError(
                f"{self.kind.value} targets {expected} node(s), got {self.target!r}"
            )
        if self.kind in (FaultKind.LINK_DEGRADE, FaultKind.HOST_SLOWDOWN):
            if not 0.0 < self.severity <= 1.0:
                raise ValueError(
                    f"{self.kind.value} severity must be a rate fraction in (0, 1], "
                    f"got {self.severity}"
                )
        elif self.kind is FaultKind.LINK_LOSS:
            if not 0.0 <= self.severity <= 1.0:
                raise ValueError(
                    f"link_loss severity must be a probability in [0, 1], got {self.severity}"
                )


# Constructors ----------------------------------------------------------------------


def link_down(time: float, name_a: str, name_b: str) -> FaultEvent:
    """Fail the full-duplex link between two nodes (in-flight packets are dropped)."""
    return FaultEvent(time, FaultKind.LINK_DOWN, (name_a, name_b))


def link_up(time: float, name_a: str, name_b: str) -> FaultEvent:
    """Restore a previously failed link."""
    return FaultEvent(time, FaultKind.LINK_UP, (name_a, name_b))


def link_degrade(time: float, name_a: str, name_b: str, rate_fraction: float) -> FaultEvent:
    """Degrade a link to ``rate_fraction`` of its nominal rate (1.0 restores)."""
    return FaultEvent(time, FaultKind.LINK_DEGRADE, (name_a, name_b), rate_fraction)


def link_loss(time: float, name_a: str, name_b: str, probability: float) -> FaultEvent:
    """Give a link an elevated random loss probability (0.0 clears it)."""
    return FaultEvent(time, FaultKind.LINK_LOSS, (name_a, name_b), probability)


def switch_down(time: float, switch_name: str) -> FaultEvent:
    """Fail a whole switch (it black-holes traffic until restored)."""
    return FaultEvent(time, FaultKind.SWITCH_DOWN, (switch_name,))


def switch_up(time: float, switch_name: str) -> FaultEvent:
    """Restore a previously failed switch."""
    return FaultEvent(time, FaultKind.SWITCH_UP, (switch_name,))


def host_slowdown(time: float, host_name: str, rate_fraction: float) -> FaultEvent:
    """Slow a host's NIC to ``rate_fraction`` of nominal (1.0 recovers it)."""
    return FaultEvent(time, FaultKind.HOST_SLOWDOWN, (host_name,), rate_fraction)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered sequence of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        # Stable sort: same-time events keep their given order, so a schedule
        # is canonical regardless of how its events were assembled.
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda event: event.time))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_time(self) -> float:
        """Time of the final event (0.0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0.0

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule containing both event sequences (re-sorted by time)."""
        return FaultSchedule(self.events + other.events)

    def counts(self) -> dict[str, int]:
        """Events per kind (keys are :class:`FaultKind` values)."""
        result = {kind.value: 0 for kind in FaultKind}
        for event in self.events:
            result[event.kind.value] += 1
        return result


# Builders --------------------------------------------------------------------------


def fabric_edges(topology: Topology) -> list[tuple[str, str]]:
    """Every switch-to-switch link, as sorted name pairs in deterministic order.

    Host access links are excluded: failing a host's single uplink does not
    test path redundancy, it just unplugs the host.
    """
    roles = topology.roles
    return sorted(
        (a, b) if a < b else (b, a)
        for a, b in topology.graph.edges
        if roles[a] is not NodeRole.HOST and roles[b] is not NodeRole.HOST
    )


def core_switches(topology: Topology) -> list[str]:
    """Top-tier switches (core or spine), in deterministic order."""
    return sorted(
        name
        for name, role in topology.roles.items()
        if role in (NodeRole.CORE, NodeRole.SPINE)
    )


def random_fault_schedule(
    topology: Topology,
    rng: random.Random,
    intensity: float,
    start_time: float = 0.0,
    duration: float = 1.0,
    allow_switch_failure: bool = True,
) -> FaultSchedule:
    """A seeded random schedule whose damage scales with ``intensity``.

    ``intensity`` is a fraction in [0, 1]: 0 produces an empty schedule; 1.0
    transiently fails about a fifth of the fabric links and degrades / makes
    lossy another third, plus one core-switch failure (values above 1 are
    rejected -- they would let the link-down slice swallow the whole edge
    sample and silently collapse the documented fault mix).  All faults are
    transient: every down link
    comes back up, every degraded link recovers and every lossy link is
    cleared within the ``[start_time, start_time + duration]`` window, so a
    run that outlives the window always ends on a healthy fabric.

    Every placement, timing and magnitude is drawn from ``rng``, so two calls
    with equally seeded RNGs produce identical schedules -- the determinism
    the sharded resilience sweep relies on.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be a fraction in [0, 1], got {intensity}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if intensity == 0:
        return FaultSchedule()

    edges = fabric_edges(topology)
    num_down = round(0.2 * intensity * len(edges))
    num_degrade = round(0.15 * intensity * len(edges))
    num_lossy = round(0.15 * intensity * len(edges))
    if num_down + num_degrade + num_lossy == 0:
        num_down = 1  # a nonzero intensity always injects something
    chosen = rng.sample(edges, min(len(edges), num_down + num_degrade + num_lossy))

    events: list[FaultEvent] = []

    def window() -> tuple[float, float]:
        begin = start_time + rng.uniform(0.05, 0.35) * duration
        end = begin + rng.uniform(0.25, 0.5) * duration
        return begin, end

    for name_a, name_b in chosen[:num_down]:
        begin, end = window()
        events.append(link_down(begin, name_a, name_b))
        events.append(link_up(end, name_a, name_b))
    for name_a, name_b in chosen[num_down : num_down + num_degrade]:
        begin, end = window()
        fraction = rng.uniform(0.2, 0.5)
        events.append(link_degrade(begin, name_a, name_b, fraction))
        events.append(link_degrade(end, name_a, name_b, 1.0))
    for name_a, name_b in chosen[num_down + num_degrade :]:
        begin, end = window()
        probability = min(0.5, intensity * rng.uniform(0.05, 0.25))
        events.append(link_loss(begin, name_a, name_b, probability))
        events.append(link_loss(end, name_a, name_b, 0.0))

    cores = core_switches(topology)
    if allow_switch_failure and intensity >= 0.5 and len(cores) >= 2:
        victim = rng.choice(cores)
        begin, end = window()
        events.append(switch_down(begin, victim))
        events.append(switch_up(end, victim))

    return FaultSchedule(tuple(events))


def straggler_schedule(
    hosts: Sequence[str],
    rng: random.Random,
    count: int = 1,
    rate_fraction: float = 0.25,
    time: float = 0.0,
    recover_after: Optional[float] = None,
) -> FaultSchedule:
    """Slow ``count`` randomly chosen hosts -- the declarative straggler scenario.

    This unifies the ad-hoc "slow receiver" setups with the fault subsystem:
    injection happens here (a seeded NIC slowdown), detection and detachment
    stay in :class:`repro.core.straggler.StragglerPolicy`.  With
    ``recover_after`` set, each straggler returns to full rate after that
    many seconds.
    """
    if count < 1:
        raise ValueError(f"count must be at least 1, got {count}")
    if count > len(hosts):
        raise ValueError(f"cannot pick {count} stragglers from {len(hosts)} hosts")
    events: list[FaultEvent] = []
    for host in rng.sample(list(hosts), count):
        events.append(host_slowdown(time, host, rate_fraction))
        if recover_after is not None:
            events.append(host_slowdown(time + recover_after, host, 1.0))
    return FaultSchedule(tuple(events))
