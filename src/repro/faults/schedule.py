"""Declarative, seeded fault schedules.

A :class:`FaultSchedule` is a value object: an immutable, time-sorted tuple
of :class:`FaultEvent` records describing *what* goes wrong in the fabric and
*when* -- links failing and recovering, links degrading to a fraction of
their rate, elevated random loss, whole-switch failures, and host-NIC
slowdowns (the declarative form of the straggler scenario whose detection
side lives in :mod:`repro.core.straggler`).

Schedules are plain frozen dataclasses, so they pickle and hash: the
parallel executor ships them to worker processes inside
:class:`~repro.experiments.parallel.RunJob` and the run is byte-identical
for any ``--jobs N``.  Execution is the job of
:class:`repro.faults.injector.FaultInjector`.

The constructor *validates* rather than repairs: events must already be in
non-decreasing time order (assemble out-of-order event soups through
:meth:`FaultSchedule.ordered`, which sorts stably and keeps same-time
batches intact).  Mis-ordered or negative-time events are rejected with a
``ValueError`` at construction, where the mistake is visible, instead of
surfacing as out-of-order injection later.

Generators, all drawing every placement / timing / magnitude from a
caller-supplied seeded RNG so equally seeded calls build identical
schedules:

* :func:`random_fault_schedule` -- *independent* faults whose event count
  scales with a single ``intensity`` knob (the resilience experiment);
* :func:`shared_risk_group_schedule` -- a shared-risk link group (SRLG): a
  named set of links that shares a conduit / linecard fails and recovers as
  one same-instant batch;
* :func:`rack_power_schedule` -- a rack loses power: the ToR switch and all
  of its host access links die and recover as a unit;
* :func:`gray_failure_schedule` -- gray failures: low-probability Bernoulli
  loss (optionally plus a mild rate degrade) smeared across many links,
  with *no* topology change, so routing keeps using the sick paths;
* :func:`straggler_schedule` -- seeded host-NIC slowdowns.

Every event carries an optional ``cause`` tag naming the builder that
produced it; the injector counts events per cause so experiment reports can
attribute damage to failure *models*, not just event kinds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional, Sequence

from repro.network.topology import NodeRole, Topology


class FaultKind(str, Enum):
    """What a fault event does to its target."""

    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    LINK_DEGRADE = "link_degrade"
    LINK_LOSS = "link_loss"
    SWITCH_DOWN = "switch_down"
    SWITCH_UP = "switch_up"
    HOST_SLOWDOWN = "host_slowdown"


#: kinds that address a full-duplex link (two node names)
LINK_KINDS = frozenset(
    {FaultKind.LINK_DOWN, FaultKind.LINK_UP, FaultKind.LINK_DEGRADE, FaultKind.LINK_LOSS}
)
#: kinds that change the topology and therefore force a route recompute
TOPOLOGY_KINDS = frozenset(
    {FaultKind.LINK_DOWN, FaultKind.LINK_UP, FaultKind.SWITCH_DOWN, FaultKind.SWITCH_UP}
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes:
        time: absolute simulation time the event applies at.
        kind: what happens.
        target: ``(a, b)`` node names for link kinds, ``(name,)`` otherwise.
        severity: kind-specific magnitude -- the surviving rate fraction for
            ``LINK_DEGRADE`` / ``HOST_SLOWDOWN`` (1.0 restores nominal rate),
            the loss probability for ``LINK_LOSS`` (0.0 clears it); unused
            (1.0) for the binary kinds.
        cause: optional name of the failure model (builder) that produced
            the event (``"srlg"``, ``"rack_power"``, ``"gray"``, ...); the
            injector aggregates per-cause counters from it.  Empty for
            hand-written events.
    """

    time: float
    kind: FaultKind
    target: tuple[str, ...]
    severity: float = 1.0
    cause: str = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time cannot be negative, got {self.time}")
        expected = 2 if self.kind in LINK_KINDS else 1
        if len(self.target) != expected:
            raise ValueError(
                f"{self.kind.value} targets {expected} node(s), got {self.target!r}"
            )
        if self.kind in (FaultKind.LINK_DEGRADE, FaultKind.HOST_SLOWDOWN):
            if not 0.0 < self.severity <= 1.0:
                raise ValueError(
                    f"{self.kind.value} severity must be a rate fraction in (0, 1], "
                    f"got {self.severity}"
                )
        elif self.kind is FaultKind.LINK_LOSS:
            if not 0.0 <= self.severity <= 1.0:
                raise ValueError(
                    f"link_loss severity must be a probability in [0, 1], got {self.severity}"
                )


# Constructors ----------------------------------------------------------------------


def link_down(time: float, name_a: str, name_b: str, cause: str = "") -> FaultEvent:
    """Fail the full-duplex link between two nodes (in-flight packets are dropped)."""
    return FaultEvent(time, FaultKind.LINK_DOWN, (name_a, name_b), cause=cause)


def link_up(time: float, name_a: str, name_b: str, cause: str = "") -> FaultEvent:
    """Restore a previously failed link."""
    return FaultEvent(time, FaultKind.LINK_UP, (name_a, name_b), cause=cause)


def link_degrade(
    time: float, name_a: str, name_b: str, rate_fraction: float, cause: str = ""
) -> FaultEvent:
    """Degrade a link to ``rate_fraction`` of its nominal rate (1.0 restores)."""
    return FaultEvent(time, FaultKind.LINK_DEGRADE, (name_a, name_b), rate_fraction, cause)


def link_loss(
    time: float, name_a: str, name_b: str, probability: float, cause: str = ""
) -> FaultEvent:
    """Give a link an elevated random loss probability (0.0 clears it)."""
    return FaultEvent(time, FaultKind.LINK_LOSS, (name_a, name_b), probability, cause)


def switch_down(time: float, switch_name: str, cause: str = "") -> FaultEvent:
    """Fail a whole switch (it black-holes traffic until restored)."""
    return FaultEvent(time, FaultKind.SWITCH_DOWN, (switch_name,), cause=cause)


def switch_up(time: float, switch_name: str, cause: str = "") -> FaultEvent:
    """Restore a previously failed switch."""
    return FaultEvent(time, FaultKind.SWITCH_UP, (switch_name,), cause=cause)


def host_slowdown(
    time: float, host_name: str, rate_fraction: float, cause: str = ""
) -> FaultEvent:
    """Slow a host's NIC to ``rate_fraction`` of nominal (1.0 recovers it)."""
    return FaultEvent(time, FaultKind.HOST_SLOWDOWN, (host_name,), rate_fraction, cause)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered sequence of fault events.

    The constructor **validates** the ordering rather than silently fixing
    it: events must already be in non-decreasing time order and every time
    must be non-negative, otherwise a ``ValueError`` pinpoints the offending
    event.  (An out-of-order schedule used to be re-sorted here; that hid
    assembly bugs -- a recovery accidentally scheduled before its fault
    simply swapped places -- and the injector then misbehaved at injection
    time.)  Use :meth:`ordered` to canonicalise event soups assembled out of
    order; same-time events keep their given order, which is what keeps
    compound (same-instant) fault batches intact.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        object.__setattr__(self, "events", events)
        previous = 0.0
        for index, event in enumerate(events):
            if not isinstance(event, FaultEvent):
                raise ValueError(
                    f"schedule entry {index} is not a FaultEvent: {event!r}"
                )
            # FaultEvent validates its own time, but events restored from
            # tampered pickles (or built via __new__) bypass __post_init__,
            # so the schedule re-checks the invariant it depends on.
            if event.time < 0:
                raise ValueError(
                    f"schedule entry {index} has a negative time ({event.time})"
                )
            if event.time < previous:
                raise ValueError(
                    f"schedule events must be in non-decreasing time order: entry "
                    f"{index} ({event.kind.value} at t={event.time}) comes after "
                    f"t={previous}; use FaultSchedule.ordered(...) to sort"
                )
            previous = event.time

    @classmethod
    def ordered(cls, events: Sequence[FaultEvent]) -> "FaultSchedule":
        """Build a schedule from events in any order (stable time sort).

        Same-time events keep their given relative order, so a schedule is
        canonical regardless of how its events were assembled and compound
        same-instant batches stay batched.
        """
        return cls(tuple(sorted(events, key=lambda event: event.time)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def last_time(self) -> float:
        """Time of the final event (0.0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0.0

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """A new schedule containing both event sequences (re-sorted by time)."""
        return FaultSchedule.ordered(self.events + other.events)

    def counts(self) -> dict[str, int]:
        """Events per kind (keys are :class:`FaultKind` values)."""
        result = {kind.value: 0 for kind in FaultKind}
        for event in self.events:
            result[event.kind.value] += 1
        return result


# Builders --------------------------------------------------------------------------


def _check_window(start_time: float, duration: float) -> None:
    """Validate a fault window up front (clear errors beat empty schedules)."""
    if start_time < 0:
        raise ValueError(f"start_time cannot be negative, got {start_time}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")


def fabric_edges(topology: Topology) -> list[tuple[str, str]]:
    """Every switch-to-switch link, as sorted name pairs in deterministic order.

    Host access links are excluded: failing a host's single uplink does not
    test path redundancy, it just unplugs the host.
    """
    roles = topology.roles
    return sorted(
        (a, b) if a < b else (b, a)
        for a, b in topology.graph.edges
        if roles[a] is not NodeRole.HOST and roles[b] is not NodeRole.HOST
    )


def core_switches(topology: Topology) -> list[str]:
    """Top-tier switches (core or spine), in deterministic order."""
    return sorted(
        name
        for name, role in topology.roles.items()
        if role in (NodeRole.CORE, NodeRole.SPINE)
    )


def random_fault_schedule(
    topology: Topology,
    rng: random.Random,
    intensity: float,
    start_time: float = 0.0,
    duration: float = 1.0,
    allow_switch_failure: bool = True,
) -> FaultSchedule:
    """A seeded random schedule whose damage scales with ``intensity``.

    ``intensity`` is a fraction in [0, 1]: 0 produces an empty schedule; 1.0
    transiently fails about a fifth of the fabric links and degrades / makes
    lossy another third, plus one core-switch failure (values above 1 are
    rejected -- they would let the link-down slice swallow the whole edge
    sample and silently collapse the documented fault mix).  All faults are
    transient: every down link
    comes back up, every degraded link recovers and every lossy link is
    cleared within the ``[start_time, start_time + duration]`` window, so a
    run that outlives the window always ends on a healthy fabric.

    Every placement, timing and magnitude is drawn from ``rng``, so two calls
    with equally seeded RNGs produce identical schedules -- the determinism
    the sharded resilience sweep relies on.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be a fraction in [0, 1], got {intensity}")
    _check_window(start_time, duration)
    if intensity == 0:
        return FaultSchedule()

    edges = fabric_edges(topology)
    num_down = round(0.2 * intensity * len(edges))
    num_degrade = round(0.15 * intensity * len(edges))
    num_lossy = round(0.15 * intensity * len(edges))
    if num_down + num_degrade + num_lossy == 0:
        num_down = 1  # a nonzero intensity always injects something
    chosen = rng.sample(edges, min(len(edges), num_down + num_degrade + num_lossy))

    events: list[FaultEvent] = []

    def window() -> tuple[float, float]:
        begin = start_time + rng.uniform(0.05, 0.35) * duration
        end = begin + rng.uniform(0.25, 0.5) * duration
        return begin, end

    for name_a, name_b in chosen[:num_down]:
        begin, end = window()
        events.append(link_down(begin, name_a, name_b, cause="random"))
        events.append(link_up(end, name_a, name_b, cause="random"))
    for name_a, name_b in chosen[num_down : num_down + num_degrade]:
        begin, end = window()
        fraction = rng.uniform(0.2, 0.5)
        events.append(link_degrade(begin, name_a, name_b, fraction, cause="random"))
        events.append(link_degrade(end, name_a, name_b, 1.0, cause="random"))
    for name_a, name_b in chosen[num_down + num_degrade :]:
        begin, end = window()
        probability = min(0.5, intensity * rng.uniform(0.05, 0.25))
        events.append(link_loss(begin, name_a, name_b, probability, cause="random"))
        events.append(link_loss(end, name_a, name_b, 0.0, cause="random"))

    cores = core_switches(topology)
    if allow_switch_failure and intensity >= 0.5 and len(cores) >= 2:
        victim = rng.choice(cores)
        begin, end = window()
        events.append(switch_down(begin, victim, cause="random"))
        events.append(switch_up(end, victim, cause="random"))

    return FaultSchedule.ordered(events)


def straggler_schedule(
    hosts: Sequence[str],
    rng: random.Random,
    count: int = 1,
    rate_fraction: float = 0.25,
    time: float = 0.0,
    recover_after: Optional[float] = None,
) -> FaultSchedule:
    """Slow ``count`` randomly chosen hosts -- the declarative straggler scenario.

    This unifies the ad-hoc "slow receiver" setups with the fault subsystem:
    injection happens here (a seeded NIC slowdown), detection and detachment
    stay in :class:`repro.core.straggler.StragglerPolicy`.  With
    ``recover_after`` set, each straggler returns to full rate after that
    many seconds.
    """
    if count < 1:
        raise ValueError(f"count must be at least 1, got {count}")
    if count > len(hosts):
        raise ValueError(f"cannot pick {count} stragglers from {len(hosts)} hosts")
    if recover_after is not None and recover_after <= 0:
        raise ValueError(f"recover_after must be positive, got {recover_after}")
    events: list[FaultEvent] = []
    for host in rng.sample(list(hosts), count):
        events.append(host_slowdown(time, host, rate_fraction, cause="straggler"))
        if recover_after is not None:
            events.append(host_slowdown(time + recover_after, host, 1.0, cause="straggler"))
    return FaultSchedule.ordered(events)


# Correlated failure models ----------------------------------------------------------
#
# Real data-centre failures are rarely independent: links share conduits,
# linecards and power feeds, so one physical event takes out a *set* of
# links; and a large fraction of production incidents are "gray" -- nothing
# goes down, but many links quietly lose or slow a little, which routing
# never reacts to.  These builders express both families declaratively; the
# injector needs no changes because compound failures are just same-instant
# event batches (one routing recompute per batch) and gray failures reuse
# the per-port loss/degrade hooks.


def _fault_interval(
    rng: random.Random, start_time: float, duration: float
) -> tuple[float, float]:
    """One onset/recovery pair inside the window (same shape as random faults)."""
    begin = start_time + rng.uniform(0.05, 0.35) * duration
    end = begin + rng.uniform(0.25, 0.5) * duration
    return begin, end


def shared_risk_group_schedule(
    topology: Topology,
    rng: random.Random,
    group_size: int,
    num_groups: int = 1,
    start_time: float = 0.0,
    duration: float = 1.0,
) -> FaultSchedule:
    """Fail shared-risk link groups (SRLGs): sets of links that die together.

    Each group models one physical event -- a cut conduit, a dead linecard
    -- taking down ``group_size`` fabric links that share an *anchor* switch
    (they plausibly ride the same hardware).  All links of a group fail at
    the same instant and recover at the same later instant, so the injector
    applies each transition as one compound batch and pays one routing
    recompute for it.  Groups are disjoint: a link belongs to at most one
    group.  Every placement and timing comes from ``rng``.

    Raises ``ValueError`` up front when the arguments cannot yield the
    requested groups (size/count not positive, window invalid, or the
    fabric cannot supply ``num_groups`` disjoint groups of that size).
    """
    if group_size < 1:
        raise ValueError(f"group_size must be at least 1, got {group_size}")
    if num_groups < 1:
        raise ValueError(f"num_groups must be at least 1, got {num_groups}")
    _check_window(start_time, duration)

    incident: dict[str, list[tuple[str, str]]] = {}
    for edge in fabric_edges(topology):
        for endpoint in edge:
            incident.setdefault(endpoint, []).append(edge)
    largest = max((len(edges) for edges in incident.values()), default=0)
    if group_size > largest:
        raise ValueError(
            f"group_size {group_size} exceeds the largest shared-risk set this "
            f"fabric can supply ({largest} links share one switch)"
        )

    used: set[tuple[str, str]] = set()
    events: list[FaultEvent] = []
    for _ in range(num_groups):
        eligible = sorted(
            anchor
            for anchor, edges in incident.items()
            if sum(1 for edge in edges if edge not in used) >= group_size
        )
        if not eligible:
            raise ValueError(
                f"fabric cannot supply {num_groups} disjoint shared-risk groups "
                f"of {group_size} links"
            )
        anchor = rng.choice(eligible)
        free = [edge for edge in incident[anchor] if edge not in used]
        group = rng.sample(free, group_size)
        used.update(group)
        begin, end = _fault_interval(rng, start_time, duration)
        for name_a, name_b in group:
            events.append(link_down(begin, name_a, name_b, cause="srlg"))
        for name_a, name_b in group:
            events.append(link_up(end, name_a, name_b, cause="srlg"))
    return FaultSchedule.ordered(events)


def rack_power_schedule(
    topology: Topology,
    rng: random.Random,
    num_racks: int = 1,
    start_time: float = 0.0,
    duration: float = 1.0,
) -> FaultSchedule:
    """Fail whole racks: a ToR switch plus all its host links, as one unit.

    A rack losing power takes down its top-of-rack switch *and* every host
    behind it in the same instant -- the strongest correlated failure a
    fabric sees in practice.  Each sampled rack contributes one compound
    down batch (``switch_down`` + a ``link_down`` per host access link) and
    one compound recovery batch, so routing recomputes once per transition.
    Hosts in a dead rack are unreachable until recovery; transfers touching
    them stall and must ride the recovery, which is exactly the behaviour
    the correlated experiment measures.
    """
    if num_racks < 1:
        raise ValueError(f"num_racks must be at least 1, got {num_racks}")
    _check_window(start_time, duration)
    roles = topology.roles
    racks = sorted(
        name
        for name, role in roles.items()
        if role in (NodeRole.EDGE, NodeRole.LEAF)
        and any(roles[n] is NodeRole.HOST for n in topology.graph.neighbors(name))
    )
    if num_racks > len(racks):
        raise ValueError(
            f"cannot fail {num_racks} racks: topology has only {len(racks)} "
            f"host-bearing ToR switches"
        )
    events: list[FaultEvent] = []
    for tor in rng.sample(racks, num_racks):
        hosts = sorted(
            n for n in topology.graph.neighbors(tor) if roles[n] is NodeRole.HOST
        )
        begin, end = _fault_interval(rng, start_time, duration)
        events.append(switch_down(begin, tor, cause="rack_power"))
        for host in hosts:
            events.append(link_down(begin, tor, host, cause="rack_power"))
        events.append(switch_up(end, tor, cause="rack_power"))
        for host in hosts:
            events.append(link_up(end, tor, host, cause="rack_power"))
    return FaultSchedule.ordered(events)


def gray_failure_schedule(
    topology: Topology,
    rng: random.Random,
    loss_probability: float,
    affected_fraction: float = 0.5,
    degrade_to: Optional[float] = None,
    start_time: float = 0.0,
    duration: float = 1.0,
) -> FaultSchedule:
    """Smear low-probability loss (and optional mild degrade) over many links.

    Gray failures are the failures detection misses: no link goes *down*, so
    no routing recompute ever fires, but a large share of the fabric quietly
    drops a small fraction of packets (and, with ``degrade_to``, serialises
    slightly slower).  ``affected_fraction`` of the fabric links each get a
    seeded Bernoulli ``loss_probability``; onsets and clears are smeared
    independently per link across the window, the way gray failures creep in
    rather than strike.

    ``loss_probability`` must be a probability in (0, 1] and ``degrade_to``
    (when given) a rate fraction in (0, 1) -- zero-loss or no-op-degrade
    arguments are rejected up front rather than silently emitting a schedule
    that does nothing.
    """
    if not 0.0 < loss_probability <= 1.0:
        raise ValueError(
            f"loss_probability must be a probability in (0, 1], got {loss_probability}"
        )
    if not 0.0 < affected_fraction <= 1.0:
        raise ValueError(
            f"affected_fraction must be a fraction in (0, 1], got {affected_fraction}"
        )
    if degrade_to is not None and not 0.0 < degrade_to < 1.0:
        raise ValueError(
            f"degrade_to must be a rate fraction in (0, 1), got {degrade_to}"
        )
    _check_window(start_time, duration)

    edges = fabric_edges(topology)
    affected = rng.sample(edges, max(1, round(affected_fraction * len(edges))))
    events: list[FaultEvent] = []
    for name_a, name_b in affected:
        begin = start_time + rng.uniform(0.05, 0.30) * duration
        end = start_time + rng.uniform(0.70, 0.95) * duration
        events.append(link_loss(begin, name_a, name_b, loss_probability, cause="gray"))
        events.append(link_loss(end, name_a, name_b, 0.0, cause="gray"))
        if degrade_to is not None:
            events.append(link_degrade(begin, name_a, name_b, degrade_to, cause="gray"))
            events.append(link_degrade(end, name_a, name_b, 1.0, cause="gray"))
    return FaultSchedule.ordered(events)
