"""The fault injector: a simulation process that executes a fault schedule.

One :class:`FaultInjector` per run.  At :meth:`start` it schedules every
event of its :class:`~repro.faults.schedule.FaultSchedule` on the run's
simulator; when an event fires it applies the corresponding dynamic hook on
the :class:`~repro.network.network.Network` and, for topology-changing kinds
(link down/up, switch down/up), triggers one routing recompute -- ECMP next
hops and multicast trees are rebuilt on the surviving topology and the
number of changed table entries is accumulated in ``reroutes``.

The injector also owns the run's fault accounting: per-kind event counters,
per-*cause* counters (which failure model -- ``srlg``, ``rack_power``,
``gray``, ... -- produced each applied event), routing-convergence counters
(recomputes requested vs. route tables actually installed, which differ
when the network models control-plane lag), plus the fabric-wide
packet-drop counters (packets dropped on dead links, by injected random
loss, and by failed switches), exported as a plain dict by
:meth:`stats_dict` so results pickle across worker processes unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.schedule import TOPOLOGY_KINDS, FaultEvent, FaultKind, FaultSchedule
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.network.network import Network


class FaultInjector:
    """Executes a :class:`FaultSchedule` against a live :class:`Network`."""

    def __init__(self, sim: Simulator, network: "Network", schedule: FaultSchedule) -> None:
        self.sim = sim
        self.network = network
        self.schedule = schedule
        self._started = False
        self.events_applied = 0
        self.links_failed = 0
        self.links_restored = 0
        self.links_degraded = 0
        self.links_lossy = 0
        self.switches_failed = 0
        self.switches_restored = 0
        self.hosts_slowed = 0
        #: applied events per schedule-builder cause tag (empty tags skipped)
        self.cause_counts: dict[str, int] = {}
        #: total next-hop table entries changed across every installed recompute
        self.reroutes = 0
        #: topology-changing batches that requested a routing recompute
        self.recomputes_requested = 0
        #: recomputed tables actually installed (== requested when the
        #: network converges instantaneously; fewer when control-plane lag
        #: outlives the run or a newer recompute supersedes a pending one)
        self.route_installs = 0

    def start(self) -> None:
        """Schedule the fault events (idempotence guarded).

        Same-time events are batched into one callback so a compound fault
        (e.g. a switch plus three links dying together) pays for a single
        routing recompute, and ``reroutes`` never counts transient
        mid-batch table states.
        """
        if self._started:
            raise RuntimeError("FaultInjector.start() may only be called once")
        self._started = True
        batches: dict[float, list[FaultEvent]] = {}
        for event in self.schedule:
            batches.setdefault(event.time, []).append(event)
        for time, events in batches.items():
            self.sim.schedule_at(time, self._apply_batch, tuple(events))

    def _apply_batch(self, events: tuple[FaultEvent, ...]) -> None:
        recompute = False
        for event in events:
            self._apply(event)
            recompute = recompute or event.kind in TOPOLOGY_KINDS
        if recompute:
            self.recomputes_requested += 1
            # With convergence delay the table install happens later (or
            # never, if the run ends first); the callback books the changed
            # entries whenever the control plane actually converges.
            self.network.recompute_routes(on_installed=self._note_install)

    def _note_install(self, changed_entries: int) -> None:
        self.reroutes += changed_entries
        self.route_installs += 1

    def _apply(self, event: FaultEvent) -> None:
        network = self.network
        kind = event.kind
        if kind is FaultKind.LINK_DOWN:
            network.set_link_state(*event.target, up=False)
            self.links_failed += 1
        elif kind is FaultKind.LINK_UP:
            network.set_link_state(*event.target, up=True)
            self.links_restored += 1
        elif kind is FaultKind.LINK_DEGRADE:
            network.degrade_link(*event.target, rate_fraction=event.severity)
            if event.severity < 1.0:
                self.links_degraded += 1
        elif kind is FaultKind.LINK_LOSS:
            network.set_link_loss(*event.target, probability=event.severity)
            if event.severity > 0.0:
                self.links_lossy += 1
        elif kind is FaultKind.SWITCH_DOWN:
            network.set_switch_failed(event.target[0], failed=True)
            self.switches_failed += 1
        elif kind is FaultKind.SWITCH_UP:
            network.set_switch_failed(event.target[0], failed=False)
            self.switches_restored += 1
        elif kind is FaultKind.HOST_SLOWDOWN:
            network.slow_host(event.target[0], event.severity)
            if event.severity < 1.0:
                self.hosts_slowed += 1
        else:  # pragma: no cover - FaultKind is closed
            raise ValueError(f"unknown fault kind {kind!r}")
        self.events_applied += 1
        if event.cause:
            self.cause_counts[event.cause] = self.cause_counts.get(event.cause, 0) + 1
        network.trace.record(
            self.sim.now, f"fault.{kind.value}", target="/".join(event.target),
            severity=event.severity,
        )

    def stats_dict(self) -> dict:
        """Fault accounting for this run as a picklable, mergeable dict.

        All values are additive counters so shards merge by summation
        (:func:`repro.experiments.report.merge_fault_stats`); per-cause
        counts are flattened to ``cause_<name>`` keys for the same reason.
        """
        stats = {
            "events_scheduled": len(self.schedule),
            "events_applied": self.events_applied,
            "links_failed": self.links_failed,
            "links_restored": self.links_restored,
            "links_degraded": self.links_degraded,
            "links_lossy": self.links_lossy,
            "switches_failed": self.switches_failed,
            "switches_restored": self.switches_restored,
            "hosts_slowed": self.hosts_slowed,
            "reroutes": self.reroutes,
            "recomputes_requested": self.recomputes_requested,
            "route_installs": self.route_installs,
            "packets_dropped_link_down": self.network.total_dropped_link_down,
            "packets_dropped_random_loss": self.network.total_dropped_random_loss,
            "packets_dropped_switch_down": self.network.total_dropped_switch_down,
        }
        for cause in sorted(self.cause_counts):
            stats[f"cause_{cause}"] = self.cause_counts[cause]
        return stats
