"""Polyraptor reproduction library.

This package is a from-scratch Python reproduction of *Polyraptor: Embracing
Path and Data Redundancy in Data Centres for Efficient Data Transport*
(SIGCOMM 2018).  It contains:

* :mod:`repro.sim` -- a deterministic discrete-event simulation engine.
* :mod:`repro.rq` -- a systematic, rateless RaptorQ-style fountain codec.
* :mod:`repro.network` -- a packet-level data-centre network substrate
  (FatTree topologies, trimming switches, multicast trees, packet spraying).
* :mod:`repro.transport` -- baseline transports (NewReno-style TCP).
* :mod:`repro.core` -- the Polyraptor protocol itself (receiver-driven,
  pull-based, unicast / multicast / multi-source sessions).
* :mod:`repro.workloads` -- workload generators used by the paper's
  evaluation (permutation traffic, Poisson arrivals, storage and Incast
  scenarios).
* :mod:`repro.experiments` -- the harness that regenerates every figure of
  the paper's evaluation plus ablations.

Quickstart::

    from repro.experiments import runner
    result = runner.run_unicast_demo()
    print(result.mean_goodput_gbps)
"""

from repro._version import __version__

__all__ = ["__version__"]
