"""TCP segment descriptors carried as packet payloads."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TcpSegment:
    """A TCP segment (data or ACK) as seen by the simulator.

    Sequence numbers are byte offsets into the flow (starting at 0); the
    model does not simulate the three-way handshake or connection teardown
    because the paper's metrics only concern the data transfer itself.
    """

    flow_id: int
    src_host: int
    dst_host: int
    seq: int = 0
    length: int = 0
    ack: bool = False
    ack_seq: int = 0
    retransmission: bool = False
    #: ECN-Echo: set on an ACK when the data packet it acknowledges carried
    #: a CE mark (per-packet echo, DCTCP-style rather than RFC 3168 latching).
    ece: bool = False

    @property
    def end_seq(self) -> int:
        """First byte offset after this segment's data."""
        return self.seq + self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.ack:
            return f"TcpAck(flow={self.flow_id}, ack={self.ack_seq})"
        marker = "R" if self.retransmission else ""
        return f"TcpData{marker}(flow={self.flow_id}, seq={self.seq}, len={self.length})"
