"""The TCP baseline: a NewReno-style unicast transport.

The paper compares Polyraptor against "standard unicast data transport":

* one-to-many replication is emulated by **multi-unicasting** the full object
  over N independent TCP connections (:mod:`repro.transport.tcp.multiunicast`);
* many-to-one fetch is emulated by N senders each transferring a 1/N share of
  the object without coordination;
* the Incast scenario is simply N synchronised short TCP flows to one
  receiver.

The model implements slow start, congestion avoidance, fast
retransmit/recovery (NewReno), retransmission timeouts with exponential
backoff and Karn's algorithm for RTT sampling.  It runs over drop-tail
switches with per-flow ECMP, which is the deployment the paper's baseline
assumes.
"""

from repro.transport.tcp.agent import TcpAgent
from repro.transport.tcp.config import TcpConfig
from repro.transport.tcp.multiunicast import start_multi_source_fetch, start_replicated_push
from repro.transport.tcp.segments import TcpSegment

__all__ = [
    "TcpAgent",
    "TcpConfig",
    "TcpSegment",
    "start_replicated_push",
    "start_multi_source_fetch",
]
