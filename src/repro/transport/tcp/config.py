"""TCP model configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

#: Protocol name used to register the TCP endpoint on hosts.
TCP_PROTOCOL = "tcp"


@dataclass(frozen=True)
class TcpConfig:
    """Parameters of the NewReno-style TCP model.

    The defaults describe the "standard TCP" the paper's baseline represents:
    1500-byte packets, an initial window of 10 segments, a 200 ms minimum
    retransmission timeout (the value whose interaction with synchronised
    short flows produces classic Incast collapse) and drop-tail switches.
    """

    mss_bytes: int = 1436
    header_bytes: int = 64
    initial_cwnd_segments: int = 10
    initial_ssthresh_bytes: int = 1 << 30
    duplicate_ack_threshold: int = 3
    min_rto_s: float = 0.2
    max_rto_s: float = 60.0
    initial_rto_s: float = 0.2
    rtt_alpha: float = 0.125
    rtt_beta: float = 0.25
    ack_bytes: int = 64
    #: react to echoed CE marks (inert unless the fabric actually marks,
    #: i.e. ``NetworkConfig.ecn_enabled`` -- so the default changes nothing).
    ecn_enabled: bool = True

    def __post_init__(self) -> None:
        check_positive("mss_bytes", self.mss_bytes)
        check_positive("header_bytes", self.header_bytes)
        check_positive("initial_cwnd_segments", self.initial_cwnd_segments)
        check_positive("duplicate_ack_threshold", self.duplicate_ack_threshold)
        check_positive("min_rto_s", self.min_rto_s)
        check_positive("max_rto_s", self.max_rto_s)
        check_positive("initial_rto_s", self.initial_rto_s)
        if not 0 < self.rtt_alpha < 1 or not 0 < self.rtt_beta < 1:
            raise ValueError("rtt_alpha and rtt_beta must be in (0, 1)")

    @property
    def packet_bytes(self) -> int:
        """Full size of an MSS-sized data packet on the wire."""
        return self.mss_bytes + self.header_bytes

    @property
    def initial_cwnd_bytes(self) -> int:
        """Initial congestion window in bytes."""
        return self.initial_cwnd_segments * self.mss_bytes
