"""TCP emulations of the paper's one-to-many and many-to-one patterns.

Figure 1a: with TCP, replicating an object to N servers means opening N
independent connections and sending the **full object over each** (the client
has no multicast support).  The replicated push is complete when the slowest
copy completes.

Figure 1b: with TCP, fetching an object that is stored on N replicas without
coordination means each replica returns a 1/N share of the object.  The fetch
is complete when the last share arrives.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.transport.base import TransferRegistry
from repro.transport.tcp.agent import TcpAgent


def _composite(
    sim: Simulator,
    registry: Optional[TransferRegistry],
    transfer_id: int,
    transfer_bytes: int,
    num_parts: int,
    label: str,
    on_complete: Optional[Callable[[float], None]],
) -> Callable[[float], None]:
    """Return a per-part completion callback that fires once all parts finish."""
    if registry is not None:
        registry.record_start(
            transfer_id, transfer_bytes, sim.now, protocol="tcp", label=label
        )
    remaining = {"count": num_parts}

    def _part_done(now: float) -> None:
        remaining["count"] -= 1
        if remaining["count"] == 0:
            if registry is not None:
                registry.record_completion(transfer_id, now)
            if on_complete is not None:
                on_complete(now)

    return _part_done


def start_replicated_push(
    sim: Simulator,
    client_agent: TcpAgent,
    replica_host_ids: list[int],
    object_bytes: int,
    transfer_id: int,
    registry: Optional[TransferRegistry] = None,
    label: str = "tcp-replicate",
    flow_id_base: Optional[int] = None,
    on_complete: Optional[Callable[[float], None]] = None,
) -> list[int]:
    """Multi-unicast ``object_bytes`` from the client to every replica.

    Returns the flow ids of the component connections.  The composite
    transfer is recorded in ``registry`` under ``transfer_id`` and counts the
    *object* bytes (not N x object bytes): the application stored one object,
    however much the network had to carry.
    """
    if not replica_host_ids:
        raise ValueError("at least one replica is required")
    base = flow_id_base if flow_id_base is not None else transfer_id * 1000
    part_done = _composite(
        sim, registry, transfer_id, object_bytes, len(replica_host_ids), label, on_complete
    )
    flow_ids = []
    for index, replica in enumerate(replica_host_ids):
        flow_id = base + index
        client_agent.start_flow(
            flow_id,
            replica,
            object_bytes,
            register=False,
            on_complete=part_done,
        )
        flow_ids.append(flow_id)
    return flow_ids


def start_multi_source_fetch(
    sim: Simulator,
    replica_agents: list[TcpAgent],
    client_host_id: int,
    object_bytes: int,
    transfer_id: int,
    registry: Optional[TransferRegistry] = None,
    label: str = "tcp-fetch",
    flow_id_base: Optional[int] = None,
    on_complete: Optional[Callable[[float], None]] = None,
) -> list[int]:
    """Fetch an object from N replicas, each sending an uncoordinated 1/N share."""
    if not replica_agents:
        raise ValueError("at least one replica is required")
    base = flow_id_base if flow_id_base is not None else transfer_id * 1000
    num = len(replica_agents)
    share = object_bytes // num
    shares = [share] * num
    shares[-1] += object_bytes - share * num  # remainder goes to the last replica
    part_done = _composite(
        sim, registry, transfer_id, object_bytes, num, label, on_complete
    )
    flow_ids = []
    for index, (agent, part_bytes) in enumerate(zip(replica_agents, shares)):
        flow_id = base + index
        agent.start_flow(
            flow_id,
            client_host_id,
            max(1, part_bytes),
            register=False,
            on_complete=part_done,
        )
        flow_ids.append(flow_id)
    return flow_ids
