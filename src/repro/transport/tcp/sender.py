"""TCP sender: NewReno congestion control, fast retransmit/recovery, RTO."""

from __future__ import annotations

from typing import Callable, Optional

from repro.network.host import Host
from repro.network.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.sim.process import Timer
from repro.transport.tcp.config import TCP_PROTOCOL, TcpConfig
from repro.transport.tcp.segments import TcpSegment


class TcpSender:
    """Sender-side state machine for one TCP flow."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        config: TcpConfig,
        flow_id: int,
        dst_host_id: int,
        total_bytes: int,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        if total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        self._sim = sim
        self._host = host
        self.config = config
        self.flow_id = flow_id
        self.dst_host_id = dst_host_id
        self.total_bytes = total_bytes
        self._on_complete = on_complete

        self.snd_una = 0
        self.snd_nxt = 0
        self.cwnd = float(config.initial_cwnd_bytes)
        self.ssthresh = float(config.initial_ssthresh_bytes)
        self.duplicate_acks = 0
        self.in_fast_recovery = False
        self.recovery_point = 0

        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = config.initial_rto_s

        self.completed = False
        self.completion_time: Optional[float] = None
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.segments_sent = 0
        self.ecn_reactions = 0
        #: sequence guard: react to ECE at most once per window of data
        self._cwr_point = 0

        self._send_times: dict[int, float] = {}
        self._retransmit_timer = Timer(sim, self._on_timeout)

    # Public API ----------------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (the connection is assumed established)."""
        self._send_available()

    def on_ack(self, ack_seq: int, ece: bool = False) -> None:
        """Process a cumulative acknowledgement (``ece`` = echoed CE mark)."""
        if self.completed:
            return
        if ece and self.config.ecn_enabled:
            self._on_ecn_echo(ack_seq)
        if ack_seq > self.snd_una:
            self._on_new_ack(ack_seq)
        elif ack_seq == self.snd_una and self.snd_nxt > self.snd_una:
            self._on_duplicate_ack()

    def _on_ecn_echo(self, ack_seq: int) -> None:
        """RFC 3168 reaction: halve cwnd at most once per window of data."""
        if self.in_fast_recovery or ack_seq <= self._cwr_point:
            return
        mss = self.config.mss_bytes
        self.ecn_reactions += 1
        self.ssthresh = max(self.cwnd / 2, 2.0 * mss)
        self.cwnd = self.ssthresh
        self._cwr_point = self.snd_nxt

    @property
    def bytes_in_flight(self) -> int:
        """Unacknowledged bytes currently outstanding."""
        return self.snd_nxt - self.snd_una

    # Sending -------------------------------------------------------------------

    def _send_available(self) -> None:
        mss = self.config.mss_bytes
        while self.snd_nxt < self.total_bytes and self.bytes_in_flight + mss <= self.cwnd:
            length = min(mss, self.total_bytes - self.snd_nxt)
            self._transmit(self.snd_nxt, length, retransmission=False)
            self.snd_nxt += length
        if self.bytes_in_flight > 0 and not self._retransmit_timer.running:
            self._retransmit_timer.start(self.rto)

    def _transmit(self, seq: int, length: int, retransmission: bool) -> None:
        segment = TcpSegment(
            flow_id=self.flow_id,
            src_host=self._host.node_id,
            dst_host=self.dst_host_id,
            seq=seq,
            length=length,
            retransmission=retransmission,
        )
        packet = Packet(
            protocol=TCP_PROTOCOL,
            src=self._host.node_id,
            dst=self.dst_host_id,
            size_bytes=length + self.config.header_bytes,
            kind=PacketKind.DATA,
            flow_id=self.flow_id,
            header_bytes=self.config.header_bytes,
            payload=segment,
        )
        self.segments_sent += 1
        if retransmission:
            self.retransmissions += 1
            # Karn's algorithm: never sample RTT from a retransmitted segment.
            self._send_times.pop(seq, None)
        else:
            self._send_times[seq] = self._sim.now
        self._host.send(packet)

    # ACK processing -------------------------------------------------------------

    def _on_new_ack(self, ack_seq: int) -> None:
        mss = self.config.mss_bytes
        newly_acked = ack_seq - self.snd_una
        self._sample_rtt(ack_seq)
        self.snd_una = ack_seq
        self.duplicate_acks = 0

        if self.in_fast_recovery:
            if ack_seq >= self.recovery_point:
                # Full ACK: leave fast recovery (NewReno).
                self.cwnd = self.ssthresh
                self.in_fast_recovery = False
            else:
                # Partial ACK: retransmit the next missing segment, deflate.
                length = min(mss, self.total_bytes - ack_seq)
                if length > 0:
                    self._transmit(ack_seq, length, retransmission=True)
                self.cwnd = max(self.cwnd - newly_acked + mss, float(mss))
        else:
            if self.cwnd < self.ssthresh:
                self.cwnd += min(newly_acked, mss)
            else:
                self.cwnd += max(1.0, mss * mss / self.cwnd)

        if self.snd_una >= self.total_bytes:
            self._complete()
            return
        self._retransmit_timer.restart(self.rto)
        self._send_available()

    def _on_duplicate_ack(self) -> None:
        mss = self.config.mss_bytes
        self.duplicate_acks += 1
        if self.in_fast_recovery:
            # Inflate the window for every additional duplicate ACK.
            self.cwnd += mss
            self._send_available()
            return
        if self.duplicate_acks == self.config.duplicate_ack_threshold:
            self.fast_retransmits += 1
            self.ssthresh = max(self.bytes_in_flight / 2, 2.0 * mss)
            self.recovery_point = self.snd_nxt
            self.in_fast_recovery = True
            self.cwnd = self.ssthresh + 3 * mss
            length = min(mss, self.total_bytes - self.snd_una)
            if length > 0:
                self._transmit(self.snd_una, length, retransmission=True)
            self._retransmit_timer.restart(self.rto)

    # Timers ------------------------------------------------------------------------

    def _on_timeout(self) -> None:
        if self.completed:
            return
        mss = self.config.mss_bytes
        self.timeouts += 1
        self.ssthresh = max(self.bytes_in_flight / 2, 2.0 * mss)
        self.cwnd = float(mss)
        self.in_fast_recovery = False
        self.duplicate_acks = 0
        self.rto = min(self.rto * 2, self.config.max_rto_s)
        # Go-back-N: rewind and retransmit from the last cumulative ACK.
        self.snd_nxt = self.snd_una
        self._send_times.clear()
        length = min(mss, self.total_bytes - self.snd_nxt)
        if length > 0:
            self._transmit(self.snd_nxt, length, retransmission=True)
            self.snd_nxt += length
        self._retransmit_timer.start(self.rto)

    # RTT estimation ------------------------------------------------------------------

    def _sample_rtt(self, ack_seq: int) -> None:
        sample: Optional[float] = None
        for seq in sorted(self._send_times):
            if seq < ack_seq:
                sample = self._sim.now - self._send_times[seq]
        for seq in [seq for seq in self._send_times if seq < ack_seq]:
            del self._send_times[seq]
        if sample is None:
            return
        if self.srtt is None or self.rttvar is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            beta = self.config.rtt_beta
            alpha = self.config.rtt_alpha
            self.rttvar = (1 - beta) * self.rttvar + beta * abs(self.srtt - sample)
            self.srtt = (1 - alpha) * self.srtt + alpha * sample
        self.rto = min(
            self.config.max_rto_s,
            max(self.config.min_rto_s, self.srtt + 4 * self.rttvar),
        )

    # Completion --------------------------------------------------------------------------

    def _complete(self) -> None:
        self.completed = True
        self.completion_time = self._sim.now
        self._retransmit_timer.stop()
        if self._on_complete is not None:
            self._on_complete(self._sim.now)
