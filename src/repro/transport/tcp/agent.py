"""Per-host TCP endpoint: demultiplexes segments to senders and receivers."""

from __future__ import annotations

from typing import Callable, Optional

from repro.network.host import Host
from repro.network.packet import Packet
from repro.sim.engine import Simulator
from repro.transport.base import TransferRegistry
from repro.transport.tcp.config import TCP_PROTOCOL, TcpConfig
from repro.transport.tcp.receiver import TcpReceiver
from repro.transport.tcp.segments import TcpSegment
from repro.transport.tcp.sender import TcpSender


class TcpAgent:
    """The TCP protocol endpoint installed on a host.

    One agent per host handles every TCP flow that host participates in,
    creating sender state when :meth:`start_flow` is called and receiver state
    lazily when the first data segment of an unknown flow arrives.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        config: Optional[TcpConfig] = None,
        registry: Optional[TransferRegistry] = None,
    ) -> None:
        self._sim = sim
        self.host = host
        self.config = config or TcpConfig()
        self.registry = registry
        self._senders: dict[int, TcpSender] = {}
        self._receivers: dict[int, TcpReceiver] = {}
        host.register_protocol(TCP_PROTOCOL, self)

    # Flow management -------------------------------------------------------------

    def start_flow(
        self,
        flow_id: int,
        dst_host_id: int,
        num_bytes: int,
        label: str = "",
        register: bool = True,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> TcpSender:
        """Start sending ``num_bytes`` to ``dst_host_id`` as flow ``flow_id``."""
        if flow_id in self._senders:
            raise ValueError(f"flow {flow_id} already started on {self.host.name}")
        if register and self.registry is not None:
            self.registry.record_start(
                flow_id, num_bytes, self._sim.now, protocol=TCP_PROTOCOL, label=label
            )

        def _completed(now: float) -> None:
            if register and self.registry is not None:
                self.registry.record_completion(flow_id, now)
            if on_complete is not None:
                on_complete(now)

        sender = TcpSender(
            self._sim,
            self.host,
            self.config,
            flow_id=flow_id,
            dst_host_id=dst_host_id,
            total_bytes=num_bytes,
            on_complete=_completed,
        )
        self._senders[flow_id] = sender
        sender.start()
        return sender

    def sender(self, flow_id: int) -> TcpSender:
        """Return the sender state of a flow started on this host."""
        return self._senders[flow_id]

    def receiver(self, flow_id: int) -> TcpReceiver:
        """Return the receiver state of a flow terminating on this host."""
        return self._receivers[flow_id]

    @property
    def active_senders(self) -> int:
        """Number of flows started on this host that have not completed yet."""
        return sum(1 for sender in self._senders.values() if not sender.completed)

    @property
    def all_senders(self) -> list[TcpSender]:
        """Every flow sender on this host (stats collection)."""
        return list(self._senders.values())

    @property
    def all_receivers(self) -> list[TcpReceiver]:
        """Every flow receiver on this host (stats collection)."""
        return list(self._receivers.values())

    # Packet handling --------------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Dispatch an arriving TCP packet to the right flow state machine."""
        if packet.trimmed:
            # A trimmed data packet carries no payload bytes; standard TCP has
            # no notion of trimming, so the loss is discovered via duplicate
            # ACKs or a timeout exactly as if the packet had been dropped.
            return
        segment = packet.payload
        if not isinstance(segment, TcpSegment):
            raise TypeError(f"unexpected TCP payload: {segment!r}")
        if segment.ack:
            sender = self._senders.get(segment.flow_id)
            if sender is not None:
                sender.on_ack(segment.ack_seq, ece=segment.ece)
            return
        receiver = self._receivers.get(segment.flow_id)
        if receiver is None:
            receiver = TcpReceiver(
                self._sim,
                self.host,
                self.config,
                flow_id=segment.flow_id,
                peer_host_id=segment.src_host,
            )
            self._receivers[segment.flow_id] = receiver
        receiver.on_data(segment, ce=packet.ce)
