"""TCP receiver: cumulative ACK generation and in-order reassembly tracking."""

from __future__ import annotations

from typing import Callable, Optional

from repro.network.host import Host
from repro.network.packet import make_control_packet
from repro.sim.engine import Simulator
from repro.transport.tcp.config import TCP_PROTOCOL, TcpConfig
from repro.transport.tcp.segments import TcpSegment


class TcpReceiver:
    """Receiver-side state for one TCP flow: reassembly plus cumulative ACKs."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        config: TcpConfig,
        flow_id: int,
        peer_host_id: int,
        expected_bytes: Optional[int] = None,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        self._sim = sim
        self._host = host
        self.config = config
        self.flow_id = flow_id
        self.peer_host_id = peer_host_id
        self.expected_bytes = expected_bytes
        self._on_complete = on_complete

        self.cumulative_ack = 0
        self._out_of_order: dict[int, int] = {}
        self.received_segments = 0
        self.duplicate_segments = 0
        self.delivered_bytes = 0
        self.ecn_echoes = 0
        self.completed = False

    def on_data(self, segment: TcpSegment, ce: bool = False) -> None:
        """Process one data segment and emit a cumulative ACK.

        ``ce`` is the CE bit of the packet that carried the segment; it is
        echoed on the generated ACK (per-packet, DCTCP-style) so the sender
        sees congestion marks one RTT after the marking queue set them.
        """
        self.received_segments += 1
        if segment.end_seq <= self.cumulative_ack:
            self.duplicate_segments += 1
        elif segment.seq <= self.cumulative_ack < segment.end_seq:
            self.cumulative_ack = segment.end_seq
            self._drain_out_of_order()
        else:
            self._out_of_order[segment.seq] = segment.end_seq
        self._send_ack(ece=ce)
        self._check_completion()

    def _drain_out_of_order(self) -> None:
        advanced = True
        while advanced:
            advanced = False
            for seq in sorted(self._out_of_order):
                end = self._out_of_order[seq]
                if seq <= self.cumulative_ack:
                    del self._out_of_order[seq]
                    if end > self.cumulative_ack:
                        self.cumulative_ack = end
                    advanced = True
                    break

    def _send_ack(self, ece: bool = False) -> None:
        if ece:
            self.ecn_echoes += 1
        ack = TcpSegment(
            flow_id=self.flow_id,
            src_host=self._host.node_id,
            dst_host=self.peer_host_id,
            ack=True,
            ack_seq=self.cumulative_ack,
            ece=ece,
        )
        packet = make_control_packet(
            protocol=TCP_PROTOCOL,
            src=self._host.node_id,
            dst=self.peer_host_id,
            payload=ack,
            flow_id=self.flow_id,
            size_bytes=self.config.ack_bytes,
            created_at=self._sim.now,
        )
        self._host.send(packet)

    def _check_completion(self) -> None:
        if self.completed or self.expected_bytes is None:
            return
        if self.cumulative_ack >= self.expected_bytes:
            self.completed = True
            self.delivered_bytes = self.cumulative_ack
            if self._on_complete is not None:
                self._on_complete(self._sim.now)
