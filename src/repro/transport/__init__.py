"""Transport protocols that run over the network substrate.

* :mod:`repro.transport.base` -- the transfer registry shared by every
  transport (start/completion times, goodput).
* :mod:`repro.transport.tcp` -- the NewReno-style TCP baseline the paper
  compares against ("standard unicast data transport"), including the
  multi-unicast replication and uncoordinated multi-source fetch emulations
  used in Figures 1a and 1b.
* :mod:`repro.transport.tfrc` -- the TFRC-style equation-based rate
  controller (loss-event-rate estimator + allowed-rate equation) that paces
  the fountain sender and pull pacer when congestion reaction is enabled.

The Polyraptor protocol itself lives in :mod:`repro.core` because it is the
paper's primary contribution.
"""

from repro.transport.base import TransferRecord, TransferRegistry

__all__ = ["TransferRecord", "TransferRegistry"]
