"""TFRC-style equation-based rate control (RFC 5348, simplified).

The controller computes an *allowed sending rate* from two measured inputs:

* a smoothed round-trip time (EWMA over RTT samples), and
* a **loss-event rate** ``p`` estimated with RFC 5348's loss-interval
  method: congestion signals (a lost/trimmed symbol, an ECN mark) that
  arrive within one RTT of the start of the current loss event belong to
  that event; a later signal opens a new *loss interval*.  ``p`` is the
  inverse of the weighted average interval length over the last
  :data:`LOSS_INTERVAL_HISTORY` intervals, newest weighted highest.

The allowed rate is the TCP throughput equation::

    X = s / (R*sqrt(2*b*p/3) + t_RTO * (3*sqrt(3*b*p/8)) * p * (1 + 32*p**2))

with ``b = 1`` (no delayed acks modelled) and ``t_RTO = 4R``.  While no
loss event has ever been observed the controller allows ``max_rate``
(slow-start is handled by the caller's initial window), so enabling TFRC
on a loss-free path changes nothing.

The same controller paces both sides of the fountain transport: the
receiver's pull pacer (pulls clock symbols, so pacing pulls paces the
sender) and the sender's initial line-rate window.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

#: Number of loss intervals in the weighted average (RFC 5348 section 5.4).
LOSS_INTERVAL_HISTORY = 8

#: RFC 5348 weights, newest interval first.
LOSS_INTERVAL_WEIGHTS = (1.0, 1.0, 1.0, 1.0, 0.8, 0.6, 0.4, 0.2)


def tfrc_rate_bps(
    segment_bytes: int,
    rtt_s: float,
    loss_event_rate: float,
    b: float = 1.0,
    rto_factor: float = 4.0,
) -> float:
    """The TCP throughput equation X(s, R, p) in bits per second.

    Returns ``math.inf`` when ``loss_event_rate`` is 0 (no loss observed:
    the equation is unbounded and the caller clamps to its max rate).
    """
    if segment_bytes <= 0:
        raise ValueError("segment_bytes must be positive")
    if rtt_s <= 0:
        raise ValueError("rtt_s must be positive")
    if not (0.0 <= loss_event_rate <= 1.0):
        raise ValueError("loss_event_rate must be in [0, 1]")
    p = loss_event_rate
    if p == 0.0:
        return math.inf
    t_rto = rto_factor * rtt_s
    denominator = rtt_s * math.sqrt(2.0 * b * p / 3.0) + t_rto * (
        3.0 * math.sqrt(3.0 * b * p / 8.0)
    ) * p * (1.0 + 32.0 * p * p)
    return segment_bytes * 8.0 / denominator


class LossIntervalEstimator:
    """RFC 5348 loss-event-rate estimator over loss intervals.

    Feed it every received packet (:meth:`on_packet`) and every congestion
    signal (:meth:`on_congestion`, with the current time and RTT); read
    :meth:`loss_event_rate`.
    """

    def __init__(self, history: int = LOSS_INTERVAL_HISTORY) -> None:
        if history <= 0:
            raise ValueError("history must be positive")
        self.history = history
        #: closed loss intervals (packet counts), newest first
        self._intervals: deque[int] = deque(maxlen=history)
        #: packets received since the current loss event started
        self._current_interval = 0
        #: start time of the most recent loss event (None before any loss)
        self._loss_event_start: Optional[float] = None
        self.loss_events = 0
        self.congestion_signals = 0

    def on_packet(self, count: int = 1) -> None:
        """Record ``count`` packets arriving (or being accounted) in order."""
        self._current_interval += count

    def on_congestion(self, now: float, rtt_s: float) -> bool:
        """Record a congestion signal; return True if it opened a new loss event.

        Signals within ``rtt_s`` of the current loss event's start belong to
        the same event (RFC 5348: at most one loss event per RTT).
        """
        self.congestion_signals += 1
        if (
            self._loss_event_start is not None
            and now - self._loss_event_start < rtt_s
        ):
            return False
        self.loss_events += 1
        self._loss_event_start = now
        # Close the running interval.  For the very first event this seeds
        # the history with the loss-free run-up (RFC 5348's initial-interval
        # estimate), so one early mark does not crash p to 1.
        self._intervals.appendleft(max(1, self._current_interval))
        self._current_interval = 0
        return True

    def loss_event_rate(self) -> float:
        """The estimated loss-event rate ``p`` (0.0 before any loss event)."""
        if self._loss_event_start is None:
            return 0.0
        mean = self._mean_interval()
        if mean <= 0:
            return 1.0
        return min(1.0, 1.0 / mean)

    def _mean_interval(self) -> float:
        """Weighted average interval, including the still-open one if larger.

        RFC 5348 section 5.4: compute the weighted average both with and
        without the current (open) interval and take the max, so the rate
        recovers as loss-free packets accumulate but never dips because the
        open interval is still short.
        """
        closed = list(self._intervals)
        if not closed and self._current_interval == 0:
            return 1.0
        weights = LOSS_INTERVAL_WEIGHTS[: self.history]

        def weighted(intervals: list[int]) -> float:
            if not intervals:
                return 0.0
            used = intervals[: len(weights)]
            total_weight = sum(weights[: len(used)])
            return sum(i * w for i, w in zip(used, weights)) / total_weight

        with_open = weighted([self._current_interval] + closed)
        without_open = weighted(closed)
        return max(with_open, without_open, 1.0 if not closed else 0.0)


class TfrcController:
    """Equation-based allowed-rate controller for one path/session.

    Args:
        segment_bytes: nominal packet size ``s`` in the equation.
        max_rate_bps: ceiling (typically the line rate); also the allowed
            rate while no loss event has been observed.
        min_rate_bps: floor so a heavily marked path keeps trickling
            (RFC 5348 keeps one packet per 64 s; we keep a configurable
            floor suited to simulation timescales).
        initial_rtt_s: RTT assumed before the first sample.
        rtt_alpha: EWMA weight of the newest RTT sample.
    """

    def __init__(
        self,
        segment_bytes: int,
        max_rate_bps: float,
        min_rate_bps: Optional[float] = None,
        initial_rtt_s: float = 1e-3,
        rtt_alpha: float = 0.25,
    ) -> None:
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        if max_rate_bps <= 0:
            raise ValueError("max_rate_bps must be positive")
        if initial_rtt_s <= 0:
            raise ValueError("initial_rtt_s must be positive")
        if not (0.0 < rtt_alpha <= 1.0):
            raise ValueError("rtt_alpha must be in (0, 1]")
        self.segment_bytes = segment_bytes
        self.max_rate_bps = float(max_rate_bps)
        self.min_rate_bps = (
            float(min_rate_bps)
            if min_rate_bps is not None
            else max(1.0, self.max_rate_bps / 10_000.0)
        )
        if self.min_rate_bps > self.max_rate_bps:
            raise ValueError("min_rate_bps cannot exceed max_rate_bps")
        self.rtt_alpha = rtt_alpha
        self.rtt_s = initial_rtt_s
        self._have_rtt_sample = False
        self.estimator = LossIntervalEstimator()
        self.rate_updates = 0
        self._allowed_rate_bps = self.max_rate_bps

    # Measurement inputs ----------------------------------------------------

    def on_rtt_sample(self, rtt_s: float) -> None:
        """Fold one RTT measurement into the EWMA."""
        if rtt_s <= 0:
            return
        if not self._have_rtt_sample:
            self.rtt_s = rtt_s
            self._have_rtt_sample = True
        else:
            self.rtt_s = (1.0 - self.rtt_alpha) * self.rtt_s + self.rtt_alpha * rtt_s
        self._recompute()

    def on_packet(self, count: int = 1) -> None:
        """Record in-order packet arrivals (grow the open loss interval)."""
        self.estimator.on_packet(count)

    def on_congestion(self, now: float) -> bool:
        """Record a congestion signal (loss, trim, or CE mark) at ``now``."""
        opened = self.estimator.on_congestion(now, self.rtt_s)
        self._recompute()
        return opened

    # Outputs ---------------------------------------------------------------

    def _recompute(self) -> None:
        p = self.estimator.loss_event_rate()
        raw = tfrc_rate_bps(self.segment_bytes, self.rtt_s, p)
        clamped = min(self.max_rate_bps, max(self.min_rate_bps, raw))
        if clamped != self._allowed_rate_bps:
            self.rate_updates += 1
        self._allowed_rate_bps = clamped

    @property
    def allowed_rate_bps(self) -> float:
        """Current allowed sending rate in bits per second."""
        return self._allowed_rate_bps

    @property
    def loss_event_rate(self) -> float:
        """Current loss-event-rate estimate ``p``."""
        return self.estimator.loss_event_rate()

    def send_interval_s(self, packet_bytes: Optional[int] = None) -> float:
        """Seconds between packet sends at the allowed rate."""
        size = self.segment_bytes if packet_bytes is None else packet_bytes
        return size * 8.0 / self._allowed_rate_bps
