"""Transfer bookkeeping shared by all transports.

A :class:`TransferRegistry` records when each transfer (TCP flow, Polyraptor
session) started and completed and how many application bytes it moved.  The
experiment harness reads goodputs from the registry to produce the paper's
rank curves and Incast series; tests use it to assert that every offered
transfer actually finished.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils.units import GBPS


@dataclass
class TransferRecord:
    """One application-level transfer."""

    transfer_id: int
    transfer_bytes: int
    start_time: float
    completion_time: Optional[float] = None
    protocol: str = ""
    label: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def completed(self) -> bool:
        """Whether the transfer has finished."""
        return self.completion_time is not None

    @property
    def flow_completion_time(self) -> float:
        """Duration from start to completion (raises if not completed)."""
        if self.completion_time is None:
            raise ValueError(f"transfer {self.transfer_id} has not completed")
        return self.completion_time - self.start_time

    @property
    def goodput_bps(self) -> float:
        """Application-level goodput in bits per second."""
        duration = self.flow_completion_time
        if duration <= 0:
            raise ValueError(f"transfer {self.transfer_id} has a non-positive duration")
        return self.transfer_bytes * 8 / duration

    @property
    def goodput_gbps(self) -> float:
        """Application-level goodput in Gbit/s (the unit of the paper's figures)."""
        return self.goodput_bps / GBPS


class TransferRegistry:
    """Registry of every transfer offered during an experiment."""

    def __init__(self) -> None:
        self._records: dict[int, TransferRecord] = {}

    def record_start(
        self,
        transfer_id: int,
        transfer_bytes: int,
        start_time: float,
        protocol: str = "",
        label: str = "",
        **metadata,
    ) -> TransferRecord:
        """Register the start of a transfer (id must be unique)."""
        if transfer_id in self._records:
            raise ValueError(f"transfer {transfer_id} already registered")
        record = TransferRecord(
            transfer_id=transfer_id,
            transfer_bytes=transfer_bytes,
            start_time=start_time,
            protocol=protocol,
            label=label,
            metadata=dict(metadata),
        )
        self._records[transfer_id] = record
        return record

    def record_completion(self, transfer_id: int, completion_time: float) -> TransferRecord:
        """Mark a transfer as completed at ``completion_time``."""
        record = self._records[transfer_id]
        if record.completion_time is not None:
            raise ValueError(f"transfer {transfer_id} already completed")
        record.completion_time = completion_time
        return record

    def get(self, transfer_id: int) -> TransferRecord:
        """Return the record for a transfer id."""
        return self._records[transfer_id]

    def __contains__(self, transfer_id: int) -> bool:
        return transfer_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[TransferRecord]:
        """All records, ordered by transfer id."""
        return [self._records[key] for key in sorted(self._records)]

    @property
    def completed_records(self) -> list[TransferRecord]:
        """Only the transfers that finished."""
        return [record for record in self.records if record.completed]

    @property
    def incomplete_records(self) -> list[TransferRecord]:
        """Transfers that were started but did not finish."""
        return [record for record in self.records if not record.completed]

    def goodputs_gbps(self, label: Optional[str] = None) -> list[float]:
        """Goodputs (Gbit/s) of completed transfers, optionally filtered by label."""
        return [
            record.goodput_gbps
            for record in self.completed_records
            if label is None or record.label == label
        ]

    def completion_fraction(self) -> float:
        """Fraction of registered transfers that completed."""
        if not self._records:
            return 0.0
        return len(self.completed_records) / len(self._records)
