"""The flight recorder: bounded, sparse time-series buffers plus export.

A :class:`FlightRecorder` holds one :class:`SeriesBuffer` per metric name.
Two properties keep it cheap enough to leave on for paper-scale runs:

* **Sparse recording.**  A sample is stored only when it *differs* from the
  series' previous value (with an implicit baseline of 0.0), so a port that
  stays idle for a whole run contributes no series at all, and a counter
  that plateaus costs one point per change rather than one per tick.  The
  timelines remain exact under step-interpolation: every change is recorded
  at the tick it was first observed.
* **Bounded memory.**  Each series is a ring buffer of ``max_samples``
  points; older points fall off the front and are tallied in ``dropped``.

Everything the recorder stores is a float or str, so its
:meth:`~FlightRecorder.as_dict` snapshot pickles/JSON-serialises cheaply
across worker process boundaries and merges deterministically.

:func:`write_telemetry_jsonl` / :func:`read_telemetry_jsonl` define the
line-oriented export format (one ``meta`` line, one ``run`` line per
recorded run, one ``series`` line per series); ``repro trace`` renders it.
:func:`write_telemetry_csv` flattens the same data for spreadsheet import.
"""

from __future__ import annotations

import csv
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Optional, Sequence, Union

from repro._version import __version__

#: JSONL schema version; bump on any incompatible format change.
TELEMETRY_SCHEMA = 1


class SeriesBuffer:
    """One metric's bounded (time, value) ring buffer."""

    def __init__(self, name: str, max_samples: int) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be at least 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._times: deque[float] = deque(maxlen=max_samples)
        self._values: deque[float] = deque(maxlen=max_samples)
        #: points evicted from the front of the ring
        self.dropped = 0
        #: points ever appended (== len + dropped)
        self.total = 0

    def append(self, time: float, value: float) -> None:
        """Append one point, evicting (and counting) the oldest when full."""
        if len(self._times) == self.max_samples:
            self.dropped += 1
        self._times.append(time)
        self._values.append(value)
        self.total += 1

    @property
    def last(self) -> Optional[float]:
        """The most recent value, or ``None`` for an empty series."""
        return self._values[-1] if self._values else None

    def __len__(self) -> int:
        return len(self._values)

    def as_dict(self) -> dict:
        """A JSON-safe snapshot: parallel time/value lists plus drop counts."""
        return {
            "t": list(self._times),
            "v": list(self._values),
            "dropped": self.dropped,
            "total": self.total,
        }


class FlightRecorder:
    """A set of named series buffers with sparse, change-only recording."""

    def __init__(self, max_samples: int = 512) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be at least 1, got {max_samples}")
        self.max_samples = max_samples
        self._series: dict[str, SeriesBuffer] = {}

    def record(self, time: float, name: str, value: float) -> None:
        """Record ``value`` for series ``name`` unless it is unchanged.

        The implicit previous value of a never-recorded series is 0.0, so
        all-zero series (idle ports, never-fired counters) are never
        materialised.
        """
        value = float(value)
        series = self._series.get(name)
        if series is None:
            if value == 0.0:
                return
            series = SeriesBuffer(name, self.max_samples)
            self._series[name] = series
        elif series.last == value:
            return
        series.append(time, value)

    def series(self, name: str) -> Optional[SeriesBuffer]:
        """The named series, or ``None`` if nothing was ever recorded for it."""
        return self._series.get(name)

    def __len__(self) -> int:
        return len(self._series)

    @property
    def num_points(self) -> int:
        """Points currently buffered across every series."""
        return sum(len(series) for series in self._series.values())

    def as_dict(self) -> dict:
        """A name-sorted, JSON-safe snapshot of every series."""
        return {
            name: self._series[name].as_dict() for name in sorted(self._series)
        }


@dataclass(frozen=True)
class TelemetryRecord:
    """One run's telemetry as collected by the executor.

    ``label`` is the sweep label (``execute_jobs(label=...)``), ``key`` the
    job's sweep-cell key, and ``data`` the plain dict built by the runner
    (``schema``/``ticks``/``series``/``metrics``).
    """

    label: str
    key: Hashable
    data: dict = field(compare=False)

    def canonical(self) -> dict:
        """A JSON-safe identity+data dict (tuples in ``key`` become lists)."""
        return {"label": self.label, "key": self.key, "data": self.data}


def write_telemetry_jsonl(
    records: Sequence[TelemetryRecord], path: Union[str, Path]
) -> int:
    """Write records as JSONL; returns the number of lines written.

    Line 1 is a ``meta`` header; each record contributes one ``run`` line
    (tick count and end-of-run metric snapshot) followed by one ``series``
    line per recorded series, in sorted series order.
    """
    path = Path(path)
    lines = [
        json.dumps(
            {"kind": "meta", "schema": TELEMETRY_SCHEMA, "version": __version__},
            sort_keys=True,
        )
    ]
    for record in records:
        data = record.data or {}
        lines.append(
            json.dumps(
                {
                    "kind": "run",
                    "label": record.label,
                    "key": record.key,
                    "ticks": data.get("ticks", 0),
                    "metrics": data.get("metrics", {}),
                },
                sort_keys=True,
            )
        )
        for name, series in sorted((data.get("series") or {}).items()):
            lines.append(
                json.dumps(
                    {
                        "kind": "series",
                        "label": record.label,
                        "key": record.key,
                        "name": name,
                        **series,
                    },
                    sort_keys=True,
                )
            )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines)


def read_telemetry_jsonl(path: Union[str, Path]) -> dict:
    """Parse a telemetry JSONL file into ``{"meta", "runs", "series"}`` lists.

    ``runs`` and ``series`` preserve file order; unknown line kinds raise so
    schema drift fails loudly rather than rendering nonsense.
    """
    meta: Optional[dict] = None
    runs: list[dict] = []
    series: list[dict] = []
    for number, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        entry = json.loads(line)
        kind = entry.get("kind")
        if kind == "meta":
            meta = entry
        elif kind == "run":
            runs.append(entry)
        elif kind == "series":
            series.append(entry)
        else:
            raise ValueError(f"{path}:{number}: unknown telemetry line kind {kind!r}")
    if meta is None:
        raise ValueError(f"{path}: missing telemetry meta line")
    if meta.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"{path}: telemetry schema {meta.get('schema')!r} "
            f"(this build reads schema {TELEMETRY_SCHEMA})"
        )
    return {"meta": meta, "runs": runs, "series": series}


def write_telemetry_csv(
    records: Sequence[TelemetryRecord], path: Union[str, Path]
) -> int:
    """Flatten records to ``label,key,series,t,value`` rows; returns row count."""
    path = Path(path)
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", "key", "series", "t", "value"])
        for record in records:
            key = json.dumps(record.key)
            for name, series in sorted(
                ((record.data or {}).get("series") or {}).items()
            ):
                for t, v in zip(series["t"], series["v"]):
                    writer.writerow([record.label, key, name, repr(t), repr(v)])
                    rows += 1
    return rows
