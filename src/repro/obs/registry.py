"""A registry of named metrics: gauges, counters, histograms and rates.

The registry is the common namespace every instrumented subsystem reports
into -- the :class:`~repro.obs.sampler.TelemetrySampler` snapshots it once
per tick, the :class:`~repro.sim.trace.TraceLog` counts events into it when
bound, and the runner folds end-of-run distributions (flow completion
times) into histograms.  Counters reuse :class:`repro.sim.stats.Counter`
so existing call sites need no adaptation.

Everything here is plain-data and deterministic: :meth:`MetricRegistry
.snapshot` returns a name-sorted dict of JSON-safe values, which is what
lets sharded runs merge telemetry byte-identically.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Sequence, Union

from repro.sim.stats import Counter

#: FCT histogram bounds (milliseconds) used by the runner's end-of-run fold.
DEFAULT_FCT_BOUNDS_MS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0)


class Gauge:
    """A named instantaneous value (last write wins)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's current value."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """A fixed-bound histogram with count/sum, reportable as a plain dict.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything beyond the last edge.
    """

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        ordered = tuple(float(bound) for bound in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram bounds must be strictly increasing, got {bounds}")
        self.name = name
        self.bounds = ordered
        self.buckets = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Add one sample to the appropriate bucket."""
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def as_dict(self) -> dict:
        """A JSON-safe snapshot of the distribution."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, count={self.count})"


Metric = Union[Counter, Gauge, Histogram]


class MetricRegistry:
    """A flat namespace of metrics, created on first use and snapshot-able.

    Re-requesting an existing name returns the same object; requesting it as
    a *different* kind raises -- a name means one thing for the whole run.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get(self, name: str, kind: type, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The named counter, created at 0 on first use."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created at 0.0 on first use."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_FCT_BOUNDS_MS
    ) -> Histogram:
        """The named histogram, created with ``bounds`` on first use."""
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def items(self):
        """(name, metric) pairs in sorted-name order."""
        return sorted(self._metrics.items())

    def snapshot(self) -> dict:
        """A name-sorted, JSON-safe dict of every metric's current value."""
        out: dict = {}
        for name, metric in self.items():
            if isinstance(metric, Histogram):
                out[name] = metric.as_dict()
            else:
                out[name] = metric.value
        return out


class WindowedRate:
    """An event rate (events/second) over a sliding wall- or sim-time window.

    Unlike :class:`repro.sim.stats.RateEstimator` (which always divides by
    the full window, under-reporting during the first window of a run), the
    divisor here is the *observed* span, clamped to the window -- so early
    estimates are exact rather than diluted.  Before any event, and at zero
    observed span (the t=0 edge), the rate is 0.0 rather than a division by
    zero.  Used by the executor's ``--progress`` throughput/ETA line and by
    the telemetry sampler's derived rates.
    """

    def __init__(self, window_s: float = 10.0) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = window_s
        self._events: deque[tuple[float, float]] = deque()
        self._origin: Optional[float] = None
        self.total = 0.0

    def reset(self) -> None:
        """Forget every recorded event (a fresh sweep restarts the window)."""
        self._events.clear()
        self._origin = None
        self.total = 0.0

    def record(self, now: float, count: float = 1.0) -> None:
        """Record ``count`` events happening at time ``now``."""
        if self._origin is None:
            self._origin = now
        self._events.append((now, count))
        self.total += count

    def rate(self, now: float) -> float:
        """Events per second over the trailing window ending at ``now``."""
        if self._origin is None:
            return 0.0
        horizon = now - self.window_s
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()
        span = min(self.window_s, now - self._origin)
        if span <= 0.0:
            return 0.0
        return sum(count for _, count in self._events) / span
