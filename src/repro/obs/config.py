"""Telemetry configuration.

A :class:`TelemetryConfig` rides inside
:class:`~repro.experiments.config.ExperimentConfig` (and therefore inside
every :class:`~repro.experiments.parallel.RunJob`), so a sharded sweep's
workers sample exactly what the sequential path would.  The field defaults
to ``None`` -- *no* telemetry object at all -- which is what keeps
feature-off runs byte-identical to the pre-telemetry simulator: no sampler
process is created, no random stream is drawn, and
``RunResult.canonical_dict`` carries no ``telemetry`` key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of the flight recorder attached to one simulation run."""

    #: master switch; a present-but-disabled config behaves exactly like
    #: ``telemetry=None`` (no sampler, no ``telemetry`` key in results).
    enabled: bool = True
    #: sampling cadence in simulation seconds.  10 ms keeps a paper-scale
    #: (k=10) port sweep under a few percent of run wall time; drop it for
    #: finer timelines on small fabrics.
    sample_period_s: float = 1e-2
    #: ring-buffer bound per series; the oldest samples are dropped (and
    #: counted) once a series exceeds this.
    max_samples: int = 512
    #: seeded fraction of one period the first tick is offset by, drawn from
    #: the run's ``"telemetry"`` random stream.  Desynchronises the sampler
    #: from periodic protocol timers; 0 pins the first tick to t=0.
    phase_jitter: float = 1.0

    def __post_init__(self) -> None:
        check_positive("sample_period_s", self.sample_period_s)
        check_positive("max_samples", self.max_samples)
        if not 0.0 <= self.phase_jitter <= 1.0:
            raise ValueError(
                f"phase_jitter must be a fraction in [0, 1], got {self.phase_jitter}"
            )
