"""The telemetry sampler: a seeded-cadence probe sweep inside the simulator.

The sampler is an ordinary simulation process: once per ``sample_period_s``
of *simulation* time it sweeps every attached probe -- switch-port queue
depths, marking EWMAs, link utilisation, TFRC rate/loss state, per-path
loss estimates, TCP cwnd, fault-injector state and the run's
:class:`~repro.obs.registry.MetricRegistry` -- and records the readings
into a :class:`~repro.obs.recorder.FlightRecorder`.

Determinism is structural:

* Every reading is a pure function of simulator state at the tick time, and
  tick times are derived from the run's seeded ``"telemetry"`` random
  stream (first-tick phase offset) plus a fixed period -- so the same
  (config, seed) samples the same values at the same times in any process.
* Probe sweeps iterate in sorted name order, so recorder contents are
  ordered identically everywhere.
* The sampler **observes but never perturbs**: it sends no packets,
  mutates no protocol state, and -- crucially -- refuses to reschedule
  itself when it is the only thing left in the event heap, so it never
  keeps an otherwise-drained simulation alive or changes when a run ends.
  (Telemetry-on runs do process more events -- the ticks themselves -- so
  ``events_processed`` grows, deterministically; transfer outcomes are
  untouched.)
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.obs.config import TelemetryConfig
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricRegistry
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.agent import PolyraptorAgent
    from repro.faults.injector import FaultInjector
    from repro.network.network import Network
    from repro.transport.tcp.agent import TcpAgent


class TelemetrySampler:
    """Periodically snapshot attached probes into a flight recorder."""

    def __init__(
        self,
        sim: Simulator,
        recorder: FlightRecorder,
        config: TelemetryConfig,
        rng: random.Random,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        self.sim = sim
        self.recorder = recorder
        self.config = config
        self.registry = registry
        #: sampling sweeps performed
        self.ticks = 0
        self._phase_s = rng.random() * config.phase_jitter * config.sample_period_s
        self._network: Optional[Network] = None
        #: switch egress ports in sorted-name order (precomputed once)
        self._switch_ports: tuple = ()
        #: every directed port in sorted-name order (utilisation probes)
        self._all_ports: tuple = ()
        self._last_tx_bytes: dict[str, int] = {}
        self._last_tick_time: Optional[float] = None
        self._polyraptor: tuple = ()
        self._tcp: tuple = ()
        self._injector: Optional[FaultInjector] = None
        self._started = False

    # Probe attachment ---------------------------------------------------------------

    def attach_network(self, network: "Network") -> None:
        """Attach fabric probes: queue depth/EWMA/marks, utilisation, faults."""
        from repro.network.switch import Switch

        self._network = network
        ports = sorted(network.directed_ports.values(), key=lambda port: port.name)
        self._all_ports = tuple(ports)
        self._switch_ports = tuple(
            port for port in ports if isinstance(port.owner, Switch)
        )
        self._last_tx_bytes = {port.name: 0 for port in ports}

    def attach_polyraptor(self, agents: dict[str, "PolyraptorAgent"]) -> None:
        """Attach transport probes for Polyraptor hosts (TFRC, path loss)."""
        self._polyraptor = tuple(agents[name] for name in sorted(agents))

    def attach_tcp(self, agents: dict[str, "TcpAgent"]) -> None:
        """Attach transport probes for TCP hosts (cwnd, active flows)."""
        self._tcp = tuple(agents[name] for name in sorted(agents))

    def attach_faults(self, injector: "FaultInjector") -> None:
        """Attach the fault injector's cause-tagged counters as sparse gauges."""
        self._injector = injector

    # Lifecycle ----------------------------------------------------------------------

    def start(self) -> None:
        """Schedule the first tick (seeded phase offset into the first period)."""
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self.sim.schedule_at(self._phase_s, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        self.ticks += 1
        self._sample_network(now)
        self._sample_transport(now)
        self._sample_faults(now)
        self._sample_registry(now)
        self._last_tick_time = now
        # Reschedule only while other work is pending: when the heap is
        # empty nothing can create future events (all event sources are
        # themselves events), so a lone sampler would tick into dead air
        # until the time cap -- and worse, extend cap-less runs forever.
        if self.sim.peek_next_time() is not None:
            self.sim.schedule(self.config.sample_period_s, self._tick)

    # Probe sweeps -------------------------------------------------------------------

    def _sample_network(self, now: float) -> None:
        network = self._network
        if network is None:
            return
        record = self.recorder.record
        for port in self._switch_ports:
            queue = port.queue
            depth = getattr(queue, "data_queue_length", None)
            if depth is None:
                depth = len(queue)
            record(now, f"queue.depth.{port.name}", depth)
            marker = queue.marker
            if marker is not None:
                record(now, f"queue.ewma.{port.name}", marker.ewma_depth)
                record(now, f"queue.marks.{port.name}", marker.marks)
        last_time = self._last_tick_time
        if last_time is not None and now > last_time:
            dt = now - last_time
            last_tx = self._last_tx_bytes
            for port in self._all_ports:
                sent = port.transmitted_bytes
                delta = sent - last_tx[port.name]
                last_tx[port.name] = sent
                record(now, f"link.util.{port.name}", delta * 8 / (port.rate_bps * dt))
        else:
            for port in self._all_ports:
                self._last_tx_bytes[port.name] = port.transmitted_bytes
        record(now, "fabric.trimmed", network.total_trimmed_packets)
        record(now, "fabric.dropped", network.total_dropped_packets)
        record(now, "fabric.marked", network.total_ecn_marked)

    def _sample_transport(self, now: float) -> None:
        record = self.recorder.record
        for agent in self._polyraptor:
            host = agent.host.name
            tfrc = agent.pacer.tfrc
            if tfrc is not None:
                record(now, f"tfrc.rate.{host}", tfrc.allowed_rate_bps)
                record(now, f"tfrc.p.{host}", tfrc.loss_event_rate)
            gray = 0
            for sender in agent.all_sender_sessions:
                if sender.tfrc is not None:
                    record(
                        now,
                        f"tfrc.rate.{host}.s{sender.session_id}",
                        sender.tfrc.allowed_rate_bps,
                    )
                gray += sender.gray_detected
            record(now, f"gray.detected.{host}", gray)
            for receiver in agent.all_receiver_sessions:
                for sender_host, loss in receiver.path_loss_estimates().items():
                    record(
                        now,
                        f"loss.{host}.s{receiver.session_id}.h{sender_host}",
                        loss,
                    )
        for agent in self._tcp:
            host = agent.host.name
            cwnd = 0.0
            flows = 0
            for sender in agent.all_senders:
                if not sender.completed:
                    cwnd += sender.cwnd
                    flows += 1
            record(now, f"tcp.cwnd.{host}", cwnd)
            record(now, f"tcp.flows.{host}", flows)

    def _sample_faults(self, now: float) -> None:
        network = self._network
        record = self.recorder.record
        if network is not None:
            record(now, "faults.links_down", len(network.failed_edges))
            record(now, "faults.switches_down", len(network.failed_switches))
            record(now, "faults.degraded_ports", network.degraded_ports)
        if self._injector is not None:
            for key, value in sorted(self._injector.stats_dict().items()):
                if isinstance(value, (int, float)):
                    record(now, f"faults.{key}", value)

    def _sample_registry(self, now: float) -> None:
        if self.registry is None:
            return
        record = self.recorder.record
        for name, value in self.registry.snapshot().items():
            if isinstance(value, (int, float)):
                record(now, f"metric.{name}", value)
