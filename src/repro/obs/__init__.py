"""Simulation-native observability: metrics, flight recorder, sampler.

``repro.obs`` is the unified telemetry layer for the fabric, the transports
and the executor.  See :mod:`repro.obs.sampler` for the determinism
contract and ``docs/OBSERVABILITY.md`` for the user-facing guide.
"""

from repro.obs.config import TelemetryConfig
from repro.obs.recorder import (
    TELEMETRY_SCHEMA,
    FlightRecorder,
    SeriesBuffer,
    TelemetryRecord,
    read_telemetry_jsonl,
    write_telemetry_csv,
    write_telemetry_jsonl,
)
from repro.obs.registry import (
    Gauge,
    Histogram,
    MetricRegistry,
    WindowedRate,
)
from repro.obs.sampler import TelemetrySampler

__all__ = [
    "TELEMETRY_SCHEMA",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "SeriesBuffer",
    "TelemetryConfig",
    "TelemetryRecord",
    "TelemetrySampler",
    "WindowedRate",
    "read_telemetry_jsonl",
    "write_telemetry_csv",
    "write_telemetry_jsonl",
]
