"""Figure 1b: goodput vs session rank for the multi-source fetch scenario.

A storage client fetches an object that is stored on 1 or 3 replica servers.
Polyraptor pulls statistically unique symbols from all replicas at once
(natural load balancing); TCP emulates the fetch by having each replica send
an uncoordinated 1/N share of the object.  Series:

    1 Senders RQ, 3 Senders RQ, 1 Senders TCP, 3 Senders TCP
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.figure1a import generate_workload
from repro.experiments.metrics import SeriesSummary, goodput_rank_series
from repro.experiments.runner import RunResult, run_transfers
from repro.workloads.spec import TransferKind


def series_label(protocol: Protocol, num_senders: int) -> str:
    """The legend label used by the paper for one (protocol, senders) series."""
    short = "RQ" if protocol is Protocol.POLYRAPTOR else "TCP"
    return f"{num_senders} Senders {short}"


@dataclass
class Figure1bResult:
    """All four series of Figure 1b plus per-series summaries and run stats."""

    config: ExperimentConfig
    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    summaries: dict[str, SeriesSummary] = field(default_factory=dict)
    runs: dict[str, RunResult] = field(default_factory=dict)

    def summary(self, protocol: Protocol, num_senders: int) -> SeriesSummary:
        """Summary of one series."""
        return self.summaries[series_label(protocol, num_senders)]


def run_figure1b(
    config: ExperimentConfig | None = None,
    sender_counts: tuple[int, ...] = (1, 3),
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
) -> Figure1bResult:
    """Run every series of Figure 1b and return the rank curves."""
    cfg = config or ExperimentConfig.scaled_default()
    result = Figure1bResult(config=cfg)
    for num_senders in sender_counts:
        topology, transfers = generate_workload(cfg, num_senders, TransferKind.FETCH)
        for protocol in protocols:
            label = series_label(protocol, num_senders)
            run = run_transfers(protocol, cfg, transfers, topology=topology)
            result.runs[label] = run
            result.series[label] = goodput_rank_series(run.registry, "foreground")
            goodputs = run.goodputs_gbps("foreground")
            if goodputs:
                result.summaries[label] = SeriesSummary.from_goodputs(label, goodputs)
    return result
