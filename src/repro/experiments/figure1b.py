"""Figure 1b: goodput vs session rank for the multi-source fetch scenario.

A storage client fetches an object that is stored on 1 or 3 replica servers.
Polyraptor pulls statistically unique symbols from all replicas at once
(natural load balancing); TCP emulates the fetch by having each replica send
an uncoordinated 1/N share of the object.  Series:

    1 Senders RQ, 3 Senders RQ, 1 Senders TCP, 3 Senders TCP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.figure1a import collect_sweep, expand_sweep
from repro.experiments.metrics import SeriesSummary
from repro.experiments.parallel import execute_jobs, last_profile
from repro.experiments.runner import RunResult
from repro.workloads.spec import TransferKind


def series_label(protocol: Protocol, num_senders: int) -> str:
    """The legend label used by the paper for one (protocol, senders) series."""
    short = "RQ" if protocol is Protocol.POLYRAPTOR else "TCP"
    return f"{num_senders} Senders {short}"


@dataclass
class Figure1bResult:
    """All four series of Figure 1b plus per-series summaries and run stats.

    Mirrors :class:`~repro.experiments.figure1a.Figure1aResult`: ``runs``
    holds the base seed's run per series, ``seed_runs`` every repetition and
    ``codec_stats`` the merged per-series codec counters.
    """

    config: ExperimentConfig
    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    summaries: dict[str, SeriesSummary] = field(default_factory=dict)
    runs: dict[str, RunResult] = field(default_factory=dict)
    seed_runs: dict[str, list[RunResult]] = field(default_factory=dict)
    codec_stats: dict[str, Optional[dict]] = field(default_factory=dict)
    #: Executor accounting for the sweep (see
    #: :class:`~repro.experiments.parallel.ExecutorProfile`).
    exec_profile: Optional[dict] = None

    def summary(self, protocol: Protocol, num_senders: int) -> SeriesSummary:
        """Summary of one series."""
        return self.summaries[series_label(protocol, num_senders)]


def run_figure1b(
    config: ExperimentConfig | None = None,
    sender_counts: tuple[int, ...] = (1, 3),
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
    num_seeds: int = 1,
    jobs: int = 1,
) -> Figure1bResult:
    """Run every series of Figure 1b and return the rank curves.

    Accepts the same ``num_seeds`` / ``jobs`` sweep controls as
    :func:`~repro.experiments.figure1a.run_figure1a`.
    """
    cfg = config or ExperimentConfig.scaled_default()
    result = Figure1bResult(config=cfg)
    sweep = expand_sweep(cfg, sender_counts, protocols, num_seeds,
                         kind=TransferKind.FETCH, label_of=series_label)
    runs = execute_jobs(sweep, num_workers=jobs, label="figure1b")
    collect_sweep(result, sweep, runs)
    profile = last_profile()
    result.exec_profile = profile.as_dict() if profile is not None else None
    return result
