"""Mixed-workload experiment (the paper's "different workloads" direction).

The discussion section of the paper says the authors are "evaluating
Polyraptor's behaviour under different workloads".  This module provides that
experiment: instead of the fixed 4 MB objects of Figure 1, transfer sizes are
drawn from a heavy-tailed (bounded Pareto) distribution, mixing
latency-sensitive short flows with large elephants.  The report separates
short and long transfers so the effect of the systematic prefix (no decoding
latency for short, loss-free flows) and of receiver pacing (elephants cannot
starve mice) is visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import RunJob, execute_jobs
from repro.network.topology import FatTreeTopology
from repro.sim.randomness import RandomStreams
from repro.utils.cdf import Cdf
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.flowsize import ParetoSize
from repro.workloads.spec import TransferKind, TransferSpec
from repro.workloads.traffic_matrix import repeated_permutation_pairs


@dataclass(frozen=True)
class WorkloadMixResult:
    """Per-protocol summary of the heavy-tailed workload run."""

    protocol: Protocol
    short_median_fct_ms: float
    short_p90_fct_ms: float
    long_median_goodput_gbps: float
    completion_fraction: float


def _heavy_tailed_transfers(
    config: ExperimentConfig,
    num_transfers: int,
    min_bytes: int,
    max_bytes: int,
    shape: float,
    short_threshold_bytes: int,
) -> tuple[FatTreeTopology, list[TransferSpec]]:
    topology = FatTreeTopology(config.fattree_k)
    streams = RandomStreams(config.seed)
    rng = streams.stream("workload-mix")
    sizes = ParetoSize(min_bytes, max_bytes, shape=shape)
    mean_size = sum(sizes.sample(rng) for _ in range(200)) / 200
    rate = config.offered_load * config.num_hosts * config.link_rate_bps / (8 * mean_size)
    arrivals = PoissonArrivals(rate).times(num_transfers, rng)
    pairs = repeated_permutation_pairs(topology.hosts, num_transfers, rng)
    transfers = []
    for index, ((src, dst), start) in enumerate(zip(pairs, arrivals)):
        size = sizes.sample(rng)
        transfers.append(
            TransferSpec(
                transfer_id=index,
                kind=TransferKind.UNICAST,
                client=src,
                peers=(dst,),
                size_bytes=size,
                start_time=start,
                label="short" if size <= short_threshold_bytes else "long",
            )
        )
    return topology, transfers


def run_workload_mix(
    config: ExperimentConfig | None = None,
    num_transfers: int = 40,
    min_bytes: int = 20_000,
    max_bytes: int = 2_000_000,
    shape: float = 1.2,
    short_threshold_bytes: int = 100_000,
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
    jobs: int = 1,
) -> dict[Protocol, WorkloadMixResult]:
    """Run the heavy-tailed permutation workload under each protocol."""
    cfg = config or ExperimentConfig.scaled_default()
    _, transfers = _heavy_tailed_transfers(
        cfg, num_transfers, min_bytes, max_bytes, shape, short_threshold_bytes
    )
    sweep = [
        RunJob(key=protocol, protocol=protocol, config=cfg, transfers=tuple(transfers))
        for protocol in protocols
    ]
    results: dict[Protocol, WorkloadMixResult] = {}
    for protocol, run in zip(protocols, execute_jobs(sweep, num_workers=jobs, label="workload-mix")):
        short_fcts = [
            record.flow_completion_time * 1e3
            for record in run.registry.completed_records
            if record.label == "short"
        ]
        long_goodputs = run.registry.goodputs_gbps("long")
        short_cdf = Cdf.from_samples(short_fcts) if short_fcts else None
        long_cdf = Cdf.from_samples(long_goodputs) if long_goodputs else None
        results[protocol] = WorkloadMixResult(
            protocol=protocol,
            short_median_fct_ms=short_cdf.median() if short_cdf else float("inf"),
            short_p90_fct_ms=short_cdf.quantile(0.9) if short_cdf else float("inf"),
            long_median_goodput_gbps=long_cdf.median() if long_cdf else 0.0,
            completion_fraction=run.completion_fraction,
        )
    return results


def format_workload_mix(results: dict[Protocol, WorkloadMixResult]) -> str:
    """Render the mixed-workload comparison as a text table."""
    lines = [
        "Workload-mix extension -- heavy-tailed (bounded Pareto) transfer sizes",
        f"{'protocol':<12} {'short median FCT ms':>20} {'short p90 FCT ms':>17} "
        f"{'long median Gbps':>17} {'completed':>10}",
        f"{'-' * 12} {'-' * 20} {'-' * 17} {'-' * 17} {'-' * 10}",
    ]
    for protocol, result in results.items():
        lines.append(
            f"{protocol.value:<12} {result.short_median_fct_ms:>20.3f} "
            f"{result.short_p90_fct_ms:>17.3f} {result.long_median_goodput_gbps:>17.3f} "
            f"{result.completion_fraction:>10.2f}"
        )
    return "\n".join(lines)
