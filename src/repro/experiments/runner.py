"""The scenario runner: offer a workload to a protocol and collect results.

The runner is deliberately protocol-agnostic: it takes a list of
:class:`~repro.workloads.spec.TransferSpec` (generated once per seed) and
executes it either with Polyraptor sessions over a trimming/spraying fabric
or with TCP flows over a drop-tail/ECMP fabric.  Because the workload is
generated before the protocol is chosen, both protocols see byte-identical
offered traffic -- the paper's methodological requirement for a fair
comparison.

One call to :func:`run_transfers` is one *run*: a fresh simulator, network
and agent set, driven to completion, summarised as a :class:`RunResult`.
Runs are pure functions of their inputs (config, transfer list, optional
overrides), which is what lets :mod:`repro.experiments.parallel` execute
many of them in worker processes and merge the results deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.agent import PolyraptorAgent
from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig, Protocol
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.network.network import Network, NetworkConfig
from repro.network.topology import FatTreeTopology, Topology
from repro.obs import FlightRecorder, MetricRegistry, TelemetrySampler
from repro.rq.backend import CodecContext
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.sim.trace import TraceLog
from repro.transport.base import TransferRegistry
from repro.transport.tcp.agent import TcpAgent
from repro.transport.tcp.multiunicast import start_multi_source_fetch, start_replicated_push
from repro.workloads.spec import TransferKind, TransferSpec


@dataclass
class RunResult:
    """Everything collected from one simulation run."""

    protocol: Protocol
    registry: TransferRegistry
    sim_time_s: float
    wall_time_s: float
    events_processed: int
    trimmed_packets: int
    dropped_packets: int
    num_hosts: int
    trace: Optional[TraceLog] = None
    metadata: dict = field(default_factory=dict)
    #: Codec-layer statistics (backend name, plan-cache hits/misses) for
    #: Polyraptor runs; ``None`` for TCP runs, which do no coding.
    codec_stats: Optional[dict] = None
    #: Fault-layer statistics (per-event counters, fault-caused packet drops,
    #: reroutes) when a fault schedule drove the run; ``None`` otherwise.
    fault_stats: Optional[dict] = None
    #: Congestion-reaction statistics (ECN marks, TFRC rate updates, gray
    #: detections) when any reactive feature -- marking, TFRC pacing or gray
    #: detection -- was enabled for the run; ``None`` otherwise, so runs with
    #: everything off keep their historical canonical snapshots byte-for-byte.
    transport_stats: Optional[dict] = None
    #: flight-recorder output (``schema``/``ticks``/``series``/``metrics``)
    #: when ``config.telemetry`` enabled the sampler; ``None`` otherwise --
    #: same conditional-presence contract as ``transport_stats``.
    telemetry: Optional[dict] = None

    @property
    def completion_fraction(self) -> float:
        """Fraction of offered transfers that completed before the run ended."""
        return self.registry.completion_fraction()

    def canonical_dict(self) -> dict:
        """A plain-data snapshot of everything deterministic about the run.

        Excludes ``wall_time_s`` (measured, never reproducible) and the
        trace.  Tests and benchmarks serialise this to assert the executor's
        determinism contract -- identical for any ``--jobs N``, transport and
        chunking -- by byte equality.  Whole-``RunResult`` pickles are *not*
        byte-stable across process boundaries (pickle encodes object
        identity, e.g. a label string shared with an enum value, which a
        round trip does not preserve); this snapshot compares by value only.
        """
        snapshot = {
            "protocol": self.protocol.value,
            "sim_time_s": self.sim_time_s,
            "events_processed": self.events_processed,
            "trimmed_packets": self.trimmed_packets,
            "dropped_packets": self.dropped_packets,
            "num_hosts": self.num_hosts,
            "metadata": dict(self.metadata),
            "codec_stats": self.codec_stats,
            "fault_stats": self.fault_stats,
            "transfers": [
                {
                    "transfer_id": record.transfer_id,
                    "transfer_bytes": record.transfer_bytes,
                    "start_time": record.start_time,
                    "completion_time": record.completion_time,
                    "protocol": record.protocol,
                    "label": record.label,
                    "metadata": dict(record.metadata),
                }
                for record in self.registry.records
            ],
        }
        # Included only when a reactive feature ran: legacy snapshots (and
        # their fingerprints) must not change shape for feature-off runs.
        if self.transport_stats is not None:
            snapshot["transport_stats"] = self.transport_stats
        # Same contract for telemetry: absent key for telemetry-off runs.
        if self.telemetry is not None:
            snapshot["telemetry"] = self.telemetry
        return snapshot

    def goodputs_gbps(self, label: Optional[str] = "foreground") -> list[float]:
        """Goodputs of completed transfers with the given label (None = all)."""
        return self.registry.goodputs_gbps(label)


@dataclass
class _Environment:
    """A fully built simulation environment for one protocol."""

    sim: Simulator
    network: Network
    registry: TransferRegistry
    polyraptor_agents: dict[str, PolyraptorAgent]
    tcp_agents: dict[str, TcpAgent]
    codec_context: Optional[CodecContext] = None
    polyraptor_config: Optional[PolyraptorConfig] = None
    fault_injector: Optional[FaultInjector] = None
    #: telemetry wiring; all three are None for telemetry-off runs
    sampler: Optional[TelemetrySampler] = None
    recorder: Optional[FlightRecorder] = None
    metrics: Optional[MetricRegistry] = None


def build_environment(
    protocol: Protocol,
    config: ExperimentConfig,
    topology: Optional[Topology] = None,
    trace: Optional[TraceLog] = None,
    polyraptor_config: Optional[PolyraptorConfig] = None,
    network_config: Optional[NetworkConfig] = None,
    codec_context: Optional[CodecContext] = None,
    fault_schedule: Optional[FaultSchedule] = None,
) -> _Environment:
    """Build the simulator, network and per-host agents for one protocol.

    Args:
        protocol: which transport the agents speak.
        config: the experiment configuration (seed, fabric size, workload).
        topology: a prebuilt topology; defaults to ``FatTreeTopology(k)``.
        trace: optional event trace collector (disabled when ``None``).
        polyraptor_config: protocol-parameter override for Polyraptor runs.
        network_config: fabric override; defaults to the protocol's standard
            fabric (trimming + spraying for Polyraptor, drop-tail + ECMP for
            TCP).  Ablations use this to run Polyraptor on non-standard
            fabrics.
        codec_context: a pre-built codec context (e.g. one preloaded from a
            :class:`~repro.rq.plan.PlanStore` by the parallel executor); a
            fresh one is created when ``None``.
        fault_schedule: optional declarative fault schedule; when non-empty a
            :class:`~repro.faults.injector.FaultInjector` is armed before any
            transfer starts, so fault events interleave deterministically
            with traffic.
    """
    sim = Simulator()
    topo = topology or FatTreeTopology(config.fattree_k)
    streams = RandomStreams(config.seed)
    fabric = network_config or config.network_config(protocol)
    network = Network(sim, topo, fabric, streams, trace=trace)
    fault_injector: Optional[FaultInjector] = None
    if fault_schedule is not None and len(fault_schedule) > 0:
        fault_injector = FaultInjector(sim, network, fault_schedule)
        fault_injector.start()
    registry = TransferRegistry()
    polyraptor_agents: dict[str, PolyraptorAgent] = {}
    tcp_agents: dict[str, TcpAgent] = {}
    pcfg: Optional[PolyraptorConfig] = None
    if protocol is Protocol.POLYRAPTOR:
        pcfg = polyraptor_config or config.polyraptor
        # One shared codec context per simulation: every session of every
        # agent draws elimination plans from the same cache, so the cost of
        # factorising a K' is paid once per run rather than once per block.
        if codec_context is None:
            codec_context = CodecContext(pcfg.codec_backend, kernel=pcfg.codec_kernel)
        for host in network.hosts:
            polyraptor_agents[host.name] = PolyraptorAgent(
                sim, host, pcfg, registry, trace, codec_context=codec_context
            )
    else:
        codec_context = None  # TCP does no coding; never report codec stats.
        for host in network.hosts:
            tcp_agents[host.name] = TcpAgent(sim, host, config.tcp, registry)
    sampler: Optional[TelemetrySampler] = None
    recorder: Optional[FlightRecorder] = None
    metrics: Optional[MetricRegistry] = None
    tcfg = config.telemetry
    if tcfg is not None and tcfg.enabled:
        # Built only when asked for: a telemetry-off run creates no sampler,
        # draws no "telemetry" stream and schedules no events, which is what
        # keeps its fingerprints byte-identical to the pre-telemetry runner.
        metrics = MetricRegistry()
        recorder = FlightRecorder(max_samples=tcfg.max_samples)
        sampler = TelemetrySampler(
            sim, recorder, tcfg, streams.stream("telemetry"), registry=metrics
        )
        sampler.attach_network(network)
        if fault_injector is not None:
            sampler.attach_faults(fault_injector)
        if polyraptor_agents:
            sampler.attach_polyraptor(polyraptor_agents)
        if tcp_agents:
            sampler.attach_tcp(tcp_agents)
        if trace is not None:
            trace.bind_registry(metrics)
        sampler.start()
    return _Environment(
        sim=sim,
        network=network,
        registry=registry,
        polyraptor_agents=polyraptor_agents,
        tcp_agents=tcp_agents,
        codec_context=codec_context,
        polyraptor_config=pcfg,
        fault_injector=fault_injector,
        sampler=sampler,
        recorder=recorder,
        metrics=metrics,
    )


def _collect_transport_stats(env: _Environment, protocol: Protocol) -> Optional[dict]:
    """Congestion-reaction counters for the run, or ``None`` when inert.

    Counters are summed in deterministic (host-construction) order and only
    collected when marking, TFRC pacing or gray detection was actually on --
    feature-off runs return ``None`` so their results (and fingerprints) stay
    byte-identical to the pre-reaction simulator.
    """
    pcfg = env.polyraptor_config
    reactive = env.network.config.ecn_enabled or (
        pcfg is not None and (pcfg.tfrc_pacing or pcfg.gray_detection)
    )
    if not reactive:
        return None
    stats = {"ecn_marks": env.network.total_ecn_marked}
    if protocol is Protocol.POLYRAPTOR:
        ce_received = rate_updates = gray_detected = 0
        for agent in env.polyraptor_agents.values():
            if agent.pacer.tfrc is not None:
                rate_updates += agent.pacer.tfrc.rate_updates
            for receiver in agent.all_receiver_sessions:
                ce_received += receiver.ce_received
            for sender in agent.all_sender_sessions:
                gray_detected += sender.gray_detected
                if sender.tfrc is not None:
                    rate_updates += sender.tfrc.rate_updates
        stats["ce_received"] = ce_received
        stats["rate_updates"] = rate_updates
        stats["gray_detected"] = gray_detected
    else:
        ecn_echoes = ecn_reactions = 0
        for agent in env.tcp_agents.values():
            for receiver in agent.all_receivers:
                ecn_echoes += receiver.ecn_echoes
            for sender in agent.all_senders:
                ecn_reactions += sender.ecn_reactions
        stats["ecn_echoes"] = ecn_echoes
        stats["ecn_reactions"] = ecn_reactions
    return stats


def _collect_telemetry(env: _Environment) -> Optional[dict]:
    """The run's flight-recorder output, or ``None`` for telemetry-off runs.

    Besides the sampler's time series, the end-of-run fold fills an
    ``fct_ms`` histogram from the transfer registry (completed transfers
    only, in registry order) so distributions survive even when the series
    ring buffers evicted their history.  Everything returned is plain data,
    so the snapshot pickles across worker boundaries and merges
    byte-identically for any ``--jobs`` value.
    """
    if env.sampler is None or env.metrics is None or env.recorder is None:
        return None
    fct_hist = env.metrics.histogram("fct_ms")
    for record in env.registry.records:
        if record.completed:
            fct_hist.observe(record.flow_completion_time * 1e3)
    return {
        "schema": 1,
        "ticks": env.sampler.ticks,
        "series": env.recorder.as_dict(),
        "metrics": env.metrics.snapshot(),
    }


def _object_payload(spec: TransferSpec) -> bytes:
    """Deterministic pseudo-random object bytes for payload-carrying runs."""
    rng = np.random.default_rng(spec.transfer_id + 0x5EED)
    return rng.integers(0, 256, spec.size_bytes, dtype=np.uint8).tobytes()


def _start_polyraptor_transfer(env: _Environment, spec: TransferSpec) -> None:
    network = env.network
    agents = env.polyraptor_agents
    peer_ids = [network.host_id(peer) for peer in spec.peers]
    carry_payload = env.polyraptor_config is not None and env.polyraptor_config.carry_payload
    if spec.kind is TransferKind.FETCH:
        if carry_payload:
            payload = _object_payload(spec)
            for peer in spec.peers:
                agents[peer].store_object(spec.transfer_id, payload)
        agents[spec.client].start_fetch_session(
            spec.transfer_id, spec.size_bytes, peer_ids, label=spec.label
        )
        return
    multicast_group = None
    if spec.kind is TransferKind.REPLICATE and len(spec.peers) > 1:
        network.create_multicast_group(spec.transfer_id, spec.client, list(spec.peers))
        multicast_group = spec.transfer_id
    agents[spec.client].start_push_session(
        spec.transfer_id,
        spec.size_bytes,
        peer_ids,
        multicast_group=multicast_group,
        label=spec.label,
        object_data=_object_payload(spec) if carry_payload else None,
    )


def _start_tcp_transfer(env: _Environment, spec: TransferSpec) -> None:
    network = env.network
    agents = env.tcp_agents
    flow_base = spec.transfer_id * 1000
    if spec.kind is TransferKind.UNICAST:
        agents[spec.client].start_flow(
            flow_base,
            network.host_id(spec.peers[0]),
            spec.size_bytes,
            label=spec.label,
            register=False,
            on_complete=_registry_completion(env, spec),
        )
        env.registry.record_start(
            spec.transfer_id, spec.size_bytes, env.sim.now, protocol="tcp", label=spec.label
        )
        return
    if spec.kind is TransferKind.REPLICATE:
        start_replicated_push(
            env.sim,
            agents[spec.client],
            [network.host_id(peer) for peer in spec.peers],
            spec.size_bytes,
            transfer_id=spec.transfer_id,
            registry=env.registry,
            label=spec.label,
            flow_id_base=flow_base,
        )
        return
    if spec.kind is TransferKind.FETCH:
        start_multi_source_fetch(
            env.sim,
            [agents[peer] for peer in spec.peers],
            network.host_id(spec.client),
            spec.size_bytes,
            transfer_id=spec.transfer_id,
            registry=env.registry,
            label=spec.label,
            flow_id_base=flow_base,
        )
        return
    raise ValueError(f"unsupported transfer kind {spec.kind!r}")


def _registry_completion(env: _Environment, spec: TransferSpec):
    def _done(now: float) -> None:
        env.registry.record_completion(spec.transfer_id, now)

    return _done


def offer_transfers(env: _Environment, protocol: Protocol, transfers: Sequence[TransferSpec]) -> None:
    """Schedule every transfer of the workload at its start time."""
    for spec in transfers:
        if protocol is Protocol.POLYRAPTOR:
            env.sim.schedule_at(spec.start_time, _start_polyraptor_transfer, env, spec)
        else:
            env.sim.schedule_at(spec.start_time, _start_tcp_transfer, env, spec)


def run_transfers(
    protocol: Protocol,
    config: ExperimentConfig,
    transfers: Sequence[TransferSpec],
    topology: Optional[Topology] = None,
    trace: Optional[TraceLog] = None,
    polyraptor_config: Optional[PolyraptorConfig] = None,
    network_config: Optional[NetworkConfig] = None,
    codec_context: Optional[CodecContext] = None,
    fault_schedule: Optional[FaultSchedule] = None,
) -> RunResult:
    """Run one workload under one protocol and return the collected results.

    This is the single entry point every experiment goes through -- directly
    when sequential, or inside a worker process when sharded through
    :func:`repro.experiments.parallel.execute_jobs`.  See
    :func:`build_environment` for the meaning of the optional overrides.
    """
    env = build_environment(protocol, config, topology=topology, trace=trace,
                            polyraptor_config=polyraptor_config,
                            network_config=network_config,
                            codec_context=codec_context,
                            fault_schedule=fault_schedule)
    offer_transfers(env, protocol, transfers)
    wall_start = time.perf_counter()
    env.sim.run(until=config.max_sim_time_s)
    wall_time = time.perf_counter() - wall_start
    return RunResult(
        protocol=protocol,
        registry=env.registry,
        sim_time_s=env.sim.now,
        wall_time_s=wall_time,
        events_processed=env.sim.events_processed,
        trimmed_packets=env.network.total_trimmed_packets,
        dropped_packets=env.network.total_dropped_packets,
        num_hosts=env.network.num_hosts,
        trace=trace,
        codec_stats=env.codec_context.stats_dict() if env.codec_context else None,
        fault_stats=env.fault_injector.stats_dict() if env.fault_injector else None,
        transport_stats=_collect_transport_stats(env, protocol),
        telemetry=_collect_telemetry(env),
    )


def run_unicast_demo(
    protocol: Protocol = Protocol.POLYRAPTOR,
    object_bytes: int = 1_000_000,
    config: Optional[ExperimentConfig] = None,
) -> RunResult:
    """A one-transfer demonstration run (used by the quickstart example and docs)."""
    cfg = config or ExperimentConfig.quick()
    topology = FatTreeTopology(cfg.fattree_k)
    hosts = topology.hosts
    spec = TransferSpec(
        transfer_id=1,
        kind=TransferKind.UNICAST,
        client=hosts[0],
        peers=(hosts[-1],),
        size_bytes=object_bytes,
        start_time=0.0,
        label="foreground",
    )
    return run_transfers(protocol, cfg, [spec], topology=topology)
