"""Figure 1c: Incast -- goodput vs number of parallel senders.

A classic Incast scenario with synchronised short flows: ``n`` workers answer
one aggregator at the same instant with a 256 KB or 70 KB response.  The
figure plots the goodput achieved at the aggregator against the number of
senders, with 95% confidence intervals over repetitions with different seeds.

TCP collapses (drop-tail overflow -> timeouts -> the receiver link sits idle
for RTO-scale gaps); Polyraptor's trimming, rateless symbols and receiver
pacing keep goodput near line rate regardless of the sender count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.metrics import aggregate_goodput_gbps, mean_with_confidence
from repro.experiments.parallel import RunJob, execute_jobs, last_profile, run_job
from repro.experiments.report import merge_codec_stats
from repro.network.topology import FatTreeTopology
from repro.sim.randomness import RandomStreams
from repro.utils.units import KILOBYTE
from repro.workloads.incast import incast_transfers


def series_label(protocol: Protocol, response_bytes: int) -> str:
    """Legend label for one (protocol, response size) series, e.g. "RQ 256KB"."""
    short = "RQ" if protocol is Protocol.POLYRAPTOR else "TCP"
    return f"{short} {response_bytes // KILOBYTE}KB"


@dataclass(frozen=True)
class IncastPoint:
    """One point of Figure 1c: mean goodput and CI for one sender count."""

    num_senders: int
    mean_goodput_gbps: float
    ci95_gbps: float
    samples: tuple[float, ...]


@dataclass
class Figure1cResult:
    """Every series of Figure 1c, plus per-series merged codec counters."""

    config: ExperimentConfig
    series: dict[str, list[IncastPoint]] = field(default_factory=dict)
    codec_stats: dict[str, Optional[dict]] = field(default_factory=dict)
    #: Executor accounting for the sweep (see
    #: :class:`~repro.experiments.parallel.ExecutorProfile`).
    exec_profile: Optional[dict] = None

    def points(self, protocol: Protocol, response_bytes: int) -> list[IncastPoint]:
        """The points of one series."""
        return self.series[series_label(protocol, response_bytes)]


def incast_job(
    protocol: Protocol,
    config: ExperimentConfig,
    num_senders: int,
    response_bytes: int,
    seed: int,
) -> RunJob:
    """Describe one Incast episode as an executable job."""
    cfg = config.with_seed(seed)
    topology = FatTreeTopology(cfg.fattree_k)
    streams = RandomStreams(seed)
    _, transfers = incast_transfers(
        topology,
        num_senders=num_senders,
        response_bytes=response_bytes,
        rng=streams.stream("incast"),
        start_time=0.0,
        label="incast",
    )
    return RunJob(
        key=(seed, series_label(protocol, response_bytes), num_senders),
        protocol=protocol,
        config=cfg,
        transfers=tuple(transfers),
    )


def run_incast_point(
    protocol: Protocol,
    config: ExperimentConfig,
    num_senders: int,
    response_bytes: int,
    seed: int,
) -> float:
    """Run one Incast episode and return the aggregate goodput at the receiver.

    Convenience wrapper (used by the examples) over the same job-execution
    path the sharded sweep uses.
    """
    run = run_job(incast_job(protocol, config, num_senders, response_bytes, seed))
    return aggregate_goodput_gbps(run.registry, "incast")


def run_figure1c(
    config: ExperimentConfig | None = None,
    sender_counts: tuple[int, ...] = (1, 2, 4, 8, 12),
    response_sizes: tuple[int, ...] = (256 * KILOBYTE, 70 * KILOBYTE),
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
    num_seeds: int = 3,
    jobs: int = 1,
) -> Figure1cResult:
    """Run the Incast sweep.

    The paper sweeps 1-70 senders on a 250-host fabric with 5 seeds; the
    defaults here are scaled to the 16-host test fabric (sender counts capped
    by the host count) and 3 seeds, which already exhibit the collapse-vs-flat
    contrast.  Pass larger values to approach the paper's exact sweep.

    This is the widest sweep of the suite (protocols x sizes x sender counts
    x seeds independent episodes), so it parallelises best: pass ``jobs=N``
    to shard the episodes over N worker processes with identical results.
    """
    cfg = config or ExperimentConfig.scaled_default()
    max_senders = cfg.num_hosts - 1
    result = Figure1cResult(config=cfg)

    sweep: list[RunJob] = []
    for protocol in protocols:
        for response_bytes in response_sizes:
            for num_senders in sender_counts:
                if num_senders > max_senders:
                    continue
                for seed in range(cfg.seed, cfg.seed + num_seeds):
                    sweep.append(incast_job(protocol, cfg, num_senders,
                                            response_bytes, seed))
    runs = execute_jobs(sweep, num_workers=jobs, label="figure1c")

    goodput_of = {
        job.key: aggregate_goodput_gbps(run.registry, "incast")
        for job, run in zip(sweep, runs)
    }
    stats_by_label: dict[str, list[Optional[dict]]] = {}
    for job, run in zip(sweep, runs):
        stats_by_label.setdefault(job.key[1], []).append(run.codec_stats)

    for protocol in protocols:
        for response_bytes in response_sizes:
            label = series_label(protocol, response_bytes)
            points: list[IncastPoint] = []
            for num_senders in sender_counts:
                if num_senders > max_senders:
                    continue
                samples = [
                    goodput_of[(seed, label, num_senders)]
                    for seed in range(cfg.seed, cfg.seed + num_seeds)
                ]
                mean, ci = mean_with_confidence(samples)
                points.append(
                    IncastPoint(
                        num_senders=num_senders,
                        mean_goodput_gbps=mean,
                        ci95_gbps=ci,
                        samples=tuple(samples),
                    )
                )
            result.series[label] = points
            result.codec_stats[label] = merge_codec_stats(stats_by_label.get(label, []))
    profile = last_profile()
    result.exec_profile = profile.as_dict() if profile is not None else None
    return result
