"""Shared-memory result transport for the sharded experiment executor.

Worker processes and the parent exchange three kinds of payload: job
batches, per-job results and the pre-warmed elimination-plan store.  All
three contain numpy symbol planes (plan operators, metric arrays) whose
bytes dominate the pickle stream, so shipping them through a pipe costs a
serialise + copy + deserialise per hop.  This module moves those bytes
through ``multiprocessing.shared_memory`` instead:

* the producer pickles the object with **protocol 5 out-of-band buffers**,
  so every contiguous ndarray is extracted as a raw buffer rather than
  embedded in the stream;
* stream and buffers are written once into a single shared-memory segment
  behind a compact typed header (magic, version, buffer table);
* only a tiny :class:`ShmSlot` descriptor (name + size) crosses the process
  boundary by pickle;
* the consumer maps the segment, re-inflates the object with the buffers
  either **zero-copy** (ndarrays aliasing the mapping -- used for the
  read-only plan store, whose pages are then physically shared by every
  worker) or copied out (used for results that outlive the segment), and
  closes -- and, when it owns the segment, unlinks -- the mapping.

Ownership protocol: exactly one process unlinks each segment.  Results are
created by workers and unlinked by the parent after merging; job batches
are created by the parent and unlinked by the worker after unpacking; the
plan-store segment is created by the parent and unlinked by the parent once
every worker has mapped it (a POSIX unlink only removes the name -- live
mappings survive).  Producers that fail mid-pack unlink their own segment
before re-raising, so a crash can never leak ``/dev/shm`` entries.

When shared memory is unavailable (``/dev/shm`` unmounted, permissions,
exotic platforms) the executor falls back transparently to plain pickle
payloads over the queue; :func:`shm_available` is the probe.
"""

from __future__ import annotations

import pickle
import secrets
import struct
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Optional

#: Prefix of every segment this module creates; tests (and emergency
#: cleanup) can glob ``/dev/shm/<prefix>*`` to find strays.
SHM_NAME_PREFIX = "rpshm-"

#: Magic + header version written at offset 0 of every segment.
_MAGIC = b"RPS1"

#: Header layout: magic, u32 buffer count, u64 stream length, then one u64
#: length per out-of-band buffer.  Stream and buffers follow, each aligned
#: to ``_ALIGN`` so mapped ndarrays keep natural alignment.
_HEAD = struct.Struct("<4sIQ")
_LEN = struct.Struct("<Q")
_ALIGN = 64


class ShmTransportError(RuntimeError):
    """A shared-memory segment was missing, truncated or corrupt."""


@dataclass(frozen=True)
class ShmSlot:
    """A picklable reference to one packed shared-memory segment.

    This is all that crosses the process boundary: the segment name and its
    total size (kept for accounting -- the consumer re-reads the real
    layout from the in-segment header).
    """

    name: str
    size: int


@dataclass(frozen=True)
class PackStats:
    """Byte accounting for one :func:`pack_object` call."""

    stream_bytes: int  #: pickle-stream bytes (in-band part)
    buffer_bytes: int  #: out-of-band ndarray bytes
    total_bytes: int   #: segment size including header + alignment padding


_available: Optional[bool] = None


def shm_available() -> bool:
    """Whether POSIX shared memory works here (probed once, then cached)."""
    global _available
    if _available is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _available = True
        except Exception:
            _available = False
    return _available


def _new_segment(size: int) -> shared_memory.SharedMemory:
    """Create a uniquely named segment (name collisions are retried)."""
    while True:
        name = f"{SHM_NAME_PREFIX}{secrets.token_hex(6)}"
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=max(size, 1))
        except FileExistsError:  # pragma: no cover - 48-bit token collision
            continue


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_object(obj: Any) -> tuple[ShmSlot, PackStats]:
    """Serialise ``obj`` into a fresh shared-memory segment.

    The pickle stream is produced with protocol 5 and a buffer callback, so
    contiguous ndarrays leave the stream as raw out-of-band buffers; stream
    and buffers are written behind the typed header in one pass.  On any
    failure after the segment exists it is closed *and unlinked* before the
    exception propagates -- packing can never leak a segment.
    """
    buffers: list[pickle.PickleBuffer] = []
    stream = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    views = [buffer.raw() for buffer in buffers]
    try:
        buffer_bytes = sum(view.nbytes for view in views)
        header_len = _HEAD.size + _LEN.size * len(views)
        offset = _aligned(header_len)
        stream_at = offset
        offset = _aligned(offset + len(stream))
        buffer_at: list[int] = []
        for view in views:
            buffer_at.append(offset)
            offset = _aligned(offset + view.nbytes)
        segment = _new_segment(offset)
        try:
            memory = segment.buf
            memory[:_HEAD.size] = _HEAD.pack(_MAGIC, len(views), len(stream))
            cursor = _HEAD.size
            for view in views:
                memory[cursor:cursor + _LEN.size] = _LEN.pack(view.nbytes)
                cursor += _LEN.size
            memory[stream_at:stream_at + len(stream)] = stream
            for at, view in zip(buffer_at, views):
                memory[at:at + view.nbytes] = view
            slot = ShmSlot(name=segment.name, size=offset)
        except BaseException:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            raise
        segment.close()
    finally:
        for view in views:
            view.release()
        for buffer in buffers:
            buffer.release()
    return slot, PackStats(
        stream_bytes=len(stream), buffer_bytes=buffer_bytes, total_bytes=offset
    )


def unpack_object(
    slot: ShmSlot,
    unlink: bool = True,
    copy: bool = True,
    keepalive: Optional[list] = None,
) -> Any:
    """Re-inflate the object packed into ``slot``'s segment.

    Args:
        slot: the descriptor returned by :func:`pack_object` (possibly in
            another process).
        unlink: destroy the segment after reading (the consumer-owns-it
            convention for results and job batches).  Pass ``False`` when
            another process still needs the name.
        copy: materialise the out-of-band buffers into process-private
            bytearrays so the object outlives the mapping (default).  With
            ``copy=False`` the ndarrays alias the shared mapping zero-copy;
            the mapping is kept open and appended to ``keepalive``, which
            the caller must retain for the object's lifetime.
        keepalive: required with ``copy=False``; receives the open
            :class:`~multiprocessing.shared_memory.SharedMemory` object.

    Raises:
        ShmTransportError: the segment is missing or its header is corrupt.
    """
    if not copy and keepalive is None:
        raise ValueError("copy=False requires a keepalive list for the open mapping")
    try:
        segment = shared_memory.SharedMemory(name=slot.name)
    except FileNotFoundError as error:
        raise ShmTransportError(f"shared-memory segment {slot.name!r} is gone") from error
    close_mapping = True
    views: list = []
    try:
        memory = segment.buf
        if len(memory) < _HEAD.size:
            raise ShmTransportError(f"segment {slot.name!r} is truncated")
        magic, num_buffers, stream_len = _HEAD.unpack_from(memory, 0)
        if magic != _MAGIC:
            raise ShmTransportError(
                f"segment {slot.name!r} has bad magic {magic!r} (expected {_MAGIC!r})"
            )
        lengths = [
            _LEN.unpack_from(memory, _HEAD.size + index * _LEN.size)[0]
            for index in range(num_buffers)
        ]
        offset = _aligned(_HEAD.size + _LEN.size * num_buffers)
        with memory[offset:offset + stream_len] as stream_view:
            stream = bytes(stream_view)
        offset = _aligned(offset + stream_len)
        for length in lengths:
            if offset + length > len(memory):
                raise ShmTransportError(f"segment {slot.name!r} is truncated")
            view = memory[offset:offset + length]
            if copy:
                # Materialise into a private, writable buffer so the object
                # outlives the mapping; the slice view is released at once.
                with view:
                    views.append(bytearray(view))
            else:
                views.append(view)
            offset = _aligned(offset + length)
        obj = pickle.loads(stream, buffers=views)
        if not copy:
            # The caller's object aliases the mapping: hand over the open
            # segment and skip the close below.
            keepalive.append(segment)
            close_mapping = False
        return obj
    finally:
        if close_mapping:
            # Release every exported memoryview before closing the mapping,
            # otherwise mmap.close() raises BufferError.
            for view in views:
                if isinstance(view, memoryview):
                    view.release()
            segment.close()
        if unlink:
            # Unlinking only removes the name; a zero-copy mapping handed to
            # the caller through ``keepalive`` stays valid until closed.
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - raced
                pass


def discard_segment(slot: ShmSlot) -> bool:
    """Unlink a segment without reading it; returns False when already gone.

    Used by pool teardown to reap in-flight segments whose consumer died
    before attaching -- the guarantee that a worker crash leaves no
    ``/dev/shm`` entries behind.
    """
    try:
        segment = shared_memory.SharedMemory(name=slot.name)
    except FileNotFoundError:
        return False
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - raced with the consumer
        return False
    return True
