"""Incast experiment: fan-in sweep with the congestion-reaction loop on vs off.

The Figure 1c experiment (:mod:`repro.experiments.figure1c`) measures incast
*goodput* collapse.  This experiment closes the loop the reactive features of
the simulator add on top of that fabric: ECN/PCN marking on switch queues,
DCTCP-style ECE echo and cwnd reaction for TCP, TFRC equation-based pacing
and gray-failure detection for Polyraptor.  It sweeps fan-in (how many
workers answer one aggregator at the same instant) crossed with the reaction
loop off (the historical simulator, byte-identical to pre-reaction runs) and
on, for both protocols, and reports the FCT tail -- incast pathology lives in
p99, where drop-tail overflow turns into 200 ms retransmission timeouts.

Every (seed, fan-in, marking, protocol) is an independent
:class:`~repro.experiments.parallel.RunJob`: the workload is generated once
per (seed, fan-in) and shared by every cell that uses it, and all reaction
knobs ride inside the job's :class:`~repro.experiments.config.ExperimentConfig`
(``ecn_enabled`` plus the ``tfrc_pacing``/``gray_detection`` Polyraptor
fields), so the sweep shards over ``--jobs N`` workers with byte-identical
output for any N.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import RunJob, execute_jobs, last_profile
from repro.experiments.report import merge_codec_stats, merge_transport_stats
from repro.network.topology import FatTreeTopology
from repro.sim.randomness import RandomStreams
from repro.utils.cdf import Cdf
from repro.workloads.incast import incast_transfers

#: Cell-label suffix of the reaction-off baseline each ratio is computed against.
MARK_OFF = "mark-off"
MARK_ON = "mark-on"


@dataclass(frozen=True)
class IncastPoint:
    """One protocol's outcome in one (fan-in, marking) cell (pooled across seeds)."""

    protocol: Protocol
    label: str
    num_senders: int
    marking: bool
    completed: int
    offered: int
    median_fct_ms: float
    p90_fct_ms: float
    p99_fct_ms: float
    mean_goodput_gbps: float
    #: median FCT divided by the same protocol's and fan-in's marking-off
    #: median; ``None`` for marking-off cells themselves and whenever either
    #: median is undefined (no completed transfers).
    fct_vs_unmarked: Optional[float]
    #: merged congestion-reaction counters; ``None`` for marking-off cells
    #: (every reactive feature off -> runs carry no transport stats).
    transport_stats: Optional[dict]

    @property
    def completion_fraction(self) -> float:
        """Fraction of offered transfers that completed."""
        return self.completed / self.offered if self.offered else 0.0


@dataclass
class IncastResult:
    """The full incast sweep: (fan-in x marking) cells x protocols."""

    config: ExperimentConfig
    #: cell labels in sweep order (fanin-N/mark-off, fanin-N/mark-on, ...)
    labels: tuple[str, ...] = ()
    #: points[(protocol.value, label)]
    points: dict[tuple[str, str], IncastPoint] = field(default_factory=dict)
    #: per-protocol codec counters merged across every cell and seed
    codec_stats: dict[str, Optional[dict]] = field(default_factory=dict)
    #: Executor accounting for the sweep (see
    #: :class:`~repro.experiments.parallel.ExecutorProfile`).
    exec_profile: Optional[dict] = None

    def point(self, protocol: Protocol, label: str) -> IncastPoint:
        """The summary for one (protocol, cell) pair."""
        return self.points[(protocol.value, label)]


def incast_labels(fanins: tuple[int, ...]) -> tuple[str, ...]:
    """Cell labels in sweep order; shared by expansion and reporting."""
    labels = []
    for fanin in fanins:
        labels.append(f"fanin-{fanin}/{MARK_OFF}")
        labels.append(f"fanin-{fanin}/{MARK_ON}")
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate sweep cells in {labels}")
    return tuple(labels)


def _validate_axes(fanins: tuple[int, ...], response_bytes: int) -> None:
    if not fanins:
        raise ValueError("fanins cannot be empty")
    if any(fanin < 1 for fanin in fanins):
        raise ValueError(f"fan-ins must be positive integers, got {fanins}")
    if response_bytes <= 0:
        raise ValueError(f"response_bytes must be positive, got {response_bytes}")


def reactive_config(config: ExperimentConfig) -> ExperimentConfig:
    """A copy of ``config`` with the full reaction loop switched on.

    ECN marking on both fabrics, TFRC pacing and gray-failure detection for
    Polyraptor (the TCP side's ECE reaction is on by default and becomes
    active the moment the fabric marks).
    """
    return replace(
        config,
        ecn_enabled=True,
        polyraptor=replace(
            config.polyraptor, tfrc_pacing=True, gray_detection=True
        ),
    )


def expand_incast_sweep(
    config: ExperimentConfig,
    fanins: tuple[int, ...],
    response_bytes: int,
    protocols: tuple[Protocol, ...],
    num_seeds: int,
) -> list[RunJob]:
    """Expand seeds x (fan-in x marking) x protocols into fully-by-value jobs.

    Per (seed, fan-in) the incast episode is generated once and shared by
    every marking setting and protocol (the fair-comparison requirement: every
    cell of a fan-in sees byte-identical offered traffic).  The marking-on
    cells differ only in their config -- ``ecn_enabled`` plus the Polyraptor
    ``tfrc_pacing``/``gray_detection`` fields -- which rides inside the job.

    Job keys are ``(seed, protocol.value, label)``.
    """
    _validate_axes(fanins, response_bytes)
    incast_labels(fanins)  # rejects duplicates
    jobs: list[RunJob] = []
    topology = FatTreeTopology(config.fattree_k)
    max_fanin = len(topology.hosts) - 1
    if max(fanins) > max_fanin:
        raise ValueError(
            f"k={config.fattree_k} FatTree supports fan-in <= {max_fanin}, got {max(fanins)}"
        )
    for seed in range(config.seed, config.seed + num_seeds):
        seed_config = config.with_seed(seed)
        marked_config = reactive_config(seed_config)
        streams = RandomStreams(seed_config.seed)
        for fanin in fanins:
            _, transfers = incast_transfers(
                topology,
                fanin,
                response_bytes,
                streams.stream(f"incast.{fanin}"),
                first_transfer_id=1,
            )
            cells = [
                (f"fanin-{fanin}/{MARK_OFF}", seed_config),
                (f"fanin-{fanin}/{MARK_ON}", marked_config),
            ]
            for label, cell_config in cells:
                for protocol in protocols:
                    jobs.append(
                        RunJob(
                            key=(seed, protocol.value, label),
                            protocol=protocol,
                            config=cell_config,
                            transfers=tuple(transfers),
                        )
                    )
    return jobs


def run_incast(
    config: ExperimentConfig | None = None,
    fanins: tuple[int, ...] = (4, 8, 15),
    response_bytes: int = 64 * 1024,
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
    num_seeds: int = 1,
    jobs: int = 1,
) -> IncastResult:
    """Run the incast fan-in x marking sweep, summarised per (protocol, cell).

    Each fan-in's marking-off cell is the baseline its ``fct_vs_unmarked``
    ratio is computed against.  Results are byte-identical for every ``jobs``
    value.
    """
    cfg = config or ExperimentConfig.scaled_default()
    labels = incast_labels(fanins)
    sweep = expand_incast_sweep(cfg, fanins, response_bytes, protocols, num_seeds)
    runs = execute_jobs(sweep, num_workers=jobs, label="incast")

    result = IncastResult(config=cfg, labels=labels)
    by_cell: dict[tuple[str, str], list] = {}
    for job, run in zip(sweep, runs):
        _, protocol_value, label = job.key
        by_cell.setdefault((protocol_value, label), []).append(run)

    for protocol in protocols:
        unmarked_median: dict[int, float] = {}
        for fanin in fanins:
            for marking in (False, True):
                suffix = MARK_ON if marking else MARK_OFF
                label = f"fanin-{fanin}/{suffix}"
                cell_runs = by_cell[(protocol.value, label)]
                records = [
                    record
                    for run in cell_runs
                    for record in run.registry.records
                    if record.label == "incast"
                ]
                completed = [record for record in records if record.completed]
                fcts_ms = [record.flow_completion_time * 1e3 for record in completed]
                goodputs = [record.goodput_gbps for record in completed]
                fct_cdf = Cdf.from_samples(fcts_ms) if fcts_ms else None
                median = fct_cdf.median() if fct_cdf else float("inf")
                ratio: Optional[float] = None
                if not marking:
                    unmarked_median[fanin] = median
                else:
                    baseline = unmarked_median.get(fanin, float("inf"))
                    if math.isfinite(median) and math.isfinite(baseline) and baseline > 0:
                        ratio = median / baseline
                result.points[(protocol.value, label)] = IncastPoint(
                    protocol=protocol,
                    label=label,
                    num_senders=fanin,
                    marking=marking,
                    completed=len(completed),
                    offered=len(records),
                    median_fct_ms=median,
                    p90_fct_ms=fct_cdf.quantile(0.9) if fct_cdf else float("inf"),
                    p99_fct_ms=fct_cdf.quantile(0.99) if fct_cdf else float("inf"),
                    mean_goodput_gbps=sum(goodputs) / len(goodputs) if goodputs else 0.0,
                    fct_vs_unmarked=ratio,
                    transport_stats=merge_transport_stats(
                        [run.transport_stats for run in cell_runs]
                    ),
                )
        result.codec_stats[protocol.value] = merge_codec_stats(
            [
                run.codec_stats
                for label in labels
                for run in by_cell[(protocol.value, label)]
            ]
        )
    profile = last_profile()
    result.exec_profile = profile.as_dict() if profile is not None else None
    return result
