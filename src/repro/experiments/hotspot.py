"""Network-hotspot experiment (the paper's "current work" direction).

The discussion section of the paper lists "the existence of network hotspots"
as an evaluation in progress.  This module provides that experiment: a set of
aggressor hosts continuously blast long transfers at a single victim rack,
creating persistent congestion on the paths through that rack's uplinks,
while a measured set of permutation transfers runs across the rest of the
fabric.  Per-packet spraying lets Polyraptor route around the hot links on a
packet-by-packet basis; per-flow ECMP pins an unlucky TCP flow to a hot path
for its entire lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import RunJob, execute_jobs
from repro.network.topology import FatTreeTopology
from repro.sim.randomness import RandomStreams
from repro.workloads.spec import TransferKind, TransferSpec


@dataclass(frozen=True)
class HotspotResult:
    """Outcome of one protocol's run under a hotspot."""

    protocol: Protocol
    mean_goodput_gbps: float
    p10_goodput_gbps: float
    completion_fraction: float
    trimmed_packets: int
    dropped_packets: int


def _hotspot_workload(
    config: ExperimentConfig,
    num_measured: int,
    num_aggressors: int,
    aggressor_bytes: int,
) -> tuple[FatTreeTopology, list[TransferSpec]]:
    """Build the measured permutation transfers plus the aggressor transfers."""
    topology = FatTreeTopology(config.fattree_k)
    streams = RandomStreams(config.seed)
    rng = streams.stream("hotspot")
    hosts = topology.hosts

    # The victim rack: every aggressor targets hosts in this one rack, so its
    # uplinks (and the core links feeding them) become persistently hot.
    victim_rack_hosts = topology.hosts_in_same_rack(hosts[-1])
    aggressor_candidates = [h for h in hosts if h not in victim_rack_hosts]
    aggressors = rng.sample(aggressor_candidates, min(num_aggressors, len(aggressor_candidates)))

    transfers: list[TransferSpec] = []
    for index, aggressor in enumerate(aggressors):
        victim = victim_rack_hosts[index % len(victim_rack_hosts)]
        transfers.append(
            TransferSpec(
                transfer_id=1000 + index,
                kind=TransferKind.UNICAST,
                client=aggressor,
                peers=(victim,),
                size_bytes=aggressor_bytes,
                start_time=0.0,
                label="hotspot",
                is_background=True,
            )
        )

    # Measured transfers: a permutation round over the non-victim hosts,
    # started shortly after the hotspot is established.
    measured_hosts = [h for h in hosts if h not in victim_rack_hosts]
    shuffled = rng.sample(measured_hosts, len(measured_hosts))
    pairs = list(zip(shuffled, shuffled[1:] + shuffled[:1]))[:num_measured]
    for index, (src, dst) in enumerate(pairs):
        transfers.append(
            TransferSpec(
                transfer_id=index,
                kind=TransferKind.UNICAST,
                client=src,
                peers=(dst,),
                size_bytes=config.object_bytes,
                start_time=0.0005,
                label="measured",
            )
        )
    return topology, transfers


def run_hotspot_experiment(
    config: ExperimentConfig | None = None,
    num_measured: int = 8,
    num_aggressors: int = 6,
    aggressor_bytes: int = 2_000_000,
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
    jobs: int = 1,
) -> dict[Protocol, HotspotResult]:
    """Run the hotspot scenario under each protocol and summarise the measured flows."""
    cfg = config or ExperimentConfig.scaled_default()
    _, transfers = _hotspot_workload(cfg, num_measured, num_aggressors, aggressor_bytes)
    sweep = [
        RunJob(key=protocol, protocol=protocol, config=cfg, transfers=tuple(transfers))
        for protocol in protocols
    ]
    results: dict[Protocol, HotspotResult] = {}
    for protocol, run in zip(protocols, execute_jobs(sweep, num_workers=jobs, label="hotspot")):
        goodputs = sorted(run.goodputs_gbps("measured"))
        mean = sum(goodputs) / len(goodputs) if goodputs else 0.0
        measured_records = [r for r in run.registry.records if r.label == "measured"]
        completed = sum(1 for r in measured_records if r.completed)
        results[protocol] = HotspotResult(
            protocol=protocol,
            mean_goodput_gbps=mean,
            p10_goodput_gbps=goodputs[0] if goodputs else 0.0,
            completion_fraction=completed / len(measured_records) if measured_records else 0.0,
            trimmed_packets=run.trimmed_packets,
            dropped_packets=run.dropped_packets,
        )
    return results


def format_hotspot(results: dict[Protocol, HotspotResult]) -> str:
    """Render the hotspot comparison as a text table."""
    lines = [
        "Hotspot extension -- measured permutation flows sharing the fabric with a hot rack",
        f"{'protocol':<12} {'mean Gbps':>10} {'worst Gbps':>11} {'completed':>10}",
        f"{'-' * 12} {'-' * 10} {'-' * 11} {'-' * 10}",
    ]
    for protocol, result in results.items():
        lines.append(
            f"{protocol.value:<12} {result.mean_goodput_gbps:>10.3f} "
            f"{result.p10_goodput_gbps:>11.3f} {result.completion_fraction:>10.2f}"
        )
    return "\n".join(lines)
