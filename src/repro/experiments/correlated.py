"""Correlated & gray failure experiment: realistic damage, slow control planes.

The resilience experiment (:mod:`repro.experiments.resilience`) injects
*independent* faults and lets routing reconverge instantaneously -- the
friendliest possible failure model.  Real failure studies disagree on both
axes: links share conduits, linecards and power feeds, so one physical event
takes down a *set* of links (shared-risk link groups), rack power loss kills
a ToR and every host behind it at once, a large share of incidents are
"gray" (no link goes down, many links quietly drop a little -- routing never
reacts), and when routing *does* react, the control plane needs time during
which stale tables black-hole traffic.  The PCN congestion analyses and
reactive distributed congestion-control evaluations in PAPERS.md raise the
same concern from the signalling side: loss regimes that detection misses
are the ones transports must absorb on their own.

This experiment sweeps three hostile axes against the same permutation
workload and compares Polyraptor and per-flow-ECMP TCP against their own
healthy baselines:

* **SRLG size** -- one shared-risk event taking down 1..n fabric links
  anchored at one switch (``shared_risk_group_schedule``), plus a full rack
  power event (``rack_power_schedule``);
* **gray-loss rate** -- low-probability Bernoulli loss (and a mild rate
  degrade) smeared across half the fabric links
  (``gray_failure_schedule``), with no routing response at all;
* **convergence delay** -- the *same* SRLG event replayed under increasing
  control-plane lag (``ExperimentConfig.convergence_delay_s``), isolating
  what reconvergence speed is worth.

Every (seed, cell, protocol) is an independent
:class:`~repro.experiments.parallel.RunJob`: schedules are immutable value
objects generated in the parent, the convergence knob rides inside the
job's config, so the sweep shards over ``--jobs N`` workers with
byte-identical output for any N.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import RunJob, execute_jobs, last_profile
from repro.experiments.report import merge_codec_stats, merge_fault_stats
from repro.experiments.resilience import fault_window, permutation_workload
from repro.faults.schedule import (
    FaultSchedule,
    gray_failure_schedule,
    rack_power_schedule,
    shared_risk_group_schedule,
)
from repro.network.topology import FatTreeTopology
from repro.sim.randomness import RandomStreams
from repro.utils.cdf import Cdf

#: Cell label of the healthy baseline every ratio is computed against.
HEALTHY = "healthy"

#: Fraction of fabric links a gray-failure cell smears loss over.
GRAY_AFFECTED_FRACTION = 0.5
#: Mild serialisation slowdown gray links suffer on top of the loss.
GRAY_DEGRADE_TO = 0.85


@dataclass(frozen=True)
class CorrelatedPoint:
    """One protocol's outcome in one failure cell (pooled across seeds)."""

    protocol: Protocol
    label: str
    completed: int
    offered: int
    median_fct_ms: float
    p90_fct_ms: float
    mean_goodput_gbps: float
    #: median FCT divided by the same protocol's healthy-cell median FCT;
    #: ``None`` when either median is undefined (no completed transfers)
    fct_vs_healthy: Optional[float]
    fault_stats: Optional[dict]

    @property
    def completion_fraction(self) -> float:
        """Fraction of offered transfers that completed."""
        return self.completed / self.offered if self.offered else 0.0


@dataclass
class CorrelatedResult:
    """The full correlated sweep: failure cells x protocols."""

    config: ExperimentConfig
    #: cell labels in sweep order (healthy, srlg-*, rack, gray-*, delay-*)
    labels: tuple[str, ...] = ()
    #: points[(protocol.value, label)]
    points: dict[tuple[str, str], CorrelatedPoint] = field(default_factory=dict)
    #: per-protocol codec counters merged across every cell and seed
    codec_stats: dict[str, Optional[dict]] = field(default_factory=dict)
    #: Executor accounting for the sweep (see
    #: :class:`~repro.experiments.parallel.ExecutorProfile`).
    exec_profile: Optional[dict] = None

    def point(self, protocol: Protocol, label: str) -> CorrelatedPoint:
        """The summary for one (protocol, cell) pair."""
        return self.points[(protocol.value, label)]


def correlated_labels(
    srlg_sizes: tuple[int, ...],
    gray_rates: tuple[float, ...],
    convergence_delays: tuple[float, ...],
) -> tuple[str, ...]:
    """Cell labels in sweep order; shared by expansion and reporting."""
    labels = [HEALTHY]
    labels += [f"srlg-{size}" for size in srlg_sizes]
    labels.append("rack")
    labels += [f"gray-{rate:g}" for rate in gray_rates]
    labels += [f"delay-{delay * 1e3:g}ms" for delay in convergence_delays]
    if len(set(labels)) != len(labels):
        raise ValueError(f"duplicate sweep cells in {labels}")
    return tuple(labels)


def _validate_axes(
    srlg_sizes: tuple[int, ...],
    gray_rates: tuple[float, ...],
    convergence_delays: tuple[float, ...],
) -> None:
    if not srlg_sizes:
        raise ValueError("srlg_sizes cannot be empty (the delay axis reuses its first size)")
    if any(size < 1 for size in srlg_sizes):
        raise ValueError(f"srlg_sizes must be positive integers, got {srlg_sizes}")
    if any(not 0.0 < rate <= 1.0 for rate in gray_rates):
        raise ValueError(f"gray rates must be probabilities in (0, 1], got {gray_rates}")
    if any(delay < 0 for delay in convergence_delays):
        raise ValueError(f"convergence delays cannot be negative, got {convergence_delays}")


def expand_correlated_sweep(
    config: ExperimentConfig,
    srlg_sizes: tuple[int, ...],
    gray_rates: tuple[float, ...],
    convergence_delays: tuple[float, ...],
    protocols: tuple[Protocol, ...],
    num_seeds: int,
) -> list[RunJob]:
    """Expand seeds x cells x protocols into fully-by-value jobs.

    Per seed, the workload is generated once (shared by every cell and
    protocol -- the fair-comparison requirement) and each cell's fault
    schedule once (shared by both protocols, so they face the same broken
    fabric).  The convergence-delay cells replay the *same* SRLG schedule
    (group size ``srlg_sizes[0]``) under different
    ``config.convergence_delay_s`` values, so the delay axis isolates
    control-plane lag with everything else held fixed -- a 0-delay cell is
    byte-identical to the matching plain SRLG cell.

    Job keys are ``(seed, protocol.value, label)``.
    """
    _validate_axes(srlg_sizes, gray_rates, convergence_delays)
    correlated_labels(srlg_sizes, gray_rates, convergence_delays)  # rejects duplicates
    jobs: list[RunJob] = []
    topology = FatTreeTopology(config.fattree_k)
    for seed in range(config.seed, config.seed + num_seeds):
        seed_config = config.with_seed(seed)
        transfers = permutation_workload(seed_config, topology)
        start, duration = fault_window(seed_config, transfers)
        streams = RandomStreams(seed_config.seed)

        cells: list[tuple[str, Optional[FaultSchedule], ExperimentConfig]] = [
            (HEALTHY, None, seed_config)
        ]
        delay_reference: Optional[FaultSchedule] = None
        for size in srlg_sizes:
            schedule = shared_risk_group_schedule(
                topology, streams.stream(f"faults.srlg.{size}"),
                group_size=size, start_time=start, duration=duration,
            )
            if delay_reference is None:
                delay_reference = schedule
            cells.append((f"srlg-{size}", schedule, seed_config))
        cells.append((
            "rack",
            rack_power_schedule(
                topology, streams.stream("faults.rack"),
                num_racks=1, start_time=start, duration=duration,
            ),
            seed_config,
        ))
        for rate in gray_rates:
            schedule = gray_failure_schedule(
                topology, streams.stream(f"faults.gray.{rate:g}"),
                loss_probability=rate,
                affected_fraction=GRAY_AFFECTED_FRACTION,
                degrade_to=GRAY_DEGRADE_TO,
                start_time=start, duration=duration,
            )
            cells.append((f"gray-{rate:g}", schedule, seed_config))
        for delay in convergence_delays:
            cells.append((
                f"delay-{delay * 1e3:g}ms",
                delay_reference,
                replace(seed_config, convergence_delay_s=delay),
            ))

        for label, schedule, cell_config in cells:
            for protocol in protocols:
                jobs.append(
                    RunJob(
                        key=(seed, protocol.value, label),
                        protocol=protocol,
                        config=cell_config,
                        transfers=tuple(transfers),
                        fault_schedule=schedule,
                    )
                )
    return jobs


def run_correlated(
    config: ExperimentConfig | None = None,
    srlg_sizes: tuple[int, ...] = (1, 3),
    gray_rates: tuple[float, ...] = (0.01, 0.05),
    convergence_delays: tuple[float, ...] = (0.0, 0.001),
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
    num_seeds: int = 1,
    jobs: int = 1,
) -> CorrelatedResult:
    """Run the correlated/gray/convergence sweep, summarised per (protocol, cell).

    The healthy cell is always included -- it is the baseline the
    ``fct_vs_healthy`` ratios are computed against.  Results are
    byte-identical for every ``jobs`` value.
    """
    cfg = config or ExperimentConfig.scaled_default()
    labels = correlated_labels(srlg_sizes, gray_rates, convergence_delays)
    sweep = expand_correlated_sweep(
        cfg, srlg_sizes, gray_rates, convergence_delays, protocols, num_seeds
    )
    # Cells that are byte-identical by construction -- the delay-0 anchor
    # replays the first SRLG cell's schedule under an unchanged config --
    # simulate once and share the RunResult; the output cannot differ, only
    # the wall clock does.
    fingerprints = [
        (job.protocol, job.config, job.transfers, job.fault_schedule) for job in sweep
    ]
    unique_index: dict = {}
    unique_jobs: list[RunJob] = []
    for job, fingerprint in zip(sweep, fingerprints):
        if fingerprint not in unique_index:
            unique_index[fingerprint] = len(unique_jobs)
            unique_jobs.append(job)
    unique_runs = execute_jobs(unique_jobs, num_workers=jobs, label="correlated")
    runs = [unique_runs[unique_index[fingerprint]] for fingerprint in fingerprints]

    result = CorrelatedResult(config=cfg, labels=labels)
    by_cell: dict[tuple[str, str], list] = {}
    for job, run in zip(sweep, runs):
        _, protocol_value, label = job.key
        by_cell.setdefault((protocol_value, label), []).append(run)

    for protocol in protocols:
        healthy_median = float("inf")
        for label in labels:
            cell_runs = by_cell[(protocol.value, label)]
            records = [
                record
                for run in cell_runs
                for record in run.registry.records
                if record.label == "foreground"
            ]
            completed = [record for record in records if record.completed]
            fcts_ms = [record.flow_completion_time * 1e3 for record in completed]
            goodputs = [record.goodput_gbps for record in completed]
            fct_cdf = Cdf.from_samples(fcts_ms) if fcts_ms else None
            median = fct_cdf.median() if fct_cdf else float("inf")
            if label == HEALTHY:
                healthy_median = median
            if math.isfinite(median) and math.isfinite(healthy_median) and healthy_median > 0:
                ratio: Optional[float] = median / healthy_median
            else:
                ratio = None
            result.points[(protocol.value, label)] = CorrelatedPoint(
                protocol=protocol,
                label=label,
                completed=len(completed),
                offered=len(records),
                median_fct_ms=median,
                p90_fct_ms=fct_cdf.quantile(0.9) if fct_cdf else float("inf"),
                mean_goodput_gbps=sum(goodputs) / len(goodputs) if goodputs else 0.0,
                fct_vs_healthy=ratio,
                fault_stats=merge_fault_stats([run.fault_stats for run in cell_runs]),
            )
        result.codec_stats[protocol.value] = merge_codec_stats(
            [
                run.codec_stats
                for label in labels
                for run in by_cell[(protocol.value, label)]
            ]
        )
    profile = last_profile()
    result.exec_profile = profile.as_dict() if profile is not None else None
    return result
