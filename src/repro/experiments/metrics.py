"""Metrics used by the figures: rank curves, aggregate goodputs, CIs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.transport.base import TransferRegistry
from repro.utils.cdf import Cdf, confidence_interval_95, rank_curve


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics of one goodput series (one curve of a figure)."""

    label: str
    count: int
    mean_gbps: float
    median_gbps: float
    p10_gbps: float
    p90_gbps: float
    min_gbps: float
    max_gbps: float

    @classmethod
    def from_goodputs(cls, label: str, goodputs_gbps: Sequence[float]) -> "SeriesSummary":
        """Build a summary from raw per-transfer goodputs."""
        if not goodputs_gbps:
            raise ValueError(f"series {label!r} has no completed transfers")
        cdf = Cdf.from_samples(goodputs_gbps)
        return cls(
            label=label,
            count=len(cdf),
            mean_gbps=cdf.mean(),
            median_gbps=cdf.median(),
            p10_gbps=cdf.quantile(0.10),
            p90_gbps=cdf.quantile(0.90),
            min_gbps=cdf.values[0],
            max_gbps=cdf.values[-1],
        )


def goodput_rank_series(
    registry: TransferRegistry, label: Optional[str] = "foreground"
) -> list[tuple[int, float]]:
    """(rank, goodput Gbps) pairs sorted from the slowest session to the fastest.

    This is exactly the series plotted in the paper's Figures 1a and 1b.
    """
    return rank_curve(registry.goodputs_gbps(label))


def aggregate_goodput_gbps(
    registry: TransferRegistry, label: Optional[str] = None
) -> float:
    """Aggregate application goodput of a set of transfers.

    Total bytes delivered divided by the span from the earliest start to the
    latest completion -- the natural metric for the Incast scenario where all
    responses target one receiver.
    """
    records = [
        record
        for record in registry.completed_records
        if label is None or record.label == label
    ]
    if not records:
        return 0.0
    total_bytes = sum(record.transfer_bytes for record in records)
    span = max(r.completion_time for r in records) - min(r.start_time for r in records)
    if span <= 0:
        return 0.0
    return total_bytes * 8 / span / 1e9


def mean_with_confidence(samples: Sequence[float]) -> tuple[float, float]:
    """(mean, 95% CI half-width) across repetition seeds, as in Figure 1c."""
    return confidence_interval_95(samples)
