"""Experiment configuration.

The paper's configuration (Figure 1 caption): a 250-server FatTree (k = 10),
1 Gbps links, 10 microsecond link delay, 10,000 sessions of 4 MB each of
which 20% are background traffic, Poisson arrivals with lambda = 2560, a
permutation traffic matrix, and five repetitions with different seeds.

A packet-level pure-Python simulation of that full configuration is
computationally impractical (tens of millions of packets per protocol per
series), so :meth:`ExperimentConfig.scaled_default` provides a smaller
configuration that keeps every *ratio* the paper's comparison depends on
(relative offered load, shallow switch buffers, replicas outside the client
rack, 20% background share) while finishing in seconds.
:meth:`ExperimentConfig.paper_scale` records the full-scale parameters for
completeness; it can be run, given patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from repro.core.config import PolyraptorConfig
from repro.network.network import NetworkConfig
from repro.obs.config import TelemetryConfig
from repro.network.routing import RoutingMode
from repro.transport.tcp.config import TcpConfig
from repro.utils.units import GBPS, KILOBYTE, MEGABYTE, MICROSECOND
from repro.utils.validation import check_positive, check_probability


class Protocol(str, Enum):
    """Transport under test."""

    POLYRAPTOR = "polyraptor"
    TCP = "tcp"


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one experiment series."""

    fattree_k: int = 4
    link_rate_bps: float = 1 * GBPS
    link_delay_s: float = 10 * MICROSECOND

    num_foreground_transfers: int = 40
    object_bytes: int = 256 * KILOBYTE
    background_fraction: float = 0.2
    offered_load: float = 0.2
    seed: int = 1
    max_sim_time_s: float = 20.0

    polyraptor: PolyraptorConfig = field(default_factory=PolyraptorConfig)
    tcp: TcpConfig = field(default_factory=TcpConfig)
    data_queue_capacity_packets: int = 8
    droptail_capacity_packets: int = 100
    #: routing-convergence lag after a topology change (0 = instantaneous,
    #: the historical behaviour); applies to both protocols' fabrics and
    #: rides inside RunJob configs, so sharded sweeps stay byte-identical.
    convergence_delay_s: float = 0.0
    #: seeded jitter fraction on the convergence lag (see NetworkConfig).
    convergence_jitter: float = 0.0
    #: ECN/PCN marking on switch queues (off = the historical fabric,
    #: byte-identical to pre-marking runs).  Applies to both protocols'
    #: fabrics and rides inside RunJob configs.
    ecn_enabled: bool = False
    #: instantaneous marking threshold in packets; ``None`` picks a fabric
    #: default -- half the data-queue capacity on trimming switches,
    #: a fifth of the drop-tail capacity otherwise (K = 20 for the default
    #: 100-packet queue, the classic DCTCP-style step threshold).
    ecn_threshold_packets: int | None = None
    #: EWMA weight of the marking hysteresis (see NetworkConfig).
    ecn_ewma_weight: float = 0.2
    #: flight-recorder telemetry (see :mod:`repro.obs`).  ``None`` -- the
    #: default -- means no telemetry at all: no sampler process, no extra
    #: random stream, and result fingerprints byte-identical to runs from
    #: before the telemetry layer existed.  Rides inside RunJob configs, so
    #: sharded sweeps record byte-identical telemetry for any worker count.
    telemetry: Optional[TelemetryConfig] = None

    def __post_init__(self) -> None:
        if self.fattree_k < 2 or self.fattree_k % 2:
            raise ValueError("fattree_k must be an even integer >= 2")
        check_positive("link_rate_bps", self.link_rate_bps)
        check_positive("num_foreground_transfers", self.num_foreground_transfers)
        check_positive("object_bytes", self.object_bytes)
        check_probability("background_fraction", self.background_fraction)
        check_positive("offered_load", self.offered_load)
        check_positive("max_sim_time_s", self.max_sim_time_s)
        if self.convergence_delay_s < 0:
            raise ValueError("convergence_delay_s cannot be negative")
        if self.convergence_jitter < 0:
            raise ValueError("convergence_jitter cannot be negative")
        if self.ecn_threshold_packets is not None:
            check_positive("ecn_threshold_packets", self.ecn_threshold_packets)
        if not (0.0 < self.ecn_ewma_weight <= 1.0):
            raise ValueError("ecn_ewma_weight must be in (0, 1]")

    # Derived quantities ---------------------------------------------------------

    @property
    def num_hosts(self) -> int:
        """Hosts in the FatTree (k^3 / 4)."""
        return (self.fattree_k ** 3) // 4

    @property
    def num_background_transfers(self) -> int:
        """Background transfers so that they are ``background_fraction`` of all sessions."""
        if self.background_fraction == 0:
            return 0
        total = self.num_foreground_transfers / (1 - self.background_fraction)
        return max(0, round(total) - self.num_foreground_transfers)

    @property
    def arrival_rate_per_second(self) -> float:
        """Poisson lambda chosen so the aggregate offered load matches ``offered_load``.

        offered_load = lambda * object_bytes * 8 / (num_hosts * link_rate).
        For the paper's numbers (250 hosts, 4 MB, 1 Gbps, lambda = 2560) this
        inverts to an offered load of ~0.33, which is what the scaled-down
        defaults keep.
        """
        return (
            self.offered_load
            * self.num_hosts
            * self.link_rate_bps
            / (8 * self.object_bytes)
        )

    def network_config(self, protocol: Protocol) -> NetworkConfig:
        """The fabric configuration used for a given protocol.

        Polyraptor runs on trimming switches with per-packet spraying; the TCP
        baseline runs on drop-tail switches with per-flow ECMP.
        """
        if protocol is Protocol.POLYRAPTOR:
            return NetworkConfig(
                link_rate_bps=self.link_rate_bps,
                link_delay_s=self.link_delay_s,
                switch_queue="trimming",
                data_queue_capacity_packets=self.data_queue_capacity_packets,
                routing_mode=RoutingMode.PACKET_SPRAY,
                convergence_delay_s=self.convergence_delay_s,
                convergence_jitter=self.convergence_jitter,
                ecn_enabled=self.ecn_enabled,
                ecn_threshold_packets=self.resolved_ecn_threshold(Protocol.POLYRAPTOR),
                ecn_ewma_weight=self.ecn_ewma_weight,
            )
        return NetworkConfig(
            link_rate_bps=self.link_rate_bps,
            link_delay_s=self.link_delay_s,
            switch_queue="droptail",
            droptail_capacity_packets=self.droptail_capacity_packets,
            routing_mode=RoutingMode.ECMP_FLOW,
            convergence_delay_s=self.convergence_delay_s,
            convergence_jitter=self.convergence_jitter,
            ecn_enabled=self.ecn_enabled,
            ecn_threshold_packets=self.resolved_ecn_threshold(Protocol.TCP),
            ecn_ewma_weight=self.ecn_ewma_weight,
        )

    def resolved_ecn_threshold(self, protocol: Protocol) -> int:
        """The marking threshold in force for a protocol's fabric.

        An explicit ``ecn_threshold_packets`` wins; otherwise trimming
        fabrics mark at half the (shallow) data-queue capacity and drop-tail
        fabrics at a fifth of their capacity, both at least one packet.
        """
        if self.ecn_threshold_packets is not None:
            return self.ecn_threshold_packets
        if protocol is Protocol.POLYRAPTOR:
            return max(1, self.data_queue_capacity_packets // 2)
        return max(1, self.droptail_capacity_packets // 5)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """A copy of this configuration with a different seed."""
        return replace(self, seed=seed)

    # Presets ----------------------------------------------------------------------

    @classmethod
    def scaled_default(cls) -> "ExperimentConfig":
        """The default scaled-down configuration used by tests and benchmarks."""
        return cls()

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """An even smaller configuration for unit tests (seconds of wall time)."""
        return cls(
            fattree_k=4,
            num_foreground_transfers=12,
            object_bytes=128 * KILOBYTE,
            max_sim_time_s=10.0,
        )

    @classmethod
    def paper_fabric(cls) -> "ExperimentConfig":
        """The paper's k=10, 250-host fabric at a tractable session count.

        The full :meth:`paper_scale` workload (10,000 x 4 MB sessions)
        remains impractical in pure Python, but the fabric itself -- the
        part the resilience and figure-1 claims depend on, with real
        oversubscription and path diversity -- is now affordable per seed:
        100 sessions at the paper's ~0.33 offered load finish in minutes,
        and the accelerated GF(256) kernel layer keeps payload-carrying
        variants (``PolyraptorConfig(carry_payload=True)``) in the same
        ballpark.  Use with ``--seeds 5`` for the paper's five-repetition
        methodology; the CLI exposes this preset as ``--paper-scale``.
        """
        return cls(
            fattree_k=10,
            num_foreground_transfers=100,
            object_bytes=256 * KILOBYTE,
            background_fraction=0.2,
            offered_load=0.33,
            max_sim_time_s=30.0,
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's full-scale configuration (impractically slow in pure Python).

        250 hosts (k = 10), 10,000 sessions of 4 MB, 20% background, Poisson
        lambda = 2560 (offered load ~0.33 at 1 Gbps).
        """
        return cls(
            fattree_k=10,
            num_foreground_transfers=8000,
            object_bytes=4 * MEGABYTE,
            background_fraction=0.2,
            offered_load=0.33,
            max_sim_time_s=10.0,
        )
