"""Plain-text rendering of experiment results.

The benchmark harness prints these tables so that a run of
``pytest benchmarks/ --benchmark-only`` reproduces, in text form, the same
rows/series the paper's figures report.
"""

from __future__ import annotations

import fnmatch
import math
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - type hints only; avoids circular imports
    from repro.experiments.ablations import AblationPoint, OverheadPoint
    from repro.experiments.correlated import CorrelatedResult
    from repro.experiments.figure1a import Figure1aResult
    from repro.experiments.figure1b import Figure1bResult
    from repro.experiments.figure1c import Figure1cResult
    from repro.experiments.incast import IncastResult
    from repro.experiments.resilience import ResilienceResult


def _fct_cell(value: float) -> str:
    """Format an FCT quantile; cells with no completed transfers (infinite
    quantiles) render as ``-``, like the undefined degradation ratio."""
    return f"{value:.3f}" if math.isfinite(value) else "-"


def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_rank_figure(result: Figure1aResult | Figure1bResult, title: str) -> str:
    """Render a Figure 1a/1b result: one row per series with goodput quantiles."""
    rows = []
    for label in sorted(result.summaries):
        summary = result.summaries[label]
        rows.append(
            [
                label,
                str(summary.count),
                f"{summary.p10_gbps:.3f}",
                f"{summary.median_gbps:.3f}",
                f"{summary.mean_gbps:.3f}",
                f"{summary.p90_gbps:.3f}",
            ]
        )
    table = _format_table(
        ["series", "sessions", "p10 Gbps", "median Gbps", "mean Gbps", "p90 Gbps"], rows
    )
    return f"{title}\n{table}"


def format_figure1c(result: Figure1cResult, title: str = "Figure 1c (Incast)") -> str:
    """Render Figure 1c: one row per (series, sender count) with mean +/- CI."""
    rows = []
    for label in sorted(result.series):
        for point in result.series[label]:
            rows.append(
                [
                    label,
                    str(point.num_senders),
                    f"{point.mean_goodput_gbps:.3f}",
                    f"+/-{point.ci95_gbps:.3f}",
                ]
            )
    table = _format_table(["series", "senders", "goodput Gbps", "95% CI"], rows)
    return f"{title}\n{table}"


def format_ablation(points: Sequence[AblationPoint], title: str) -> str:
    """Render an ablation series."""
    rows = [
        [point.label, f"{point.goodput_gbps:.3f}", str(point.trimmed_packets), str(point.dropped_packets)]
        for point in points
    ]
    table = _format_table(["configuration", "goodput Gbps", "trimmed", "dropped"], rows)
    return f"{title}\n{table}"


def _merge_cache_counters(caches: Sequence[Mapping], name: str) -> dict:
    """Sum hit/miss/eviction counters and recompute the rate from the totals."""
    hits = sum(cache.get("hits", 0) for cache in caches)
    misses = sum(cache.get("misses", 0) for cache in caches)
    lookups = hits + misses
    return {
        "name": name,
        "hits": hits,
        "misses": misses,
        "evictions": sum(cache.get("evictions", 0) for cache in caches),
        "hit_rate": hits / lookups if lookups else 0.0,
    }


def merge_codec_stats(stats_list: Sequence[Optional[dict]]) -> Optional[dict]:
    """Aggregate per-run codec statistics across the shards of a sweep.

    Block and plan-cache counters (overall and decode-side) are summed and
    hit rates recomputed from the totals, so a merged dict has the same
    shape as a single run's ``RunResult.codec_stats``; a ``shards`` field
    records how many runs contributed.  ``backend`` and ``kernel`` join the
    distinct names seen with ``+`` (shards normally agree).
    ``cached_plans`` is the *maximum* across shards (each shard holds its
    own cache, typically seeded with the same pre-warmed plans, so summing
    would double-count).  Runs without codec work (``None``, e.g. TCP
    baselines) are skipped; returns ``None`` when no run carried stats.
    """
    present = [stats for stats in stats_list if stats]
    if not present:
        return None
    backends = sorted({str(stats.get("backend", "?")) for stats in present})
    kernels = sorted({str(stats.get("kernel", "?")) for stats in present})
    merged = {
        "backend": "+".join(backends),
        "kernel": "+".join(kernels),
        "canonical_decode_plans": all(
            stats.get("canonical_decode_plans", True) for stats in present
        ),
        "blocks_encoded": sum(stats.get("blocks_encoded", 0) for stats in present),
        "blocks_decoded": sum(stats.get("blocks_decoded", 0) for stats in present),
        "plan_cache": _merge_cache_counters(
            [stats.get("plan_cache", {}) for stats in present], "rq_plan_cache"
        ),
        "decode_plan_cache": _merge_cache_counters(
            [stats.get("decode_plan_cache", {}) for stats in present],
            "rq_decode_plan_cache",
        ),
        "decode_plan_retries": sum(
            stats.get("decode_plan_retries", 0) for stats in present
        ),
        "cached_plans": max(stats.get("cached_plans", 0) for stats in present),
        "shards": len(present),
    }
    # Any counter this merger does not know by name is summed generically, so
    # a newly added codec counter survives a sharded merge instead of being
    # silently dropped (which would make --jobs N diverge from --jobs 1).
    known = set(merged)
    extra_keys = sorted({key for stats in present for key in stats} - known)
    for key in extra_keys:
        values = [stats.get(key, 0) for stats in present]
        if all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in values
        ):
            merged[key] = sum(values)
    return merged


def format_codec_stats(
    stats_by_label: Mapping[str, Optional[dict]],
    title: str = "RQ codec backend / plan cache",
) -> str:
    """Render per-run codec statistics (backend, kernel, plan-cache counters).

    The ``dec hits`` / ``dec rate`` columns report the decode-side subset of
    the plan cache -- the counters canonical decode-plan keys are designed
    to improve under loss.  Runs without codec work (TCP baselines) render
    as ``-`` rows, so the table always lists every series of an experiment.
    """
    rows = []
    for label in sorted(stats_by_label):
        stats = stats_by_label[label]
        if not stats:
            rows.append([label] + ["-"] * 9)
            continue
        cache = stats.get("plan_cache", {})
        decode_cache = stats.get("decode_plan_cache", {})
        rows.append(
            [
                label,
                str(stats.get("backend", "?")),
                str(stats.get("kernel", "?")),
                str(stats.get("blocks_encoded", 0)),
                str(stats.get("blocks_decoded", 0)),
                str(cache.get("hits", 0)),
                str(cache.get("misses", 0)),
                f"{cache.get('hit_rate', 0.0):.3f}",
                str(decode_cache.get("hits", 0)),
                f"{decode_cache.get('hit_rate', 0.0):.3f}",
            ]
        )
    table = _format_table(
        [
            "series",
            "backend",
            "kernel",
            "blocks enc",
            "blocks dec",
            "plan hits",
            "plan misses",
            "hit rate",
            "dec hits",
            "dec rate",
        ],
        rows,
    )
    return f"{title}\n{table}"


def format_exec_profile(profile: Optional[dict], title: str = "Executor profile") -> str:
    """Render one sweep's executor accounting as a two-row table.

    Takes the ``exec_profile`` dict a result object carries (an
    :class:`~repro.experiments.parallel.ExecutorProfile` snapshot) and shows
    where the sweep's wall clock went and how many bytes crossed the process
    boundary by pipe vs shared memory.  ``None`` (no profile recorded)
    renders as a one-line note so callers can print unconditionally.
    """
    if not profile:
        return f"{title}\n  (no executor profile recorded)"
    def _ms(key: str) -> str:
        return f"{profile.get(key, 0.0) * 1e3:.1f}"
    rows = [
        [
            str(profile.get("transport", "?")),
            str(profile.get("workers", 1)),
            "yes" if profile.get("pool_reused") else "no",
            str(profile.get("jobs_total", 0)),
            str(profile.get("chunk_size", 1)),
            str(profile.get("bytes_shipped", 0)),
            str(profile.get("shm_bytes", 0)),
            f"{profile.get('wall_s', 0.0):.2f}",
            f"{profile.get('run_s', 0.0):.2f}",
            _ms("prewarm_s"),
            _ms("pool_spawn_s"),
            _ms("plans_ship_s"),
            _ms("serialize_s"),
            _ms("merge_s"),
        ]
    ]
    table = _format_table(
        [
            "transport",
            "workers",
            "reused",
            "jobs",
            "chunk",
            "pipe B",
            "shm B",
            "wall s",
            "run s",
            "prewarm ms",
            "spawn ms",
            "plans ms",
            "serialize ms",
            "merge ms",
        ],
        rows,
    )
    return f"{title}\n{table}"


def merge_fault_stats(stats_list: Sequence[Optional[dict]]) -> Optional[dict]:
    """Aggregate per-run fault statistics across the shards of a sweep.

    Every counter is additive (event counts, fault-caused packet drops,
    rerouted table entries), so shards simply sum; a ``shards`` field records
    how many runs contributed.  Runs without fault injection (``None``) are
    skipped; returns ``None`` when no run carried stats.
    """
    present = [stats for stats in stats_list if stats]
    if not present:
        return None
    keys = sorted({key for stats in present for key in stats})
    merged = {key: sum(stats.get(key, 0) for stats in present) for key in keys}
    merged["shards"] = len(present)
    return merged


def format_fault_stats(
    stats_by_label: Mapping[str, Optional[dict]],
    title: str = "Fault counters",
) -> str:
    """Render per-series fault counters (events applied, drops, reroutes).

    Series that ran on a healthy fabric (``None`` stats, e.g. the intensity-0
    baselines) render as ``-`` rows so every row of an experiment is listed.
    When any series carries routing-convergence accounting an ``installs``
    column shows ``route_installs/recomputes_requested`` -- under
    control-plane lag the two differ, exposing installs that were still
    pending (or superseded) when the run ended.  When any series carries
    per-builder cause counters (``cause_srlg``, ``cause_gray``, ...) an
    extra ``causes`` column attributes the applied events to their failure
    models.
    """
    def cause_summary(stats: Mapping) -> str:
        parts = [
            f"{key[len('cause_'):]}:{stats[key]}"
            for key in sorted(stats)
            if key.startswith("cause_")
        ]
        return ",".join(parts) if parts else "-"

    present = [stats for stats in stats_by_label.values() if stats]
    has_installs = any("recomputes_requested" in stats for stats in present)
    has_causes = any(
        any(key.startswith("cause_") for key in stats) for stats in present
    )
    width = 7 + has_installs + has_causes
    rows = []
    for label in sorted(stats_by_label):
        stats = stats_by_label[label]
        if not stats:
            rows.append([label] + ["-"] * width)
            continue
        row = [
            label,
            str(stats.get("links_failed", 0)),
            str(stats.get("links_degraded", 0)),
            str(stats.get("links_lossy", 0)),
            str(stats.get("switches_failed", 0)),
            str(stats.get("reroutes", 0)),
        ]
        if has_installs:
            row.append(
                f"{stats.get('route_installs', 0)}/{stats.get('recomputes_requested', 0)}"
            )
        row += [
            str(
                stats.get("packets_dropped_link_down", 0)
                + stats.get("packets_dropped_switch_down", 0)
            ),
            str(stats.get("packets_dropped_random_loss", 0)),
        ]
        if has_causes:
            row.append(cause_summary(stats))
        rows.append(row)
    headers = [
        "series",
        "links down",
        "degraded",
        "lossy",
        "switch down",
        "reroutes",
    ]
    if has_installs:
        headers.append("installs")
    headers += [
        "pkts dead-path",
        "pkts rand-loss",
    ]
    if has_causes:
        headers.append("causes")
    table = _format_table(headers, rows)
    return f"{title}\n{table}"


def merge_transport_stats(stats_list: Sequence[Optional[dict]]) -> Optional[dict]:
    """Aggregate per-run congestion-reaction statistics across sweep shards.

    Every counter is additive (ECN marks, CE receipts, echoes, TFRC rate
    updates, gray detections, sender reactions), so shards simply sum --
    generically over whatever keys are present, so newly added counters
    survive merging; a ``shards`` field records how many runs contributed.
    Runs with every reactive feature off (``None``) are skipped; returns
    ``None`` when no run carried stats.
    """
    present = [stats for stats in stats_list if stats]
    if not present:
        return None
    keys = sorted({key for stats in present for key in stats})
    merged = {key: sum(stats.get(key, 0) for stats in present) for key in keys}
    merged["shards"] = len(present)
    return merged


def format_transport_stats(
    stats_by_label: Mapping[str, Optional[dict]],
    title: str = "Congestion-reaction counters",
) -> str:
    """Render per-series ECN/TFRC/gray-detection counters.

    Series that ran with every reactive feature off (``None`` stats, e.g.
    the marking-off baseline cells) render as ``-`` rows so the table always
    lists every series of an experiment.  Counters a protocol does not keep
    (TCP has no TFRC rate updates; Polyraptor has no ECE echoes) render as
    ``-`` too.
    """
    columns = [
        ("ecn marks", "ecn_marks"),
        ("ce recv", "ce_received"),
        ("echoes", "ecn_echoes"),
        ("reactions", "ecn_reactions"),
        ("rate updates", "rate_updates"),
        ("gray", "gray_detected"),
    ]
    rows = []
    for label in sorted(stats_by_label):
        stats = stats_by_label[label]
        if not stats:
            rows.append([label] + ["-"] * len(columns))
            continue
        rows.append(
            [label]
            + [str(stats[key]) if key in stats else "-" for _, key in columns]
        )
    table = _format_table(["series"] + [header for header, _ in columns], rows)
    return f"{title}\n{table}"


def format_incast(
    result: IncastResult,
    title: str = "Incast -- fan-in sweep with marking/reaction on vs off",
) -> str:
    """Render the incast sweep: FCT table plus congestion-reaction counters.

    One row per (protocol, cell) in sweep order -- each fan-in with marking
    off then on -- with completion, FCT quantiles (p99 included: the incast
    pathology lives in the tail) and the FCT ratio of each marking-on cell
    against the same protocol and fan-in with marking off.
    """
    rows = []
    transport_stats: dict[str, Optional[dict]] = {}
    protocols = sorted({protocol for protocol, _ in result.points})
    for protocol_value in protocols:
        for label in result.labels:
            point = result.points[(protocol_value, label)]
            rows.append(
                [
                    protocol_value,
                    label,
                    f"{point.completed}/{point.offered}",
                    _fct_cell(point.median_fct_ms),
                    _fct_cell(point.p90_fct_ms),
                    _fct_cell(point.p99_fct_ms),
                    f"{point.mean_goodput_gbps:.3f}",
                    f"{point.fct_vs_unmarked:.2f}x" if point.fct_vs_unmarked is not None else "-",
                ]
            )
            transport_stats[f"{protocol_value} @ {label}"] = point.transport_stats
    table = _format_table(
        [
            "protocol",
            "cell",
            "completed",
            "median FCT ms",
            "p90 FCT ms",
            "p99 FCT ms",
            "mean Gbps",
            "vs mark-off",
        ],
        rows,
    )
    return f"{title}\n{table}\n\n{format_transport_stats(transport_stats)}"


def format_resilience(
    result: ResilienceResult,
    title: str = "Resilience -- FCT degradation under injected faults",
) -> str:
    """Render the resilience sweep: degradation table plus fault counters.

    One row per (protocol, intensity) with completion, FCT quantiles and the
    FCT ratio against the same protocol's healthy (intensity 0) baseline,
    followed by the per-cell fault counter table.
    """
    rows = []
    fault_stats: dict[str, Optional[dict]] = {}
    for (protocol_value, intensity), point in sorted(result.points.items()):
        rows.append(
            [
                protocol_value,
                f"{intensity:.2f}",
                f"{point.completed}/{point.offered}",
                _fct_cell(point.median_fct_ms),
                _fct_cell(point.p90_fct_ms),
                f"{point.mean_goodput_gbps:.3f}",
                f"{point.fct_vs_healthy:.2f}x" if point.fct_vs_healthy is not None else "-",
            ]
        )
        fault_stats[f"{protocol_value} @ {intensity:.2f}"] = point.fault_stats
    table = _format_table(
        [
            "protocol",
            "intensity",
            "completed",
            "median FCT ms",
            "p90 FCT ms",
            "mean Gbps",
            "vs healthy",
        ],
        rows,
    )
    return f"{title}\n{table}\n\n{format_fault_stats(fault_stats)}"


def format_correlated(
    result: CorrelatedResult,
    title: str = "Correlated & gray failures -- FCT degradation with convergence lag",
) -> str:
    """Render the correlated sweep: degradation table plus fault counters.

    One row per (protocol, cell) in sweep order -- healthy baseline, SRLG
    sizes, rack power, gray-loss rates, convergence delays -- with
    completion, FCT quantiles and the ratio against the same protocol's
    healthy cell, followed by the fault counter table (including the
    per-builder ``causes`` attribution and the requested-vs-installed
    recompute counters that expose control-plane lag).
    """
    rows = []
    fault_stats: dict[str, Optional[dict]] = {}
    protocols = sorted({protocol for protocol, _ in result.points})
    for protocol_value in protocols:
        for label in result.labels:
            point = result.points[(protocol_value, label)]
            rows.append(
                [
                    protocol_value,
                    label,
                    f"{point.completed}/{point.offered}",
                    _fct_cell(point.median_fct_ms),
                    _fct_cell(point.p90_fct_ms),
                    f"{point.mean_goodput_gbps:.3f}",
                    f"{point.fct_vs_healthy:.2f}x" if point.fct_vs_healthy is not None else "-",
                ]
            )
            fault_stats[f"{protocol_value} @ {label}"] = point.fault_stats
    table = _format_table(
        [
            "protocol",
            "cell",
            "completed",
            "median FCT ms",
            "p90 FCT ms",
            "mean Gbps",
            "vs healthy",
        ],
        rows,
    )
    return f"{title}\n{table}\n\n{format_fault_stats(fault_stats)}"


def format_overhead(points: Sequence[OverheadPoint], title: str = "RQ decode overhead") -> str:
    """Render the RQ overhead ablation."""
    rows = [
        [str(point.overhead), str(point.trials), str(point.failures), f"{point.failure_rate:.3f}"]
        for point in points
    ]
    table = _format_table(["overhead symbols", "trials", "failures", "failure rate"], rows)
    return f"{title}\n{table}"


# Telemetry rendering ----------------------------------------------------------------

#: ASCII intensity ramp for sparklines (space = zero/minimum).  ASCII rather
#: than unicode block elements so the output survives every terminal and CI
#: log encoding.
SPARK_CHARS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a value series as a fixed-width ASCII intensity line.

    The series is resampled to ``width`` buckets taking each bucket's
    *maximum* (peaks -- the thing queue-depth timelines exist to show --
    survive downsampling), then mapped onto :data:`SPARK_CHARS` scaled to
    the series' own min/max.  A constant series renders at mid-intensity;
    an empty one as ``width`` spaces.
    """
    if width < 1:
        raise ValueError(f"width must be at least 1, got {width}")
    if not values:
        return " " * width
    buckets: list[float] = []
    count = len(values)
    for index in range(min(width, count)):
        start = index * count // min(width, count)
        stop = max(start + 1, (index + 1) * count // min(width, count))
        buckets.append(max(values[start:stop]))
    low = min(buckets)
    high = max(buckets)
    if high == low:
        line = SPARK_CHARS[len(SPARK_CHARS) // 2] * len(buckets)
        return line.ljust(width)
    top = len(SPARK_CHARS) - 1
    line = "".join(
        SPARK_CHARS[round((value - low) / (high - low) * top)] for value in buckets
    )
    return line.ljust(width)


def format_trace(
    telemetry: Mapping,
    series: Optional[str] = None,
    width: int = 60,
    limit: int = 20,
) -> str:
    """Render a recorded telemetry file (``repro trace``) as text timelines.

    ``telemetry`` is the dict :func:`repro.obs.read_telemetry_jsonl`
    returns.  For each recorded run a header line (key, label, tick count)
    is followed by up to ``limit`` of its series -- optionally filtered by
    the ``series`` glob (``fnmatch`` against the series name) -- each as
    ``name  last/max  |sparkline|``.  Series are listed in recorded (sorted
    name) order; a trailing note counts any suppressed by ``limit``.
    """
    lines: list[str] = []
    by_run: dict[tuple, list[dict]] = {}
    for entry in telemetry.get("series", []):
        by_run.setdefault((entry["label"], _key_of(entry)), []).append(entry)
    for run in telemetry.get("runs", []):
        run_id = (run["label"], _key_of(run))
        if lines:
            lines.append("")
        lines.append(
            f"run key={run['key']!r} label={run['label']!r} ticks={run.get('ticks', 0)}"
        )
        entries = by_run.get(run_id, [])
        if series is not None:
            entries = [
                entry for entry in entries if fnmatch.fnmatch(entry["name"], series)
            ]
        if not entries:
            lines.append("  (no matching series)")
            continue
        name_width = max(len(entry["name"]) for entry in entries[:limit])
        for entry in entries[:limit]:
            values = entry["v"]
            last = values[-1] if values else 0.0
            peak = max(values) if values else 0.0
            dropped = f"  dropped={entry['dropped']}" if entry.get("dropped") else ""
            lines.append(
                f"  {entry['name'].ljust(name_width)}  "
                f"last={last:<12.6g} max={peak:<12.6g} "
                f"|{sparkline(values, width)}|{dropped}"
            )
        if len(entries) > limit:
            lines.append(f"  ... {len(entries) - limit} more series (raise --limit)")
    if not lines:
        return "(no runs recorded)"
    return "\n".join(lines)


def _key_of(entry: Mapping) -> tuple:
    """A hashable run identity from a JSON-decoded key (lists become tuples)."""
    key = entry.get("key")
    if isinstance(key, list):
        return tuple(key)
    return (key,)
