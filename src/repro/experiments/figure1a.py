"""Figure 1a: goodput vs session rank for the replication (multicast) scenario.

The paper's setup: a distributed-storage client stores an object on 1 or 3
replica servers chosen outside its rack.  Polyraptor replicates through a
multicast session; TCP emulates replication by multi-unicasting the object to
every replica.  The figure plots per-session goodput against the session's
rank (slowest first) for the four series:

    1 Replica RQ, 3 Replicas RQ, 1 Replica TCP, 3 Replicas TCP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.metrics import SeriesSummary
from repro.experiments.parallel import RunJob, execute_jobs, last_profile
from repro.experiments.report import merge_codec_stats
from repro.experiments.runner import RunResult
from repro.network.topology import FatTreeTopology
from repro.sim.randomness import RandomStreams
from repro.utils.cdf import rank_curve
from repro.workloads.background import background_transfers
from repro.workloads.spec import TransferKind
from repro.workloads.storage import StorageWorkload


def series_label(protocol: Protocol, num_replicas: int) -> str:
    """The legend label used by the paper for one (protocol, replicas) series."""
    noun = "Replica" if num_replicas == 1 else "Replicas"
    short = "RQ" if protocol is Protocol.POLYRAPTOR else "TCP"
    return f"{num_replicas} {noun} {short}"


@dataclass
class Figure1aResult:
    """All four series of Figure 1a plus per-series summaries and run stats.

    ``runs`` holds the base seed's run per series (back-compat with single
    -seed callers); ``seed_runs`` holds every repetition in seed order, and
    ``codec_stats`` the per-series codec counters merged across seeds with
    :func:`~repro.experiments.report.merge_codec_stats`.
    """

    config: ExperimentConfig
    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    summaries: dict[str, SeriesSummary] = field(default_factory=dict)
    runs: dict[str, RunResult] = field(default_factory=dict)
    seed_runs: dict[str, list[RunResult]] = field(default_factory=dict)
    codec_stats: dict[str, Optional[dict]] = field(default_factory=dict)
    #: Executor accounting for the sweep (see
    #: :class:`~repro.experiments.parallel.ExecutorProfile`); never affects
    #: the measured series, only explains where the wall clock went.
    exec_profile: Optional[dict] = None

    def summary(self, protocol: Protocol, num_replicas: int) -> SeriesSummary:
        """Summary of one series."""
        return self.summaries[series_label(protocol, num_replicas)]


def generate_workload(
    config: ExperimentConfig,
    num_replicas: int,
    kind: TransferKind = TransferKind.REPLICATE,
):
    """Generate the (protocol-independent) workload for one replica count.

    The same seed produces the same clients, replica placements and arrival
    times regardless of the protocol, so RQ and TCP are offered identical
    traffic.
    """
    topology = FatTreeTopology(config.fattree_k)
    streams = RandomStreams(config.seed)
    workload = StorageWorkload(
        kind=kind,
        num_replicas=num_replicas,
        object_bytes=config.object_bytes,
        arrival_rate_per_second=config.arrival_rate_per_second,
    )
    foreground = workload.generate(
        topology,
        config.num_foreground_transfers,
        streams.stream(f"storage.{kind.value}.{num_replicas}"),
        first_transfer_id=0,
        label="foreground",
    )
    background = background_transfers(
        topology,
        config.num_background_transfers,
        config.object_bytes,
        config.arrival_rate_per_second,
        streams.stream("background"),
        first_transfer_id=len(foreground),
    )
    return topology, foreground + background


def expand_sweep(
    config: ExperimentConfig,
    replica_counts: tuple[int, ...],
    protocols: tuple[Protocol, ...],
    num_seeds: int,
    kind: TransferKind = TransferKind.REPLICATE,
    label_of=None,
) -> list[RunJob]:
    """Expand the figure's seeds x replica-counts x protocols sweep into jobs.

    Workloads are generated in the parent (once per seed and replica count,
    shared by both protocols) so every job is fully described by value and
    can be executed in any process.  ``label_of(protocol, count)`` names the
    series; Figure 1b reuses this with its own labels and the FETCH kind.
    """
    label_of = label_of or series_label
    jobs: list[RunJob] = []
    for seed in range(config.seed, config.seed + num_seeds):
        seed_config = config.with_seed(seed)
        for num_replicas in replica_counts:
            _, transfers = generate_workload(seed_config, num_replicas, kind)
            for protocol in protocols:
                jobs.append(
                    RunJob(
                        key=(seed, label_of(protocol, num_replicas)),
                        protocol=protocol,
                        config=seed_config,
                        transfers=tuple(transfers),
                    )
                )
    return jobs


def collect_sweep(
    result,
    jobs: list[RunJob],
    runs: list[RunResult],
) -> None:
    """Merge per-job runs into a rank-figure result (shared by Figures 1a/1b).

    Goodputs are pooled across seeds per series (the paper's rank curves plot
    per-session goodput, so repetitions simply contribute more sessions);
    codec counters are merged with
    :func:`~repro.experiments.report.merge_codec_stats`.
    """
    for job, run in zip(jobs, runs):
        _, label = job.key
        result.seed_runs.setdefault(label, []).append(run)
        result.runs.setdefault(label, run)
    for label, label_runs in result.seed_runs.items():
        goodputs = [g for run in label_runs for g in run.goodputs_gbps("foreground")]
        result.series[label] = rank_curve(goodputs)
        if goodputs:
            result.summaries[label] = SeriesSummary.from_goodputs(label, goodputs)
        result.codec_stats[label] = merge_codec_stats(
            [run.codec_stats for run in label_runs]
        )


def run_figure1a(
    config: ExperimentConfig | None = None,
    replica_counts: tuple[int, ...] = (1, 3),
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
    num_seeds: int = 1,
    jobs: int = 1,
) -> Figure1aResult:
    """Run every series of Figure 1a and return the rank curves.

    Args:
        config: base configuration (its ``seed`` is the first repetition).
        replica_counts: replica counts to sweep (the paper uses 1 and 3).
        protocols: transports to compare.
        num_seeds: repetitions; goodputs are pooled across seeds per series.
        jobs: worker processes to shard the sweep across (1 = in-process);
            results are identical for every value, see
            :mod:`repro.experiments.parallel`.
    """
    cfg = config or ExperimentConfig.scaled_default()
    result = Figure1aResult(config=cfg)
    sweep = expand_sweep(cfg, replica_counts, protocols, num_seeds)
    runs = execute_jobs(sweep, num_workers=jobs, label="figure1a")
    collect_sweep(result, sweep, runs)
    profile = last_profile()
    result.exec_profile = profile.as_dict() if profile is not None else None
    return result
