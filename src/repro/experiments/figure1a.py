"""Figure 1a: goodput vs session rank for the replication (multicast) scenario.

The paper's setup: a distributed-storage client stores an object on 1 or 3
replica servers chosen outside its rack.  Polyraptor replicates through a
multicast session; TCP emulates replication by multi-unicasting the object to
every replica.  The figure plots per-session goodput against the session's
rank (slowest first) for the four series:

    1 Replica RQ, 3 Replicas RQ, 1 Replica TCP, 3 Replicas TCP
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.metrics import SeriesSummary, goodput_rank_series
from repro.experiments.runner import RunResult, run_transfers
from repro.network.topology import FatTreeTopology
from repro.sim.randomness import RandomStreams
from repro.workloads.background import background_transfers
from repro.workloads.spec import TransferKind
from repro.workloads.storage import StorageWorkload


def series_label(protocol: Protocol, num_replicas: int) -> str:
    """The legend label used by the paper for one (protocol, replicas) series."""
    noun = "Replica" if num_replicas == 1 else "Replicas"
    short = "RQ" if protocol is Protocol.POLYRAPTOR else "TCP"
    return f"{num_replicas} {noun} {short}"


@dataclass
class Figure1aResult:
    """All four series of Figure 1a plus per-series summaries and run stats."""

    config: ExperimentConfig
    series: dict[str, list[tuple[int, float]]] = field(default_factory=dict)
    summaries: dict[str, SeriesSummary] = field(default_factory=dict)
    runs: dict[str, RunResult] = field(default_factory=dict)

    def summary(self, protocol: Protocol, num_replicas: int) -> SeriesSummary:
        """Summary of one series."""
        return self.summaries[series_label(protocol, num_replicas)]


def generate_workload(
    config: ExperimentConfig,
    num_replicas: int,
    kind: TransferKind = TransferKind.REPLICATE,
):
    """Generate the (protocol-independent) workload for one replica count.

    The same seed produces the same clients, replica placements and arrival
    times regardless of the protocol, so RQ and TCP are offered identical
    traffic.
    """
    topology = FatTreeTopology(config.fattree_k)
    streams = RandomStreams(config.seed)
    workload = StorageWorkload(
        kind=kind,
        num_replicas=num_replicas,
        object_bytes=config.object_bytes,
        arrival_rate_per_second=config.arrival_rate_per_second,
    )
    foreground = workload.generate(
        topology,
        config.num_foreground_transfers,
        streams.stream(f"storage.{kind.value}.{num_replicas}"),
        first_transfer_id=0,
        label="foreground",
    )
    background = background_transfers(
        topology,
        config.num_background_transfers,
        config.object_bytes,
        config.arrival_rate_per_second,
        streams.stream("background"),
        first_transfer_id=len(foreground),
    )
    return topology, foreground + background


def run_figure1a(
    config: ExperimentConfig | None = None,
    replica_counts: tuple[int, ...] = (1, 3),
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
) -> Figure1aResult:
    """Run every series of Figure 1a and return the rank curves."""
    cfg = config or ExperimentConfig.scaled_default()
    result = Figure1aResult(config=cfg)
    for num_replicas in replica_counts:
        topology, transfers = generate_workload(cfg, num_replicas, TransferKind.REPLICATE)
        for protocol in protocols:
            label = series_label(protocol, num_replicas)
            run = run_transfers(protocol, cfg, transfers, topology=topology)
            result.runs[label] = run
            result.series[label] = goodput_rank_series(run.registry, "foreground")
            goodputs = run.goodputs_gbps("foreground")
            if goodputs:
                result.summaries[label] = SeriesSummary.from_goodputs(label, goodputs)
    return result
