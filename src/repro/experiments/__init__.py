"""Experiment harness: regenerates every figure of the paper plus ablations.

* :mod:`repro.experiments.config`   -- experiment configuration (scaled-down
  defaults plus the paper's full-scale parameters).
* :mod:`repro.experiments.runner`   -- offers a protocol-independent workload
  to either Polyraptor or TCP and collects results.
* :mod:`repro.experiments.metrics`  -- rank curves, aggregate goodputs,
  confidence intervals.
* :mod:`repro.experiments.figure1a` -- multicast/replication (Figure 1a).
* :mod:`repro.experiments.figure1b` -- multi-source fetch (Figure 1b).
* :mod:`repro.experiments.figure1c` -- Incast (Figure 1c).
* :mod:`repro.experiments.ablations`-- design-choice ablations (trimming,
  spraying, RQ overhead, initial window).
* :mod:`repro.experiments.resilience` -- FCT degradation under injected
  fault intensities (independent faults).
* :mod:`repro.experiments.correlated` -- correlated failure models (SRLGs,
  rack power, gray loss) with routing-convergence delay.
* :mod:`repro.experiments.report`   -- plain-text rendering of the results.
"""

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.runner import RunResult, offer_transfers, run_transfers

__all__ = [
    "ExperimentConfig",
    "Protocol",
    "RunResult",
    "run_transfers",
    "offer_transfers",
]
