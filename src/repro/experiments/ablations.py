"""Ablations of the design choices the paper's Section 2 argues for.

These do not correspond to a figure in the (2-page) paper, but each one
isolates a claim made in the text:

* **A1 trimming**      -- "Packet trimming along with RQ coding provide
  resilience against transient and persistent congestion": run the Incast
  scenario with trimming switches vs. drop-tail switches under Polyraptor.
* **A2 spraying**      -- "symbols can be sprayed in the network, exploiting
  all available (equal-cost) paths": permutation traffic under per-packet
  spraying vs. per-flow ECMP vs. a single path.
* **A3 RQ overhead**   -- footnote 2: decoding succeeds with K + 2 symbols
  with overwhelming probability: measure decode failure rates at overheads
  0, 1 and 2 using the real codec.
* **A4 initial window**-- the first-RTT line-rate window: single-session
  goodput as a function of the initial window size.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, replace

from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.metrics import aggregate_goodput_gbps
from repro.experiments.parallel import RunJob, execute_jobs
from repro.network.network import NetworkConfig
from repro.network.routing import RoutingMode
from repro.network.topology import FatTreeTopology
from repro.rq.decoder import BlockDecoder
from repro.rq.encoder import BlockEncoder
from repro.sim.randomness import RandomStreams
from repro.utils.units import KILOBYTE
from repro.workloads.incast import incast_transfers
from repro.workloads.spec import TransferKind, TransferSpec
from repro.workloads.traffic_matrix import permutation_pairs


@dataclass(frozen=True)
class AblationPoint:
    """One configuration of an ablation and the goodput it achieved."""

    label: str
    goodput_gbps: float
    trimmed_packets: int = 0
    dropped_packets: int = 0


def trimming_ablation(
    config: ExperimentConfig | None = None,
    num_senders: int = 12,
    response_bytes: int = 256 * KILOBYTE,
    jobs: int = 1,
) -> list[AblationPoint]:
    """A1: Polyraptor Incast goodput with trimming switches vs drop-tail switches."""
    cfg = config or ExperimentConfig.scaled_default()
    topology = FatTreeTopology(cfg.fattree_k)
    streams = RandomStreams(cfg.seed)
    _, transfers = incast_transfers(
        topology, num_senders, response_bytes, streams.stream("incast"), label="incast"
    )
    sweep = [
        RunJob(
            key=label,
            protocol=Protocol.POLYRAPTOR,
            config=cfg,
            transfers=tuple(transfers),
            network_config=NetworkConfig(
                link_rate_bps=cfg.link_rate_bps,
                link_delay_s=cfg.link_delay_s,
                switch_queue=queue,
                data_queue_capacity_packets=cfg.data_queue_capacity_packets,
                droptail_capacity_packets=cfg.data_queue_capacity_packets,
                routing_mode=RoutingMode.PACKET_SPRAY,
            ),
        )
        for label, queue in (("trimming", "trimming"), ("droptail", "droptail"))
    ]
    return [
        AblationPoint(
            label=job.key,
            goodput_gbps=aggregate_goodput_gbps(run.registry, "incast"),
            trimmed_packets=run.trimmed_packets,
            dropped_packets=run.dropped_packets,
        )
        for job, run in zip(sweep, execute_jobs(sweep, num_workers=jobs,
                                                label="ablation-trimming"))
    ]


def spraying_ablation(
    config: ExperimentConfig | None = None,
    num_transfers: int | None = None,
    jobs: int = 1,
) -> list[AblationPoint]:
    """A2: permutation traffic under spraying vs per-flow ECMP vs a single path."""
    cfg = config or ExperimentConfig.scaled_default()
    topology = FatTreeTopology(cfg.fattree_k)
    streams = RandomStreams(cfg.seed)
    rng = streams.stream("permutation")
    pairs = permutation_pairs(topology.hosts, rng)
    if num_transfers is not None:
        pairs = pairs[:num_transfers]
    transfers = tuple(
        TransferSpec(
            transfer_id=index,
            kind=TransferKind.UNICAST,
            client=src,
            peers=(dst,),
            size_bytes=cfg.object_bytes,
            start_time=0.0,
            label="foreground",
        )
        for index, (src, dst) in enumerate(pairs)
    )
    sweep = [
        RunJob(
            key=mode.value,
            protocol=Protocol.POLYRAPTOR,
            config=cfg,
            transfers=transfers,
            network_config=NetworkConfig(
                link_rate_bps=cfg.link_rate_bps,
                link_delay_s=cfg.link_delay_s,
                switch_queue="trimming",
                data_queue_capacity_packets=cfg.data_queue_capacity_packets,
                routing_mode=mode,
            ),
        )
        for mode in (RoutingMode.PACKET_SPRAY, RoutingMode.ECMP_FLOW, RoutingMode.SINGLE_PATH)
    ]
    points = []
    for job, run in zip(sweep, execute_jobs(sweep, num_workers=jobs,
                                            label="ablation-spraying")):
        goodputs = run.goodputs_gbps("foreground")
        mean = sum(goodputs) / len(goodputs) if goodputs else 0.0
        points.append(
            AblationPoint(
                label=job.key,
                goodput_gbps=mean,
                trimmed_packets=run.trimmed_packets,
                dropped_packets=run.dropped_packets,
            )
        )
    return points


@dataclass(frozen=True)
class OverheadPoint:
    """Decode failure rate at one symbol overhead."""

    overhead: int
    trials: int
    failures: int

    @property
    def failure_rate(self) -> float:
        """Fraction of trials whose decode failed."""
        return self.failures / self.trials if self.trials else 0.0


def rq_overhead_ablation(
    num_source_symbols: int = 32,
    symbol_size: int = 64,
    trials: int = 30,
    overheads: tuple[int, ...] = (0, 1, 2),
    loss_fraction: float = 0.3,
    seed: int = 7,
) -> list[OverheadPoint]:
    """A3: decode failure probability vs received-symbol overhead (real codec).

    Each trial encodes a random block, drops ``loss_fraction`` of the source
    symbols and replaces them with repair symbols so the receiver holds
    exactly ``K + overhead`` symbols, then attempts to decode.
    """
    rng = random.Random(seed)
    source = [os.urandom(symbol_size) for _ in range(num_source_symbols)]
    encoder = BlockEncoder(source)
    points = []
    for overhead in overheads:
        failures = 0
        for _ in range(trials):
            keep = [
                esi
                for esi in range(num_source_symbols)
                if rng.random() > loss_fraction
            ]
            needed = num_source_symbols + overhead - len(keep)
            repair_start = num_source_symbols + rng.randint(0, 10_000)
            repair = list(range(repair_start, repair_start + needed))
            decoder = BlockDecoder(num_source_symbols, symbol_size)
            for esi in keep + repair:
                decoder.add_symbol(esi, encoder.symbol(esi))
            if not decoder.decode().success:
                failures += 1
        points.append(OverheadPoint(overhead=overhead, trials=trials, failures=failures))
    return points


def initial_window_ablation(
    config: ExperimentConfig | None = None,
    window_sizes: tuple[int, ...] = (2, 6, 12, 18, 24),
    object_bytes: int = 1_000_000,
    jobs: int = 1,
) -> list[AblationPoint]:
    """A4: single-session goodput as a function of the initial window size."""
    cfg = config or ExperimentConfig.scaled_default()
    topology = FatTreeTopology(cfg.fattree_k)
    hosts = topology.hosts
    spec = TransferSpec(
        transfer_id=1,
        kind=TransferKind.UNICAST,
        client=hosts[0],
        peers=(hosts[-1],),
        size_bytes=object_bytes,
        start_time=0.0,
        label="foreground",
    )
    sweep = [
        RunJob(
            key=f"window={window}",
            protocol=Protocol.POLYRAPTOR,
            config=cfg,
            transfers=(spec,),
            polyraptor_config=replace(cfg.polyraptor, initial_window_symbols=window),
        )
        for window in window_sizes
    ]
    points = []
    for job, run in zip(sweep, execute_jobs(sweep, num_workers=jobs,
                                            label="ablation-window")):
        goodputs = run.goodputs_gbps("foreground")
        points.append(
            AblationPoint(
                label=job.key,
                goodput_gbps=goodputs[0] if goodputs else 0.0,
                trimmed_packets=run.trimmed_packets,
                dropped_packets=run.dropped_packets,
            )
        )
    return points
