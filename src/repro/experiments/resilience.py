"""Path-resilience experiment: Polyraptor vs TCP on a degrading fabric.

The paper's central claim is that fountain coding over *redundant*
data-centre paths makes the transport robust to path loss: symbols are
sprayed per packet, any symbol repairs any loss, and no individual path
matters.  The original evaluation never tests that story -- every run uses a
static, healthy fat-tree.  This experiment injects seeded fault schedules
(:mod:`repro.faults`) of increasing intensity while an identical permutation
workload runs, and compares how each protocol's flow-completion times degrade
relative to its own healthy baseline.  Per-flow-ECMP TCP pins each flow to
one path for its lifetime, so a failed or lossy link starves the unlucky
flows; Polyraptor routes around damage packet by packet.  (The PCN line of
related work motivates the same comparison for loss-signalling regimes:
trimming switches keep signalling under degraded capacity, drop-tail
switches go silent.)

Every (seed, intensity, protocol) cell is an independent
:class:`~repro.experiments.parallel.RunJob` -- fault schedules are immutable
value objects generated in the parent -- so the sweep shards over
``--jobs N`` workers with byte-identical output for any N.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import RunJob, execute_jobs, last_profile
from repro.experiments.report import merge_codec_stats, merge_fault_stats
from repro.faults.schedule import FaultSchedule, random_fault_schedule
from repro.network.topology import FatTreeTopology
from repro.sim.randomness import RandomStreams
from repro.utils.cdf import Cdf
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.spec import TransferKind, TransferSpec
from repro.workloads.traffic_matrix import repeated_permutation_pairs


@dataclass(frozen=True)
class ResiliencePoint:
    """One protocol's outcome at one fault intensity (pooled across seeds)."""

    protocol: Protocol
    intensity: float
    completed: int
    offered: int
    median_fct_ms: float
    p90_fct_ms: float
    mean_goodput_gbps: float
    #: median FCT divided by the same protocol's intensity-0 median FCT;
    #: ``None`` when either median is undefined (no completed transfers)
    fct_vs_healthy: Optional[float]
    fault_stats: Optional[dict]

    @property
    def completion_fraction(self) -> float:
        """Fraction of offered transfers that completed."""
        return self.completed / self.offered if self.offered else 0.0


@dataclass
class ResilienceResult:
    """The full degradation sweep: intensities x protocols."""

    config: ExperimentConfig
    intensities: tuple[float, ...] = ()
    #: points[(protocol.value, intensity)]
    points: dict[tuple[str, float], ResiliencePoint] = field(default_factory=dict)
    #: per-protocol codec counters merged across every intensity and seed
    codec_stats: dict[str, Optional[dict]] = field(default_factory=dict)
    #: Executor accounting for the sweep (see
    #: :class:`~repro.experiments.parallel.ExecutorProfile`).
    exec_profile: Optional[dict] = None

    def point(self, protocol: Protocol, intensity: float) -> ResiliencePoint:
        """The summary for one (protocol, intensity) cell."""
        return self.points[(protocol.value, intensity)]


def permutation_workload(
    config: ExperimentConfig, topology: FatTreeTopology
) -> list[TransferSpec]:
    """A permutation unicast workload, identical for every protocol and cell.

    Shared by the resilience and correlated experiments -- the paper's
    fair-comparison requirement is that every protocol and failure cell of
    a seed sees byte-identical offered traffic.
    """
    streams = RandomStreams(config.seed)
    rng = streams.stream("resilience")
    arrivals = PoissonArrivals(config.arrival_rate_per_second).times(
        config.num_foreground_transfers, rng
    )
    pairs = repeated_permutation_pairs(
        topology.hosts, config.num_foreground_transfers, rng
    )
    return [
        TransferSpec(
            transfer_id=index,
            kind=TransferKind.UNICAST,
            client=src,
            peers=(dst,),
            size_bytes=config.object_bytes,
            start_time=start,
            label="foreground",
        )
        for index, ((src, dst), start) in enumerate(zip(pairs, arrivals))
    ]


def fault_window(config: ExperimentConfig, transfers: list[TransferSpec]) -> tuple[float, float]:
    """When faults strike: a window matched to the run's busy period.

    The busy period is the arrival span plus a congestion-slack estimate of
    one transfer's service time, so the window tracks how long traffic is
    actually in flight -- the schedule builders place fault onsets
    in the first third of the window, which lands them on live transfers
    rather than an idle or already-drained fabric.
    """
    last_arrival = max(spec.start_time for spec in transfers) if transfers else 0.0
    # 4x the ideal serialisation time leaves room for queueing, pull pacing
    # and the fault-lengthened paths themselves.
    service_slack = 4.0 * config.object_bytes * 8 / config.link_rate_bps
    busy = last_arrival + service_slack
    duration = min(config.max_sim_time_s, max(0.002, 1.2 * busy))
    return 0.0, duration


def expand_resilience_sweep(
    config: ExperimentConfig,
    intensities: tuple[float, ...],
    protocols: tuple[Protocol, ...],
    num_seeds: int,
) -> list[RunJob]:
    """Expand seeds x intensities x protocols into fully-by-value jobs.

    The workload is generated once per seed (shared by every intensity and
    protocol, the paper's fair-comparison requirement) and the fault schedule
    once per (seed, intensity) (shared by both protocols, so they face the
    same broken fabric).
    """
    jobs: list[RunJob] = []
    topology = FatTreeTopology(config.fattree_k)
    for seed in range(config.seed, config.seed + num_seeds):
        seed_config = config.with_seed(seed)
        transfers = permutation_workload(seed_config, topology)
        start, duration = fault_window(seed_config, transfers)
        fault_streams = RandomStreams(seed_config.seed)
        for intensity in intensities:
            schedule: FaultSchedule = random_fault_schedule(
                topology,
                fault_streams.stream(f"faults.intensity.{intensity}"),
                intensity,
                start_time=start,
                duration=duration,
            )
            for protocol in protocols:
                jobs.append(
                    RunJob(
                        key=(seed, protocol.value, intensity),
                        protocol=protocol,
                        config=seed_config,
                        transfers=tuple(transfers),
                        fault_schedule=schedule,
                    )
                )
    return jobs


def run_resilience(
    config: ExperimentConfig | None = None,
    intensities: tuple[float, ...] = (0.0, 0.3, 0.6, 1.0),
    protocols: tuple[Protocol, ...] = (Protocol.POLYRAPTOR, Protocol.TCP),
    num_seeds: int = 1,
    jobs: int = 1,
) -> ResilienceResult:
    """Run the full degradation sweep and summarise it per (protocol, intensity).

    Intensity 0.0 (the healthy fabric) is always included -- it is the
    baseline the ``fct_vs_healthy`` ratios are computed against.  Results are
    byte-identical for every ``jobs`` value.
    """
    cfg = config or ExperimentConfig.scaled_default()
    levels = tuple(sorted(set(intensities) | {0.0}))
    sweep = expand_resilience_sweep(cfg, levels, protocols, num_seeds)
    runs = execute_jobs(sweep, num_workers=jobs, label="resilience")

    result = ResilienceResult(config=cfg, intensities=levels)
    by_cell: dict[tuple[str, float], list] = {}
    for job, run in zip(sweep, runs):
        _, protocol_value, intensity = job.key
        by_cell.setdefault((protocol_value, intensity), []).append(run)

    healthy_median: dict[str, float] = {}
    for protocol in protocols:
        for intensity in levels:
            cell_runs = by_cell[(protocol.value, intensity)]
            records = [
                record
                for run in cell_runs
                for record in run.registry.records
                if record.label == "foreground"
            ]
            completed = [record for record in records if record.completed]
            fcts_ms = [record.flow_completion_time * 1e3 for record in completed]
            goodputs = [record.goodput_gbps for record in completed]
            fct_cdf = Cdf.from_samples(fcts_ms) if fcts_ms else None
            median = fct_cdf.median() if fct_cdf else float("inf")
            if intensity == 0.0:
                healthy_median[protocol.value] = median
            baseline = healthy_median.get(protocol.value, float("inf"))
            if math.isfinite(median) and math.isfinite(baseline) and baseline > 0:
                ratio: Optional[float] = median / baseline
            else:
                # No completed transfers in this cell or in the healthy
                # baseline: a degradation ratio is undefined, not 0x or infx.
                ratio = None
            result.points[(protocol.value, intensity)] = ResiliencePoint(
                protocol=protocol,
                intensity=intensity,
                completed=len(completed),
                offered=len(records),
                median_fct_ms=median,
                p90_fct_ms=fct_cdf.quantile(0.9) if fct_cdf else float("inf"),
                mean_goodput_gbps=sum(goodputs) / len(goodputs) if goodputs else 0.0,
                fct_vs_healthy=ratio,
                fault_stats=merge_fault_stats([run.fault_stats for run in cell_runs]),
            )
        result.codec_stats[protocol.value] = merge_codec_stats(
            [
                run.codec_stats
                for intensity in levels
                for run in by_cell[(protocol.value, intensity)]
            ]
        )
    profile = last_profile()
    result.exec_profile = profile.as_dict() if profile is not None else None
    return result
