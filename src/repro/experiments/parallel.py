"""Sharded parallel experiment execution with a shared plan store.

Every figure and ablation of the paper is a *sweep*: the cartesian product
of seeds, protocols and scenario parameters, where each cell is one
independent simulation run.  This module turns such a sweep into a list of
:class:`RunJob` descriptions and executes them either in-process or across
a **persistent pool of warm worker processes**, with four guarantees:

1. **Determinism.**  A job is a pure function of its fields: the worker
   rebuilds the topology from the config (``FatTreeTopology`` is a pure
   function of ``k``), seeds fresh random streams from the config's seed and
   replays the transfer list the parent generated.  Results are merged in
   job-submission order regardless of which worker finished first, so the
   output of ``num_workers=N`` is byte-identical to ``num_workers=1`` for
   every N -- and for every transport and chunk size.

2. **Warm codec caches everywhere.**  Elimination plans
   (:class:`~repro.rq.plan.EliminationPlan`) are immutable, so the parent
   pre-warms the encode-side plans for every block size appearing in the
   sweep (plus, for lossy sweeps, the decode-side plans for the most common
   canonical loss patterns -- see
   :func:`repro.rq.backend.prewarm_canonical_decode_plans`), snapshots them
   into a picklable :class:`~repro.rq.plan.PlanStore`, and ships the store
   **once per worker per sweep** -- zero-copy through shared memory when
   available.  Each job then runs with a
   :class:`~repro.rq.backend.CodecContext` preloaded from the same store --
   the sequential path does exactly the same, which is what keeps plan-cache
   hit/miss counters identical across worker counts.

3. **Cheap transport.**  Job batches, per-job results and the plan store
   cross the process boundary through ``multiprocessing.shared_memory``
   segments (:mod:`repro.experiments.shm`): ndarray planes are written once
   into the segment and mapped by the consumer, so only tiny descriptors
   travel through the pipe.  When shared memory is unavailable the executor
   falls back transparently to pickle payloads -- results are identical,
   only ``bytes_shipped`` grows.

4. **Amortised start-up.**  Workers are spawned once per process (imports,
   GF(256) kernel selection, codec context warm-up) and kept alive across
   sweeps: the second ``execute_jobs`` call of an invocation pays no spawn
   or import cost.  Jobs are dispatched in chunked batches with dynamic
   load balancing (a worker gets its next batch when it finishes one).

Every sharded call records an :class:`ExecutorProfile` (per-phase wall
clock, ``bytes_shipped`` through the pipe, ``shm_bytes`` through shared
memory), readable via :func:`last_profile` and surfaced by ``--progress``
and the benchmarks.

Typical use (what the figure drivers do internally)::

    from repro.experiments.parallel import RunJob, execute_jobs

    jobs = [RunJob(key=(seed, label), protocol=proto, config=cfg.with_seed(seed),
                   transfers=tuple(transfers))
            for seed in seeds for (label, proto, transfers) in cells]
    results = execute_jobs(jobs, num_workers=4)   # same output as num_workers=1
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import queue
import sys
import time
import traceback
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Hashable, Iterable, Optional, Sequence, Union

from repro._version import __version__
from repro.core.config import PolyraptorConfig
from repro.experiments import shm
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.runner import RunResult, run_transfers
from repro.faults.schedule import FaultSchedule
from repro.network.network import NetworkConfig
from repro.network.topology import FatTreeTopology
from repro.obs.recorder import TelemetryRecord
from repro.obs.registry import WindowedRate
from repro.rq.backend import (
    CodecContext,
    prewarm_canonical_decode_plans,
    prewarm_encode_plans,
)
from repro.rq.block import partition_object
from repro.rq.params import for_k
from repro.rq.plan import PlanStore, PlanStoreSchemaError

#: Start method used for worker pools; ``spawn`` is the portable choice and
#: proves that every job artefact survives pickling.
DEFAULT_START_METHOD = "spawn"

#: Transports a sharded run can use for payloads: ``shm`` (shared-memory
#: segments, tiny pipe descriptors), ``pickle`` (everything through the
#: pipe) or ``auto`` (``shm`` when the platform supports it).
TRANSPORTS = ("auto", "shm", "pickle")

#: Called after each job completes (in job order): (index, total, job, result).
ProgressCallback = Callable[[int, int, "RunJob", RunResult], None]


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity/cgroup aware).

    ``os.sched_getaffinity`` reflects taskset masks and container CPU
    limits; ``os.cpu_count`` reports the machine and silently over-counts
    on throttled runners.  Falls back to ``cpu_count`` on platforms without
    affinity support (macOS, Windows).
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Union[int, str]) -> int:
    """Resolve a worker count: ``"auto"`` means one worker per *available* core.

    Accepts an int, a decimal string, or the literal ``"auto"`` (case
    insensitive); anything else, or a count below 1, raises ``ValueError``.
    ``auto`` respects CPU affinity and cgroup limits via
    :func:`available_cpus` rather than raw ``os.cpu_count()``.  This is what
    the CLI's ``--jobs`` flag funnels through.
    """
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return available_cpus()
        jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    return jobs


#: sliding window of the --progress throughput/ETA estimate (wall seconds).
_PROGRESS_WINDOW_S = 20.0
_progress_rate = WindowedRate(window_s=_PROGRESS_WINDOW_S)


def log_progress(index: int, total: int, job: "RunJob", result: RunResult) -> None:
    """The default per-job progress logger: one stderr line per finished job.

    Reports throughput (cells/second over a sliding wall-clock window) and
    the ETA it implies for the sweep's remaining jobs once a rate can be
    estimated (from the second job onwards).  Written to stderr so the
    stdout tables stay byte-identical whether or not progress logging is on.
    """
    now = time.perf_counter()
    if index == 0:
        _progress_rate.reset()
    _progress_rate.record(now)
    pace = ""
    rate = _progress_rate.rate(now)
    if rate > 0.0:
        pace = f"  rate={rate:.2f}/s"
        remaining = total - (index + 1)
        if remaining:
            pace += f"  eta={remaining / rate:.0f}s"
    print(
        f"[repro] job {index + 1}/{total} done  key={job.key!r}  "
        f"protocol={job.protocol.value}  sim={result.sim_time_s:.3f}s  "
        f"wall={result.wall_time_s:.2f}s{pace}",
        file=sys.stderr,
        flush=True,
    )


#: Process-wide default progress callback; ``execute_jobs`` falls back to it
#: when no explicit ``progress`` argument is given.  The CLI installs
#: :func:`log_progress` here so every sweep of an invocation reports per-job
#: progress without threading a callback through each scenario module.
_default_progress: Optional[ProgressCallback] = None


def set_progress_logger(callback: Optional[ProgressCallback]) -> None:
    """Install (or, with ``None``, remove) the process-wide progress callback."""
    global _default_progress
    _default_progress = callback


@dataclass(frozen=True)
class RunJob:
    """One independent simulation run of a sweep, fully described by value.

    Attributes:
        key: scenario-specific identity (e.g. ``(seed, "3 Replicas RQ")``)
            used by callers to map merged results back to sweep cells; the
            executor itself only carries it through.
        protocol: transport under test.
        config: the experiment configuration (carries the seed; the worker
            rebuilds ``FatTreeTopology(config.fattree_k)`` from it).
        transfers: the protocol-independent workload, generated by the
            parent so every protocol sees byte-identical offered traffic.
        polyraptor_config: optional protocol-parameter override (used by the
            initial-window ablation).
        network_config: optional fabric override (used by the trimming and
            spraying ablations).
        fault_schedule: optional declarative fault schedule executed against
            the run's fabric (used by the resilience and correlated
            experiments); schedules are immutable value objects, so they
            pickle to workers unchanged.  Routing-convergence lag needs no
            field of its own: it rides inside ``config.convergence_delay_s``
            and its jitter draws from the run's seeded streams, so delayed
            reinstalls stay byte-identical for any worker count.
    """

    key: Hashable
    protocol: Protocol
    config: ExperimentConfig
    transfers: tuple
    polyraptor_config: Optional[PolyraptorConfig] = None
    network_config: Optional[NetworkConfig] = None
    fault_schedule: Optional[FaultSchedule] = None


def sweep_block_sizes(jobs: Iterable[RunJob]) -> set[int]:
    """Every block size K any payload-carrying Polyraptor job will encode.

    Derived from each transfer's byte size through the same
    :func:`~repro.rq.block.partition_object` the sender uses, so the
    pre-warmed encode plans cover the sweep exactly.
    """
    sizes: set[int] = set()
    for job in jobs:
        if job.protocol is not Protocol.POLYRAPTOR:
            continue
        pcfg = job.polyraptor_config or job.config.polyraptor
        if not pcfg.carry_payload:
            continue
        for spec in job.transfers:
            oti = partition_object(
                spec.size_bytes, pcfg.symbol_size_bytes, pcfg.max_symbols_per_block
            )
            sizes.update(oti.symbols_per_block)
    return sizes


def _sweep_is_lossy(jobs: Iterable[RunJob]) -> bool:
    """Whether any payload-carrying Polyraptor job runs under injected faults."""
    for job in jobs:
        if job.protocol is not Protocol.POLYRAPTOR or job.fault_schedule is None:
            continue
        if len(job.fault_schedule) == 0:
            continue
        pcfg = job.polyraptor_config or job.config.polyraptor
        if pcfg.carry_payload:
            return True
    return False


def plan_store_for_jobs(
    jobs: Sequence[RunJob],
    prewarm_decode: Union[bool, str, None] = "auto",
) -> Optional[PlanStore]:
    """Pre-warm a plan store for a sweep, or ``None`` when no job codes bytes.

    Only payload-carrying Polyraptor jobs exercise the codec; for the
    (default) identity-tracking simulations there is nothing to warm and no
    store is shipped.  Encode plans are exact (a pure function of K) and
    always pre-warmed.  Decode plans depend on which packets the fabric
    lost; with ``prewarm_decode`` true -- or ``"auto"`` on a sweep that
    injects faults into payload-carrying jobs -- the **canonical** plans for
    the most common loss patterns (all single missing sources, then pairs,
    within a per-K budget) are built up front so workers start hot (see
    :func:`repro.rq.backend.prewarm_canonical_decode_plans`).  The decision
    depends only on the job list, never on the worker count, so plan-cache
    counters stay identical for every ``--jobs`` value.

    When a persistent plan-cache path is installed (see
    :func:`set_plan_cache_path`), previously saved plans are loaded first so
    only the sweep's *missing* plans are factorised, and the merged store is
    written back for the next process.  Only the plans this sweep can
    actually look up (its block sizes' encode and canonical decode keys) are
    returned -- and therefore shipped to workers -- the cache file may have
    accumulated plans for every block size ever run.
    """
    sizes = sweep_block_sizes(jobs)
    if not sizes:
        return None
    if prewarm_decode in (None, "auto"):
        prewarm_decode = _sweep_is_lossy(jobs)
    store: Optional[PlanStore] = None
    path = _plan_cache_path
    if path is not None and path.exists():
        try:
            store = PlanStore.load(path)
        except PlanStoreSchemaError as error:
            # A store written under another plan-key schema would either
            # never be looked up (wasted shipping) or, worse, collide with
            # current keys.  Reject it loudly and rebuild from scratch.
            warnings.warn(
                f"discarding plan cache {path}: {error}", RuntimeWarning, stacklevel=2
            )
            store = None
        except Exception:
            store = None  # a corrupt cache file is rebuilt, never fatal
    known = len(store) if store is not None else 0
    store = prewarm_encode_plans(sizes, store=store)
    if prewarm_decode:
        store = prewarm_canonical_decode_plans(sizes, store=store)
    if path is not None and len(store) != known:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Merge the latest on-disk contents before writing so a concurrent
        # invocation's contributions survive, then replace atomically so no
        # reader ever observes a torn file.  (The merge narrows, but does not
        # close, the lost-update window -- acceptable for a pure cache whose
        # worst case is refactorising a plan.)
        try:
            store.merge(PlanStore.load(path))
        except Exception:
            pass
        temp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        store.save(temp)
        os.replace(temp, path)
    needed_encode = {("encode", for_k(k)) for k in sizes}
    # Decode keys pass the filter only when THIS sweep pre-warms decode
    # plans; both prewarm passes are pure functions of the job list, so the
    # returned store -- and therefore every worker's preloaded cache and its
    # hit/miss counters -- is identical whether or not a persistent cache
    # file existed.
    needed_params = {for_k(k) for k in sizes} if prewarm_decode else set()
    return PlanStore(
        {
            key: plan
            for key, plan in store.plans.items()
            if key in needed_encode
            or (key[0] == "decode" and key[1] in needed_params)
        }
    )


# Persistent cross-run plan cache ----------------------------------------------------
#
# The CLI's --plan-cache flag installs a process-wide cache file here: every
# sweep of the invocation then reloads previously factorised encode plans
# instead of rebuilding them, and contributes any new ones back.  The default
# file name is keyed by the package version, which invalidates the cache
# across releases; a codec change within an unreleased tree must bump the
# version (or the user delete the file) to avoid replaying plans built by
# the old solver -- plans are data, so a *format* change simply fails to
# unpickle and is rebuilt.

_plan_cache_path: Optional[Path] = None


def default_plan_cache_path() -> Path:
    """The conventional persistent plan-cache location, keyed by package version."""
    return Path.home() / ".cache" / "repro" / f"plans-v{__version__}.pkl"


def set_plan_cache_path(path: Optional[Union[str, Path]]) -> Optional[Path]:
    """Install (or, with ``None``, remove) the persistent plan-cache file.

    Returns the resolved path.  Affects every subsequent
    :func:`plan_store_for_jobs` / :func:`execute_jobs` call in this process;
    the cache never changes results, only how much elimination work a fresh
    process repeats.
    """
    global _plan_cache_path
    _plan_cache_path = Path(path).expanduser() if path is not None else None
    return _plan_cache_path


def run_job(job: RunJob, plan_store: Optional[PlanStore] = None) -> RunResult:
    """Execute one job to completion in the current process.

    Both execution paths funnel through here -- the sequential loop directly
    and each pool worker via its batch loop -- so a job's result cannot
    depend on *where* it ran.  Polyraptor jobs get a fresh codec context
    seeded from ``plan_store`` (when given), making plan-cache counters a
    function of the job alone.
    """
    topology = FatTreeTopology(job.config.fattree_k)
    codec_context: Optional[CodecContext] = None
    if job.protocol is Protocol.POLYRAPTOR:
        pcfg = job.polyraptor_config or job.config.polyraptor
        # The kernel choice rides the job's (picklable) config, so a worker
        # resolves exactly what the parent chose -- "auto" resolves the same
        # way on both sides of the process boundary.
        codec_context = CodecContext(
            pcfg.codec_backend, preload=plan_store, kernel=pcfg.codec_kernel
        )
    return run_transfers(
        job.protocol,
        job.config,
        list(job.transfers),
        topology=topology,
        polyraptor_config=job.polyraptor_config,
        network_config=job.network_config,
        codec_context=codec_context,
        fault_schedule=job.fault_schedule,
    )


# Executor profile -------------------------------------------------------------------


@dataclass
class ExecutorProfile:
    """Per-phase accounting for one ``execute_jobs`` call.

    ``bytes_shipped`` counts payload bytes that crossed the process pipe by
    pickle (job batches, results and the plan store in ``pickle`` transport;
    only tiny segment descriptors in ``shm`` transport -- envelopes are
    estimated at a flat 64 bytes per message).  ``shm_bytes`` counts bytes
    written into shared-memory segments instead.  Wall-clock phases:
    ``prewarm_s`` (plan factorisation), ``pool_spawn_s`` (parent-observed
    time until every worker reported ready -- includes the workers' imports;
    zero when the persistent pool was reused), ``worker_init_s`` (slowest
    worker's kernel + codec warm-up, paid once per pool), ``plans_ship_s``,
    ``serialize_s``
    (packing on both sides), ``merge_s`` (parent-side unpacking and
    in-order merge) and ``run_s`` (summed worker simulation time).
    """

    label: str = ""
    transport: str = "inline"
    workers: int = 1
    pool_reused: bool = False
    jobs_total: int = 0
    chunk_size: int = 1
    num_batches: int = 0
    cpu_count: int = 1
    bytes_shipped: int = 0
    shm_bytes: int = 0
    prewarm_s: float = 0.0
    pool_spawn_s: float = 0.0
    worker_init_s: float = 0.0
    plans_ship_s: float = 0.0
    serialize_s: float = 0.0
    dispatch_s: float = 0.0
    merge_s: float = 0.0
    run_s: float = 0.0
    wall_s: float = 0.0

    def as_dict(self) -> dict:
        """A JSON-friendly snapshot (what benchmarks record)."""
        return asdict(self)


_last_profile: Optional[ExecutorProfile] = None


def last_profile() -> Optional[ExecutorProfile]:
    """The profile of the most recent :func:`execute_jobs` call, if any."""
    return _last_profile


# Telemetry collection ---------------------------------------------------------------
#
# Runs carry their flight-recorder output inside RunResult.telemetry (plain
# dicts, so they ship through shm/pickle unchanged); execute_jobs additionally
# accumulates them here -- mirroring the _last_profile pattern -- so the CLI
# can export every sweep of an invocation without threading telemetry through
# each scenario module's result type.  Only telemetry-carrying runs are
# appended: with telemetry off this list never grows.

_telemetry_records: list[TelemetryRecord] = []


def collected_telemetry() -> list[TelemetryRecord]:
    """Telemetry records accumulated by :func:`execute_jobs` since the last clear.

    In job order within each sweep and sweep order across sweeps -- i.e.
    byte-identical for every worker count, transport and chunk size.
    """
    return list(_telemetry_records)


def clear_telemetry() -> None:
    """Drop every accumulated telemetry record (start of a fresh invocation)."""
    _telemetry_records.clear()


def _accumulate_telemetry(label: str, jobs: Sequence["RunJob"], results: Sequence[RunResult]) -> None:
    for job, result in zip(jobs, results):
        if result.telemetry is not None:
            _telemetry_records.append(
                TelemetryRecord(label=label, key=job.key, data=result.telemetry)
            )


def log_exec_profile(profile: ExecutorProfile) -> None:
    """One stderr summary line per sweep (printed when --progress is on)."""
    print(
        f"[repro] sweep {profile.label or 'jobs'}: {profile.jobs_total} jobs, "
        f"{profile.workers} workers ({profile.transport}"
        f"{', pool reused' if profile.pool_reused else ''}), "
        f"chunk={profile.chunk_size}  wall={profile.wall_s:.2f}s  "
        f"run={profile.run_s:.2f}s  serialize={profile.serialize_s * 1e3:.1f}ms  "
        f"merge={profile.merge_s * 1e3:.1f}ms  "
        f"shipped={profile.bytes_shipped}B  shm={profile.shm_bytes}B",
        file=sys.stderr,
        flush=True,
    )


# Process-wide executor defaults (installed by the CLI) ------------------------------

_default_transport: str = "auto"
_default_chunk: Optional[int] = None


def set_transport(transport: Optional[str]) -> str:
    """Install the process-wide default payload transport (``None`` = auto)."""
    global _default_transport
    transport = transport or "auto"
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    _default_transport = transport
    return _default_transport


def set_chunk_size(chunk: Optional[int]) -> Optional[int]:
    """Install the process-wide default batch size (``None`` = auto)."""
    global _default_chunk
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be at least 1, got {chunk}")
    _default_chunk = chunk
    return _default_chunk


def resolve_transport(transport: Optional[str] = None) -> str:
    """Resolve ``auto``/None to a concrete transport for this platform."""
    transport = transport or _default_transport
    if transport not in TRANSPORTS:
        raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
    if transport == "auto":
        return "shm" if shm.shm_available() else "pickle"
    return transport


def _resolve_chunk(chunk: Optional[int], total: int, workers: int) -> int:
    """Default chunking: ~4 batches per worker bounds idle tails and IPC."""
    if chunk is None:
        chunk = _default_chunk
    if chunk is None:
        chunk = max(1, -(-total // (workers * 4)))
    if chunk < 1:
        raise ValueError(f"chunk must be at least 1, got {chunk}")
    return chunk


# Worker pool ------------------------------------------------------------------------

#: Estimated pipe cost of a queue message envelope (accounting only).
_ENVELOPE_BYTES = 64


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result."""


class WorkerJobError(RuntimeError):
    """A job raised inside a worker; carries the formatted remote traceback."""


def _dump_payload(obj, transport: str) -> tuple[tuple, int, int]:
    """Pack ``obj`` for the pipe: returns (payload, pipe_bytes, shm_bytes)."""
    if transport == "shm":
        slot, stats = shm.pack_object(obj)
        return ("shm", slot), _ENVELOPE_BYTES, stats.total_bytes
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return ("pickle", blob), _ENVELOPE_BYTES + len(blob), 0


def _load_payload(
    payload: tuple,
    copy: bool = True,
    keepalive: Optional[list] = None,
    unlink: bool = True,
):
    """Unpack a payload produced by :func:`_dump_payload`.

    ``unlink=True`` is the single-consumer convention (results, job
    batches).  The plan store is mapped by *every* worker, so those loads
    pass ``unlink=False`` and the parent removes the name once all workers
    have acknowledged.
    """
    kind, body = payload
    if kind == "shm":
        return shm.unpack_object(body, unlink=unlink, copy=copy, keepalive=keepalive)
    if kind == "pickle":
        return pickle.loads(body)
    raise ValueError(f"unknown payload kind {kind!r}")


def _discard_payload(payload: tuple) -> None:
    """Reap a payload that will never be consumed (teardown path)."""
    kind, body = payload
    if kind == "shm":
        shm.discard_segment(body)


def _worker_main(worker_id: int, tasks, results, transport: str) -> None:
    """Entry point of one persistent pool worker.

    Runs until a ``stop`` message arrives.  Initialisation happens exactly
    once per worker process: the heavy imports were paid when this module
    loaded, and the GF(256) kernel tables plus a codec context are warmed
    here so the first job finds everything hot.
    """
    init_start = time.perf_counter()
    from repro.rq.kernels import get_kernel

    get_kernel(None)  # resolve + build the default kernel's tables
    CodecContext()  # warm backend construction once
    results.put(("ready", worker_id, time.perf_counter() - init_start))
    plan_store: Optional[PlanStore] = None
    keepalive: list = []  # open shm mappings backing the zero-copy plan store
    def _drop_plan_store() -> None:
        # Release the zero-copy mapping in dependency order: first the plans
        # whose operators alias the segment, then (after a collection pass
        # clears any cycles) the mapping itself -- closing while ndarray
        # views are live would raise BufferError at interpreter shutdown.
        nonlocal plan_store
        plan_store = None
        if keepalive:
            import gc

            gc.collect()
            for mapping in keepalive:
                try:
                    mapping.close()
                except BufferError:  # pragma: no cover - stray plan reference
                    pass
            keepalive.clear()

    while True:
        message = tasks.get()
        kind = message[0]
        if kind == "stop":
            _drop_plan_store()
            return
        if kind == "plans":
            # A fresh store *replaces* the previous one (never merges): the
            # sequential path preloads exactly this store per job, and the
            # hit/miss determinism contract requires workers to match it.
            payload = message[1]
            _drop_plan_store()
            if payload is not None:
                # Zero-copy: the plans' operators alias the parent-created
                # segment, so all workers share one set of physical pages.
                # The parent owns the name and unlinks it after the acks.
                plan_store = _load_payload(
                    payload, copy=False, keepalive=keepalive, unlink=False
                )
            results.put(("plans_ok", worker_id))
            continue
        if kind != "batch":  # pragma: no cover - protocol guard
            raise RuntimeError(f"worker {worker_id}: unknown message {kind!r}")
        batch_id, payload = message[1], message[2]
        try:
            jobs = _load_payload(payload, copy=True)
            run_start = time.perf_counter()
            runs = [run_job(job, plan_store) for job in jobs]
            run_s = time.perf_counter() - run_start
            pack_start = time.perf_counter()
            # Results are written in place into a fresh segment (pack_object
            # unlinks it itself if packing fails); the parent unlinks after
            # merging.
            out_payload, pipe_bytes, shm_bytes = _dump_payload(runs, transport)
            stats = {
                "run_s": run_s,
                "serialize_s": time.perf_counter() - pack_start,
                "pipe_bytes": pipe_bytes,
                "shm_bytes": shm_bytes,
            }
            results.put(("done", worker_id, batch_id, out_payload, stats))
        except BaseException:
            results.put(("error", worker_id, batch_id, traceback.format_exc()))


class WorkerPool:
    """A persistent pool of spawn-started, pre-warmed worker processes.

    Unlike ``multiprocessing.Pool`` the pool survives across sweeps: the
    module keeps one instance alive (see :func:`get_worker_pool`) so the
    spawn + import + kernel warm-up cost is paid once per process, not once
    per ``execute_jobs`` call.  Jobs are shipped in chunked batches over
    per-worker task queues with parent-side dynamic dispatch (a worker
    receives its next batch when it reports one done), and every payload
    travels by the pool's transport (``shm`` or ``pickle``).
    """

    def __init__(
        self,
        num_workers: int,
        start_method: str = DEFAULT_START_METHOD,
        transport: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be at least 1, got {num_workers}")
        self.num_workers = num_workers
        self.start_method = start_method
        self.transport = resolve_transport(transport)
        context = multiprocessing.get_context(start_method)
        self._results = context.Queue()
        self._tasks = [context.SimpleQueue() for _ in range(num_workers)]
        spawn_start = time.perf_counter()
        self._procs = [
            context.Process(
                target=_worker_main,
                args=(wid, self._tasks[wid], self._results, self.transport),
                daemon=True,
                name=f"repro-worker-{wid}",
            )
            for wid in range(num_workers)
        ]
        for proc in self._procs:
            proc.start()
        self.worker_init_s = 0.0
        for _ in range(num_workers):
            message = self._next_message()
            if message[0] != "ready":  # pragma: no cover - protocol guard
                raise RuntimeError(f"unexpected pool message {message[0]!r}")
            self.worker_init_s = max(self.worker_init_s, message[2])
        self.spawn_s = time.perf_counter() - spawn_start
        self._plans_token: Optional[frozenset] = None
        self._closed = False

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the pool's workers (stable for the pool's lifetime)."""
        return [proc.pid for proc in self._procs]

    def _next_message(self, poll_s: float = 1.0):
        """Next result-queue message, failing fast if a worker died."""
        while True:
            try:
                return self._results.get(timeout=poll_s)
            except queue.Empty:
                dead = [
                    (proc.name, proc.exitcode)
                    for proc in self._procs
                    if not proc.is_alive()
                ]
                if dead:
                    raise WorkerCrashError(
                        f"worker process(es) died: {dead}; pool must be restarted"
                    ) from None

    def ship_plan_store(
        self, store: Optional[PlanStore]
    ) -> tuple[int, int, float]:
        """Ship ``store`` to every worker once; returns (pipe, shm, seconds).

        The store is fingerprinted by its key set (plans are a pure function
        of their key), so re-running the same sweep ships nothing.  In shm
        transport a single segment is packed, every worker maps it zero-copy
        and the parent unlinks the name afterwards -- the mapping, and the
        one shared set of physical pages, survive until the workers exit.
        """
        token = frozenset(store.plans.keys()) if store is not None else frozenset()
        if token == self._plans_token:
            return 0, 0, 0.0
        ship_start = time.perf_counter()
        pipe_bytes = shm_bytes = 0
        slot = None
        if store is None:
            payload = None
        elif self.transport == "shm":
            slot, stats = shm.pack_object(store)
            payload = ("shm", slot)
            shm_bytes = stats.total_bytes
            pipe_bytes = _ENVELOPE_BYTES * self.num_workers
        else:
            blob = store.to_bytes()
            payload = ("pickle", blob)
            pipe_bytes = (len(blob) + _ENVELOPE_BYTES) * self.num_workers
        try:
            for tasks in self._tasks:
                tasks.put(("plans", payload))
            for _ in range(self.num_workers):
                message = self._next_message()
                if message[0] != "plans_ok":  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unexpected pool message {message[0]!r}")
        finally:
            if slot is not None:
                # Every worker holds a mapping (or died -- in which case the
                # pool is being torn down); release the name either way.
                shm.discard_segment(slot)
        self._plans_token = token
        return pipe_bytes, shm_bytes, time.perf_counter() - ship_start

    def run_jobs(
        self,
        jobs: Sequence[RunJob],
        chunk_size: int,
        progress: Optional[ProgressCallback],
        profile: ExecutorProfile,
    ) -> list[RunResult]:
        """Run ``jobs`` across the pool; results return in job order.

        Batches of ``chunk_size`` consecutive jobs are dispatched dynamically
        -- each worker gets a new batch as it finishes one -- and merged in
        submission order, so the output (and the order of ``progress``
        callbacks) is independent of scheduling.  On any worker error the
        in-flight segments are reaped before the exception propagates, so a
        failed sweep leaks no shared memory.
        """
        batches = [list(jobs[at:at + chunk_size]) for at in range(0, len(jobs), chunk_size)]
        starts = list(range(0, len(jobs), chunk_size))
        profile.num_batches = len(batches)
        in_flight: dict[int, tuple] = {}
        batch_results: dict[int, list[RunResult]] = {}
        next_batch = 0
        fired = 0  # progress callbacks fired (== merged job-order prefix)

        def dispatch(worker_id: int) -> None:
            nonlocal next_batch
            if next_batch >= len(batches):
                return
            pack_start = time.perf_counter()
            payload, pipe_bytes, shm_bytes = _dump_payload(
                batches[next_batch], self.transport
            )
            profile.serialize_s += time.perf_counter() - pack_start
            profile.bytes_shipped += pipe_bytes
            profile.shm_bytes += shm_bytes
            in_flight[next_batch] = payload
            self._tasks[worker_id].put(("batch", next_batch, payload))
            next_batch += 1

        dispatch_start = time.perf_counter()
        try:
            for worker_id in range(min(self.num_workers, len(batches))):
                dispatch(worker_id)
            while len(batch_results) < len(batches):
                message = self._next_message()
                kind = message[0]
                if kind == "done":
                    _, worker_id, batch_id, payload, stats = message
                    in_flight.pop(batch_id, None)
                    merge_start = time.perf_counter()
                    batch_results[batch_id] = _load_payload(payload, copy=True)
                    profile.merge_s += time.perf_counter() - merge_start
                    profile.run_s += stats["run_s"]
                    profile.serialize_s += stats["serialize_s"]
                    profile.bytes_shipped += stats["pipe_bytes"]
                    profile.shm_bytes += stats["shm_bytes"]
                    dispatch(worker_id)
                    if progress is not None:
                        merge_start = time.perf_counter()
                        while fired < len(jobs):
                            batch_of = fired // chunk_size
                            if batch_of not in batch_results:
                                break
                            result = batch_results[batch_of][fired - starts[batch_of]]
                            progress(fired, len(jobs), jobs[fired], result)
                            fired += 1
                        profile.merge_s += time.perf_counter() - merge_start
                elif kind == "error":
                    _, worker_id, batch_id, remote_traceback = message
                    in_flight.pop(batch_id, None)
                    keys = [job.key for job in batches[batch_id]]
                    raise WorkerJobError(
                        f"worker {worker_id} failed on batch {batch_id} "
                        f"(job keys {keys}):\n{remote_traceback}"
                    )
                else:  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unexpected pool message {kind!r}")
        except BaseException:
            self._reap_in_flight(in_flight)
            raise
        finally:
            profile.dispatch_s += time.perf_counter() - dispatch_start
        merge_start = time.perf_counter()
        merged = [run for batch_id in range(len(batches)) for run in batch_results[batch_id]]
        profile.merge_s += time.perf_counter() - merge_start
        return merged

    def _reap_in_flight(self, in_flight: dict[int, tuple]) -> None:
        """Unlink every segment whose consumer may never attach (error path)."""
        for payload in in_flight.values():
            _discard_payload(payload)
        # Drain any already-queued results so their segments are freed too.
        while True:
            try:
                message = self._results.get_nowait()
            except queue.Empty:
                return
            if message[0] == "done":
                _discard_payload(message[3])

    def close(self, force: bool = False, join_timeout_s: float = 5.0) -> None:
        """Stop every worker; ``force`` terminates instead of asking."""
        if self._closed:
            return
        self._closed = True
        if not force:
            for tasks in self._tasks:
                try:
                    tasks.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover - broken pipe
                    pass
        for proc in self._procs:
            if force:
                proc.terminate()
            proc.join(timeout=join_timeout_s)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=join_timeout_s)
        self._results.close()


_pool: Optional[WorkerPool] = None


def get_worker_pool(
    num_workers: int,
    start_method: str = DEFAULT_START_METHOD,
    transport: Optional[str] = None,
) -> tuple[WorkerPool, bool]:
    """The process-wide persistent pool; returns ``(pool, was_reused)``.

    A pool is reused while the requested shape (worker count, start method,
    resolved transport) matches; a mismatch shuts the old pool down and
    spawns a fresh one.  The pool is torn down automatically at interpreter
    exit.
    """
    global _pool
    transport = resolve_transport(transport)
    if _pool is not None and not _pool._closed:
        if (
            _pool.num_workers == num_workers
            and _pool.start_method == start_method
            and _pool.transport == transport
            and all(proc.is_alive() for proc in _pool._procs)
        ):
            return _pool, True
        shutdown_worker_pool()
    _pool = WorkerPool(num_workers, start_method=start_method, transport=transport)
    return _pool, False


def warm_worker_pool(
    num_workers: int,
    start_method: str = DEFAULT_START_METHOD,
    transport: Optional[str] = None,
) -> WorkerPool:
    """Ensure the persistent pool exists and is warm (benchmark helper)."""
    pool, _ = get_worker_pool(num_workers, start_method=start_method, transport=transport)
    return pool


def shutdown_worker_pool() -> None:
    """Tear down the persistent pool (no-op when none is running)."""
    global _pool
    if _pool is not None:
        try:
            _pool.close()
        finally:
            _pool = None


atexit.register(shutdown_worker_pool)


def execute_jobs(
    jobs: Sequence[RunJob],
    num_workers: int = 1,
    plan_store: Optional[PlanStore] = None,
    start_method: str = DEFAULT_START_METHOD,
    progress: Optional[ProgressCallback] = None,
    transport: Optional[str] = None,
    chunk: Optional[int] = None,
    label: str = "",
    prewarm_decode: Union[bool, str, None] = "auto",
) -> list[RunResult]:
    """Run every job and return their results in job order.

    Args:
        jobs: the expanded sweep.
        num_workers: how many worker processes to shard across; ``<= 1``
            runs everything sequentially in this process (no pool, no
            pickling) but with identical semantics.
        plan_store: the shared elimination-plan store; when ``None`` one is
            pre-warmed automatically for payload-carrying Polyraptor jobs
            (see :func:`plan_store_for_jobs`).
        start_method: multiprocessing start method; ``spawn`` by default.
        progress: optional per-job callback ``(index, total, job, result)``,
            invoked in job order as results arrive (the CLI wires
            :func:`log_progress` here); it never affects results.
        transport: payload transport (``"shm"``/``"pickle"``/``"auto"``);
            ``None`` uses the process default (see :func:`set_transport`).
            Results are byte-identical across transports.
        chunk: jobs per dispatched batch; ``None`` uses the process default
            or, failing that, ~4 batches per worker.  Affects scheduling
            granularity only, never results.
        label: a short sweep name recorded in the executor profile and
            progress output.
        prewarm_decode: pre-warm canonical decode plans for common loss
            patterns (``"auto"``: only for sweeps injecting faults into
            payload-carrying jobs).  A function of the job list alone, so
            plan-cache counters stay identical for every worker count.

    Returns:
        ``[run_job(job) for job in jobs]`` -- the merge is a stable,
        order-preserving map, so callers can zip results with their job list
        no matter how many workers ran.

    Every call records an :class:`ExecutorProfile` retrievable via
    :func:`last_profile`.
    """
    global _last_profile
    wall_start = time.perf_counter()
    jobs = list(jobs)
    total = len(jobs)
    if progress is None:
        progress = _default_progress
    profile = ExecutorProfile(label=label, jobs_total=total, cpu_count=available_cpus())
    prewarm_start = time.perf_counter()
    if plan_store is None:
        plan_store = plan_store_for_jobs(jobs, prewarm_decode=prewarm_decode)
    profile.prewarm_s = time.perf_counter() - prewarm_start
    if num_workers <= 1 or total <= 1:
        results: list[RunResult] = []
        run_start = time.perf_counter()
        for index, job in enumerate(jobs):
            result = run_job(job, plan_store)
            if progress is not None:
                progress(index, total, job, result)
            results.append(result)
        profile.run_s = time.perf_counter() - run_start
        profile.wall_s = time.perf_counter() - wall_start
        _last_profile = profile
        _accumulate_telemetry(label, jobs, results)
        return results
    pool, reused = get_worker_pool(
        num_workers, start_method=start_method, transport=transport
    )
    profile.transport = pool.transport
    profile.workers = pool.num_workers
    profile.pool_reused = reused
    profile.pool_spawn_s = 0.0 if reused else pool.spawn_s
    profile.worker_init_s = pool.worker_init_s
    profile.chunk_size = _resolve_chunk(chunk, total, pool.num_workers)
    try:
        pipe_bytes, shm_bytes, ship_s = pool.ship_plan_store(plan_store)
        profile.bytes_shipped += pipe_bytes
        profile.shm_bytes += shm_bytes
        profile.plans_ship_s = ship_s
        results = pool.run_jobs(jobs, profile.chunk_size, progress, profile)
    except (WorkerCrashError, WorkerJobError):
        # The pool may hold poisoned queues or dead workers; restart fresh
        # on the next sweep rather than risking a hang.
        shutdown_worker_pool()
        raise
    profile.wall_s = time.perf_counter() - wall_start
    _last_profile = profile
    _accumulate_telemetry(label, jobs, results)
    if progress is log_progress:
        log_exec_profile(profile)
    return results
