"""Sharded parallel experiment execution with a shared plan store.

Every figure and ablation of the paper is a *sweep*: the cartesian product
of seeds, protocols and scenario parameters, where each cell is one
independent simulation run.  This module turns such a sweep into a list of
:class:`RunJob` descriptions and executes them either in-process or across
worker processes, with three guarantees:

1. **Determinism.**  A job is a pure function of its fields: the worker
   rebuilds the topology from the config (``FatTreeTopology`` is a pure
   function of ``k``), seeds fresh random streams from the config's seed and
   replays the transfer list the parent generated.  Results are merged in
   job-submission order regardless of which worker finished first, so the
   output of ``num_workers=N`` is byte-identical to ``num_workers=1`` for
   every N.

2. **Warm codec caches everywhere.**  Elimination plans
   (:class:`~repro.rq.plan.EliminationPlan`) are immutable, so the parent
   pre-warms the encode-side plans for every block size appearing in the
   sweep once, snapshots them into a picklable
   :class:`~repro.rq.plan.PlanStore`, and ships the store to each worker via
   the pool initializer.  Each job then runs with a
   :class:`~repro.rq.backend.CodecContext` preloaded from the same store --
   the sequential path does exactly the same, which is what keeps plan-cache
   hit/miss counters identical across worker counts.

3. **Spawn safety.**  Workers are started with the ``spawn`` method (the
   only method available on every platform and the default on macOS and
   Windows): everything a job needs crosses the process boundary by pickle
   -- configs, transfer specs and the plan store -- and the worker entry
   points are module-level functions.  The GF(256) kernel choice
   (``PolyraptorConfig.codec_kernel``, the CLI's ``--kernel``) travels
   inside each job's config, so workers always run the kernel the parent
   selected; kernels themselves are stateless and never pickled.

Plan stores are versioned by key schema
(:data:`repro.rq.plan.PLAN_STORE_SCHEMA`): a persistent ``--plan-cache``
file written by an older schema is rejected with a warning and rebuilt
rather than silently shipping plans nothing will look up.

Typical use (what the figure drivers do internally)::

    from repro.experiments.parallel import RunJob, execute_jobs

    jobs = [RunJob(key=(seed, label), protocol=proto, config=cfg.with_seed(seed),
                   transfers=tuple(transfers))
            for seed in seeds for (label, proto, transfers) in cells]
    results = execute_jobs(jobs, num_workers=4)   # same output as num_workers=1
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable, Iterable, Optional, Sequence, Union

from repro._version import __version__
from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.runner import RunResult, run_transfers
from repro.faults.schedule import FaultSchedule
from repro.network.network import NetworkConfig
from repro.network.topology import FatTreeTopology
from repro.rq.backend import CodecContext, prewarm_encode_plans
from repro.rq.block import partition_object
from repro.rq.params import for_k
from repro.rq.plan import PlanStore, PlanStoreSchemaError

#: Start method used for worker pools; ``spawn`` is the portable choice and
#: proves that every job artefact survives pickling.
DEFAULT_START_METHOD = "spawn"

#: Called after each job completes (in job order): (index, total, job, result).
ProgressCallback = Callable[[int, int, "RunJob", RunResult], None]


def resolve_jobs(jobs: Union[int, str]) -> int:
    """Resolve a worker count: ``"auto"`` means one worker per CPU core.

    Accepts an int, a decimal string, or the literal ``"auto"`` (case
    insensitive); anything else, or a count below 1, raises ``ValueError``.
    This is what the CLI's ``--jobs`` flag funnels through.
    """
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be at least 1, got {jobs}")
    return jobs


def log_progress(index: int, total: int, job: "RunJob", result: RunResult) -> None:
    """The default per-job progress logger: one stderr line per finished job.

    Written to stderr so the stdout tables stay byte-identical whether or
    not progress logging is on.
    """
    print(
        f"[repro] job {index + 1}/{total} done  key={job.key!r}  "
        f"protocol={job.protocol.value}  sim={result.sim_time_s:.3f}s  "
        f"wall={result.wall_time_s:.2f}s",
        file=sys.stderr,
        flush=True,
    )


#: Process-wide default progress callback; ``execute_jobs`` falls back to it
#: when no explicit ``progress`` argument is given.  The CLI installs
#: :func:`log_progress` here so every sweep of an invocation reports per-job
#: progress without threading a callback through each scenario module.
_default_progress: Optional[ProgressCallback] = None


def set_progress_logger(callback: Optional[ProgressCallback]) -> None:
    """Install (or, with ``None``, remove) the process-wide progress callback."""
    global _default_progress
    _default_progress = callback


@dataclass(frozen=True)
class RunJob:
    """One independent simulation run of a sweep, fully described by value.

    Attributes:
        key: scenario-specific identity (e.g. ``(seed, "3 Replicas RQ")``)
            used by callers to map merged results back to sweep cells; the
            executor itself only carries it through.
        protocol: transport under test.
        config: the experiment configuration (carries the seed; the worker
            rebuilds ``FatTreeTopology(config.fattree_k)`` from it).
        transfers: the protocol-independent workload, generated by the
            parent so every protocol sees byte-identical offered traffic.
        polyraptor_config: optional protocol-parameter override (used by the
            initial-window ablation).
        network_config: optional fabric override (used by the trimming and
            spraying ablations).
        fault_schedule: optional declarative fault schedule executed against
            the run's fabric (used by the resilience and correlated
            experiments); schedules are immutable value objects, so they
            pickle to workers unchanged.  Routing-convergence lag needs no
            field of its own: it rides inside ``config.convergence_delay_s``
            and its jitter draws from the run's seeded streams, so delayed
            reinstalls stay byte-identical for any worker count.
    """

    key: Hashable
    protocol: Protocol
    config: ExperimentConfig
    transfers: tuple
    polyraptor_config: Optional[PolyraptorConfig] = None
    network_config: Optional[NetworkConfig] = None
    fault_schedule: Optional[FaultSchedule] = None


def sweep_block_sizes(jobs: Iterable[RunJob]) -> set[int]:
    """Every block size K any payload-carrying Polyraptor job will encode.

    Derived from each transfer's byte size through the same
    :func:`~repro.rq.block.partition_object` the sender uses, so the
    pre-warmed encode plans cover the sweep exactly.
    """
    sizes: set[int] = set()
    for job in jobs:
        if job.protocol is not Protocol.POLYRAPTOR:
            continue
        pcfg = job.polyraptor_config or job.config.polyraptor
        if not pcfg.carry_payload:
            continue
        for spec in job.transfers:
            oti = partition_object(
                spec.size_bytes, pcfg.symbol_size_bytes, pcfg.max_symbols_per_block
            )
            sizes.update(oti.symbols_per_block)
    return sizes


def plan_store_for_jobs(jobs: Sequence[RunJob]) -> Optional[PlanStore]:
    """Pre-warm a plan store for a sweep, or ``None`` when no job codes bytes.

    Only payload-carrying Polyraptor jobs exercise the codec; for the
    (default) identity-tracking simulations there is nothing to warm and no
    store is shipped.  Encode plans are exact (a pure function of K); decode
    plans depend on which packets the fabric lost, so they are left to
    accumulate in each worker's cache.

    When a persistent plan-cache path is installed (see
    :func:`set_plan_cache_path`), previously saved plans are loaded first so
    only the sweep's *missing* block sizes are factorised, and the merged
    store is written back for the next process.  Only the plans this sweep
    actually needs are returned (and therefore shipped to workers) -- the
    cache file may have accumulated plans for every block size ever run.
    """
    sizes = sweep_block_sizes(jobs)
    if not sizes:
        return None
    store: Optional[PlanStore] = None
    path = _plan_cache_path
    if path is not None and path.exists():
        try:
            store = PlanStore.load(path)
        except PlanStoreSchemaError as error:
            # A store written under another plan-key schema would either
            # never be looked up (wasted shipping) or, worse, collide with
            # current keys.  Reject it loudly and rebuild from scratch.
            warnings.warn(
                f"discarding plan cache {path}: {error}", RuntimeWarning, stacklevel=2
            )
            store = None
        except Exception:
            store = None  # a corrupt cache file is rebuilt, never fatal
    known = len(store) if store is not None else 0
    store = prewarm_encode_plans(sizes, store=store)
    if path is not None and len(store) != known:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Merge the latest on-disk contents before writing so a concurrent
        # invocation's contributions survive, then replace atomically so no
        # reader ever observes a torn file.  (The merge narrows, but does not
        # close, the lost-update window -- acceptable for a pure cache whose
        # worst case is refactorising a plan.)
        try:
            store.merge(PlanStore.load(path))
        except Exception:
            pass
        temp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        store.save(temp)
        os.replace(temp, path)
    needed = {("encode", for_k(k)) for k in sizes}
    return PlanStore({key: plan for key, plan in store.plans.items() if key in needed})


# Persistent cross-run plan cache ----------------------------------------------------
#
# The CLI's --plan-cache flag installs a process-wide cache file here: every
# sweep of the invocation then reloads previously factorised encode plans
# instead of rebuilding them, and contributes any new ones back.  The default
# file name is keyed by the package version, which invalidates the cache
# across releases; a codec change within an unreleased tree must bump the
# version (or the user delete the file) to avoid replaying plans built by
# the old solver -- plans are data, so a *format* change simply fails to
# unpickle and is rebuilt.

_plan_cache_path: Optional[Path] = None


def default_plan_cache_path() -> Path:
    """The conventional persistent plan-cache location, keyed by package version."""
    return Path.home() / ".cache" / "repro" / f"plans-v{__version__}.pkl"


def set_plan_cache_path(path: Optional[Union[str, Path]]) -> Optional[Path]:
    """Install (or, with ``None``, remove) the persistent plan-cache file.

    Returns the resolved path.  Affects every subsequent
    :func:`plan_store_for_jobs` / :func:`execute_jobs` call in this process;
    the cache never changes results, only how much elimination work a fresh
    process repeats.
    """
    global _plan_cache_path
    _plan_cache_path = Path(path).expanduser() if path is not None else None
    return _plan_cache_path


def run_job(job: RunJob, plan_store: Optional[PlanStore] = None) -> RunResult:
    """Execute one job to completion in the current process.

    Both execution paths funnel through here -- the sequential loop directly
    and each pool worker via :func:`_run_job_in_worker` -- so a job's result
    cannot depend on *where* it ran.  Polyraptor jobs get a fresh codec
    context seeded from ``plan_store`` (when given), making plan-cache
    counters a function of the job alone.
    """
    topology = FatTreeTopology(job.config.fattree_k)
    codec_context: Optional[CodecContext] = None
    if job.protocol is Protocol.POLYRAPTOR:
        pcfg = job.polyraptor_config or job.config.polyraptor
        # The kernel choice rides the job's (picklable) config, so a worker
        # resolves exactly what the parent chose -- "auto" resolves the same
        # way on both sides of the process boundary.
        codec_context = CodecContext(
            pcfg.codec_backend, preload=plan_store, kernel=pcfg.codec_kernel
        )
    return run_transfers(
        job.protocol,
        job.config,
        list(job.transfers),
        topology=topology,
        polyraptor_config=job.polyraptor_config,
        network_config=job.network_config,
        codec_context=codec_context,
        fault_schedule=job.fault_schedule,
    )


# Worker-side state ------------------------------------------------------------------
#
# The plan store is shipped once per worker through the pool initializer (not
# once per job): spawn-started workers import this module fresh, run
# _init_worker, and keep the deserialised store in a module global.

_worker_plan_store: Optional[PlanStore] = None


def _init_worker(store_bytes: Optional[bytes]) -> None:
    global _worker_plan_store
    _worker_plan_store = PlanStore.from_bytes(store_bytes) if store_bytes else None


def _run_job_in_worker(job: RunJob) -> RunResult:
    return run_job(job, _worker_plan_store)


def execute_jobs(
    jobs: Sequence[RunJob],
    num_workers: int = 1,
    plan_store: Optional[PlanStore] = None,
    start_method: str = DEFAULT_START_METHOD,
    progress: Optional[ProgressCallback] = None,
) -> list[RunResult]:
    """Run every job and return their results in job order.

    Args:
        jobs: the expanded sweep.
        num_workers: how many worker processes to shard across; ``<= 1``
            runs everything sequentially in this process (no pool, no
            pickling) but with identical semantics.
        plan_store: the shared elimination-plan store; when ``None`` one is
            pre-warmed automatically for payload-carrying Polyraptor jobs
            (see :func:`plan_store_for_jobs`).
        start_method: multiprocessing start method; ``spawn`` by default.
        progress: optional per-job callback ``(index, total, job, result)``,
            invoked in job order as results arrive (the CLI wires
            :func:`log_progress` here); it never affects results.

    Returns:
        ``[run_job(job) for job in jobs]`` -- the merge is a stable,
        order-preserving map, so callers can zip results with their job list
        no matter how many workers ran.
    """
    jobs = list(jobs)
    total = len(jobs)
    if progress is None:
        progress = _default_progress
    if plan_store is None:
        plan_store = plan_store_for_jobs(jobs)
    if num_workers <= 1 or total <= 1:
        results: list[RunResult] = []
        for index, job in enumerate(jobs):
            result = run_job(job, plan_store)
            if progress is not None:
                progress(index, total, job, result)
            results.append(result)
        return results
    context = multiprocessing.get_context(start_method)
    store_bytes = plan_store.to_bytes() if plan_store is not None else None
    with context.Pool(
        processes=min(num_workers, total),
        initializer=_init_worker,
        initargs=(store_bytes,),
    ) as pool:
        # Pool.imap preserves input order; chunksize=1 keeps long jobs from
        # serialising behind each other on one worker.
        results = []
        for index, result in enumerate(pool.imap(_run_job_in_worker, jobs, chunksize=1)):
            if progress is not None:
                progress(index, total, jobs[index], result)
            results.append(result)
        return results
