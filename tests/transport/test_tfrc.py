"""Tests for the TFRC equation-based rate controller.

Covers the ISSUE satellites: the throughput equation against hand-computed
values, loss-interval bookkeeping (one event per RTT, weighted-average
history, first-event seeding) and monotonicity -- the allowed rate falls
when the loss-event rate rises and recovers when the marks stop.
"""

from __future__ import annotations

import math

import pytest

from repro.transport.tfrc import (
    LOSS_INTERVAL_HISTORY,
    LOSS_INTERVAL_WEIGHTS,
    LossIntervalEstimator,
    TfrcController,
    tfrc_rate_bps,
)


class TestRateEquation:
    def test_zero_loss_is_unbounded(self):
        assert tfrc_rate_bps(1500, 1e-3, 0.0) == math.inf

    def test_hand_computed_value(self):
        # s=1500 B, R=1 ms, p=0.01, b=1, t_RTO=4R:
        #   X = 1500*8 / (R*sqrt(2p/3) + 4R * 3*sqrt(3p/8) * p * (1+32p^2))
        s, rtt, p = 1500, 1e-3, 0.01
        denominator = rtt * math.sqrt(2 * p / 3) + (4 * rtt) * (
            3 * math.sqrt(3 * p / 8)
        ) * p * (1 + 32 * p * p)
        expected = s * 8 / denominator
        assert tfrc_rate_bps(s, rtt, p) == pytest.approx(expected)
        # Sanity on magnitude: ~100 Mbps territory for these inputs.
        assert 10e6 < expected < 200e6

    def test_rate_decreases_with_loss(self):
        rates = [tfrc_rate_bps(1500, 1e-3, p) for p in (0.001, 0.01, 0.1, 0.5)]
        assert rates == sorted(rates, reverse=True)

    def test_rate_decreases_with_rtt(self):
        fast = tfrc_rate_bps(1500, 1e-4, 0.01)
        slow = tfrc_rate_bps(1500, 1e-2, 0.01)
        assert fast > slow

    def test_input_validation(self):
        with pytest.raises(ValueError):
            tfrc_rate_bps(0, 1e-3, 0.01)
        with pytest.raises(ValueError):
            tfrc_rate_bps(1500, 0.0, 0.01)
        with pytest.raises(ValueError):
            tfrc_rate_bps(1500, 1e-3, 1.5)


class TestLossIntervalEstimator:
    def test_no_loss_means_zero_rate(self):
        estimator = LossIntervalEstimator()
        estimator.on_packet(1000)
        assert estimator.loss_event_rate() == 0.0

    def test_first_event_seeds_history_with_run_up(self):
        # 200 clean packets then one mark: p must reflect the clean run-up
        # (1/200), not crash to 1.
        estimator = LossIntervalEstimator()
        estimator.on_packet(200)
        assert estimator.on_congestion(now=1.0, rtt_s=1e-3) is True
        assert estimator.loss_event_rate() == pytest.approx(1 / 200)

    def test_signals_within_one_rtt_are_one_event(self):
        estimator = LossIntervalEstimator()
        estimator.on_packet(100)
        assert estimator.on_congestion(now=1.0, rtt_s=1e-3) is True
        estimator.on_packet(3)
        # Two more signals inside the same RTT: same loss event.
        assert estimator.on_congestion(now=1.0 + 2e-4, rtt_s=1e-3) is False
        assert estimator.on_congestion(now=1.0 + 9e-4, rtt_s=1e-3) is False
        assert estimator.loss_events == 1
        assert estimator.congestion_signals == 3
        # A signal one RTT later opens a new event.
        assert estimator.on_congestion(now=1.0 + 2e-3, rtt_s=1e-3) is True
        assert estimator.loss_events == 2

    def test_weighted_average_bookkeeping(self):
        # Two closed intervals of 100 then 50 packets (newest first: 50, 100)
        # -> mean = (50*1 + 100*1) / 2 = 75, p = 1/75.  The open interval is
        # empty so the with-open average cannot win.
        estimator = LossIntervalEstimator()
        estimator.on_packet(100)
        estimator.on_congestion(now=1.0, rtt_s=1e-4)
        estimator.on_packet(50)
        estimator.on_congestion(now=2.0, rtt_s=1e-4)
        assert estimator.loss_event_rate() == pytest.approx(1 / 75)

    def test_open_interval_lets_rate_recover(self):
        estimator = LossIntervalEstimator()
        estimator.on_packet(10)
        estimator.on_congestion(now=1.0, rtt_s=1e-4)
        p_right_after = estimator.loss_event_rate()
        # A long clean run after the event grows the open interval; p falls.
        estimator.on_packet(1000)
        assert estimator.loss_event_rate() < p_right_after

    def test_history_is_bounded(self):
        estimator = LossIntervalEstimator()
        for event in range(3 * LOSS_INTERVAL_HISTORY):
            estimator.on_packet(10)
            estimator.on_congestion(now=float(event), rtt_s=1e-4)
        assert len(estimator._intervals) == LOSS_INTERVAL_HISTORY
        assert len(LOSS_INTERVAL_WEIGHTS) == LOSS_INTERVAL_HISTORY

    def test_validation(self):
        with pytest.raises(ValueError):
            LossIntervalEstimator(history=0)


class TestTfrcController:
    def make(self, **kwargs) -> TfrcController:
        defaults = dict(segment_bytes=1500, max_rate_bps=1e9, initial_rtt_s=1e-3)
        defaults.update(kwargs)
        return TfrcController(**defaults)

    def test_clean_path_allows_max_rate(self):
        controller = self.make()
        controller.on_packet(10_000)
        controller.on_rtt_sample(5e-4)
        assert controller.allowed_rate_bps == 1e9
        assert controller.loss_event_rate == 0.0

    def test_rate_falls_on_congestion_and_recovers_when_marks_stop(self):
        controller = self.make()
        controller.on_packet(50)
        controller.on_congestion(now=1.0)
        after_first = controller.allowed_rate_bps
        assert after_first < 1e9
        # Repeated marks, each a new loss event: the rate keeps falling.
        controller.on_packet(5)
        controller.on_congestion(now=1.1)
        controller.on_packet(5)
        controller.on_congestion(now=1.2)
        after_burst = controller.allowed_rate_bps
        assert after_burst < after_first
        # Marks stop; clean packets accumulate; the allowed rate recovers.
        recovery = []
        for _ in range(8):
            controller.on_packet(500)
            controller.on_rtt_sample(1e-3)  # triggers a recompute
            recovery.append(controller.allowed_rate_bps)
        assert recovery[-1] > after_burst
        assert recovery == sorted(recovery)

    def test_rate_floor(self):
        # p = 1 at R = 1 ms yields ~49 kbps from the raw equation; a floor
        # above that must win the clamp.
        controller = self.make(min_rate_bps=1e5)
        for event in range(50):
            controller.on_packet(1)
            controller.on_congestion(now=float(event))
        assert controller.loss_event_rate == 1.0
        assert controller.allowed_rate_bps == 1e5

    def test_rate_updates_counter_counts_changes(self):
        controller = self.make()
        assert controller.rate_updates == 0
        controller.on_rtt_sample(1e-3)  # clean path: still at max, no change
        assert controller.rate_updates == 0
        controller.on_packet(100)
        controller.on_congestion(now=1.0)
        assert controller.rate_updates == 1

    def test_rtt_ewma(self):
        controller = self.make(rtt_alpha=0.25)
        controller.on_rtt_sample(1e-3)  # first sample replaces the initial guess
        assert controller.rtt_s == pytest.approx(1e-3)
        controller.on_rtt_sample(2e-3)
        assert controller.rtt_s == pytest.approx(0.75 * 1e-3 + 0.25 * 2e-3)
        controller.on_rtt_sample(-1.0)  # ignored
        assert controller.rtt_s == pytest.approx(0.75 * 1e-3 + 0.25 * 2e-3)

    def test_send_interval_matches_rate(self):
        controller = self.make(max_rate_bps=12_000.0)
        # 1500 B at 12 kbps -> one packet per second.
        assert controller.send_interval_s() == pytest.approx(1.0)
        assert controller.send_interval_s(750) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(segment_bytes=0)
        with pytest.raises(ValueError):
            self.make(max_rate_bps=0)
        with pytest.raises(ValueError):
            self.make(min_rate_bps=2e9)  # floor above ceiling
        with pytest.raises(ValueError):
            self.make(rtt_alpha=0.0)
