"""TFRC controller edge cases: timer/rate behaviour at the boundaries."""

import math

import pytest

from repro.transport.tfrc import TfrcController, tfrc_rate_bps


def make_controller(**kwargs):
    defaults = dict(segment_bytes=1472, max_rate_bps=1e9)
    defaults.update(kwargs)
    return TfrcController(**defaults)


class TestRttSampling:
    def test_zero_and_negative_samples_are_ignored(self):
        tfrc = make_controller(initial_rtt_s=1e-3)
        tfrc.on_rtt_sample(0.0)
        tfrc.on_rtt_sample(-5.0)
        assert tfrc.rtt_s == 1e-3
        assert tfrc.rate_updates == 0

    def test_first_sample_overwrites_instead_of_blending(self):
        tfrc = make_controller(initial_rtt_s=1e-3)
        tfrc.on_rtt_sample(4e-3)
        # Not an EWMA of the initial guess: the guess carries no information.
        assert tfrc.rtt_s == 4e-3

    def test_second_sample_blends_with_ewma(self):
        tfrc = make_controller(rtt_alpha=0.25)
        tfrc.on_rtt_sample(4e-3)
        tfrc.on_rtt_sample(8e-3)
        assert tfrc.rtt_s == pytest.approx(0.75 * 4e-3 + 0.25 * 8e-3)

    def test_ignored_sample_after_real_sample_keeps_state(self):
        tfrc = make_controller()
        tfrc.on_rtt_sample(4e-3)
        tfrc.on_rtt_sample(0.0)
        assert tfrc.rtt_s == 4e-3


class TestRateFloor:
    def test_consecutive_loss_clamps_to_floor_not_zero(self):
        tfrc = make_controller(max_rate_bps=1e9, min_rate_bps=1e5)
        tfrc.on_rtt_sample(1e-3)
        # One congestion signal per RTT-spaced instant, never a clean packet:
        # p climbs to 1 and the raw equation rate collapses below the floor.
        for i in range(50):
            tfrc.on_packet()
            tfrc.on_congestion(now=i * 1.0)
        assert tfrc.loss_event_rate == 1.0
        from repro.transport.tfrc import tfrc_rate_bps as equation
        assert equation(1472, tfrc.rtt_s, 1.0) < 1e5
        assert tfrc.allowed_rate_bps == 1e5
        assert tfrc.send_interval_s() == pytest.approx(1472 * 8 / 1e5)

    def test_default_floor_is_fraction_of_ceiling(self):
        tfrc = make_controller(max_rate_bps=1e9)
        assert tfrc.min_rate_bps == pytest.approx(1e5)

    def test_rate_recovers_as_lossfree_packets_accumulate(self):
        tfrc = make_controller()
        tfrc.on_rtt_sample(1e-3)
        for i in range(10):
            tfrc.on_packet()
            tfrc.on_congestion(now=float(i))
        floored = tfrc.allowed_rate_bps
        tfrc.on_packet(100_000)
        tfrc.on_congestion(now=100.0)  # closes the long interval into history
        assert tfrc.allowed_rate_bps > floored

    def test_signals_within_one_rtt_are_one_loss_event(self):
        tfrc = make_controller(initial_rtt_s=1e-3)
        tfrc.on_packet(100)
        assert tfrc.on_congestion(now=0.0) is True
        assert tfrc.on_congestion(now=0.5e-3) is False
        assert tfrc.on_congestion(now=2e-3) is True
        assert tfrc.estimator.loss_events == 2
        assert tfrc.estimator.congestion_signals == 3


class TestCleanPath:
    def test_no_loss_means_line_rate(self):
        tfrc = make_controller(max_rate_bps=1e9)
        tfrc.on_packet(10_000)
        tfrc.on_rtt_sample(5e-3)
        assert tfrc.loss_event_rate == 0.0
        assert tfrc.allowed_rate_bps == 1e9

    def test_send_interval_uses_segment_or_override(self):
        tfrc = make_controller(segment_bytes=1000, max_rate_bps=8e6)
        assert tfrc.send_interval_s() == pytest.approx(1e-3)
        assert tfrc.send_interval_s(packet_bytes=500) == pytest.approx(0.5e-3)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(segment_bytes=0),
        dict(segment_bytes=-1),
        dict(max_rate_bps=0.0),
        dict(initial_rtt_s=0.0),
        dict(rtt_alpha=0.0),
        dict(rtt_alpha=1.5),
        dict(min_rate_bps=2e9),  # above the 1e9 ceiling
    ])
    def test_constructor_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            make_controller(**kwargs)

    def test_equation_unbounded_at_zero_loss(self):
        assert tfrc_rate_bps(1472, 1e-3, 0.0) == math.inf

    @pytest.mark.parametrize("args", [
        (0, 1e-3, 0.1),
        (1472, 0.0, 0.1),
        (1472, 1e-3, 1.5),
        (1472, 1e-3, -0.1),
    ])
    def test_equation_rejects_invalid_inputs(self, args):
        with pytest.raises(ValueError):
            tfrc_rate_bps(*args)

    def test_equation_decreases_with_loss(self):
        rates = [tfrc_rate_bps(1472, 1e-3, p) for p in (0.001, 0.01, 0.1, 0.5)]
        assert rates == sorted(rates, reverse=True)
