"""Tests for the TCP replication / multi-source-fetch emulations."""

import pytest

from repro.transport.tcp.multiunicast import start_multi_source_fetch, start_replicated_push
from tests.conftest import TcpTestbed


class TestReplicatedPush:
    def test_all_replicas_receive_full_object(self):
        bed = TcpTestbed()
        replicas = ["h4", "h8", "h12"]
        flow_ids = start_replicated_push(
            bed.sim,
            bed.agents["h0"],
            [bed.host_id(name) for name in replicas],
            object_bytes=200_000,
            transfer_id=1,
            registry=bed.registry,
        )
        bed.run()
        assert len(flow_ids) == 3
        record = bed.registry.get(1)
        assert record.completed
        assert record.transfer_bytes == 200_000
        for name in replicas:
            receiver_flows = [fid for fid in flow_ids if fid in bed.agents[name]._receivers]
            assert len(receiver_flows) == 1
            assert bed.agents[name].receiver(receiver_flows[0]).cumulative_ack == 200_000

    def test_completion_waits_for_slowest_replica(self):
        bed = TcpTestbed()
        completion_times = []
        start_replicated_push(
            bed.sim,
            bed.agents["h0"],
            [bed.host_id("h4"), bed.host_id("h8")],
            object_bytes=200_000,
            transfer_id=2,
            registry=bed.registry,
            on_complete=completion_times.append,
        )
        bed.run()
        record = bed.registry.get(2)
        senders = [bed.agents["h0"].sender(flow) for flow in (2000, 2001)]
        assert record.completion_time == pytest.approx(max(s.completion_time for s in senders))
        assert len(completion_times) == 1

    def test_three_replicas_slower_than_one(self):
        single = TcpTestbed(seed=5)
        start_replicated_push(single.sim, single.agents["h0"], [single.host_id("h12")],
                              object_bytes=500_000, transfer_id=1, registry=single.registry)
        single.run()
        triple = TcpTestbed(seed=5)
        start_replicated_push(
            triple.sim, triple.agents["h0"],
            [triple.host_id("h12"), triple.host_id("h8"), triple.host_id("h4")],
            object_bytes=500_000, transfer_id=1, registry=triple.registry,
        )
        triple.run()
        # Multi-unicast pushes three full copies through one uplink: the
        # replicated transfer must be markedly slower.
        assert (triple.registry.get(1).goodput_gbps
                < 0.6 * single.registry.get(1).goodput_gbps)

    def test_requires_at_least_one_replica(self):
        bed = TcpTestbed()
        with pytest.raises(ValueError):
            start_replicated_push(bed.sim, bed.agents["h0"], [], 1000, transfer_id=1)


class TestMultiSourceFetch:
    def test_shares_cover_whole_object(self):
        bed = TcpTestbed()
        object_bytes = 300_001  # deliberately not divisible by 3
        start_multi_source_fetch(
            bed.sim,
            [bed.agents[name] for name in ("h4", "h8", "h12")],
            bed.host_id("h0"),
            object_bytes,
            transfer_id=3,
            registry=bed.registry,
        )
        bed.run()
        record = bed.registry.get(3)
        assert record.completed
        received = sum(
            receiver.cumulative_ack
            for receiver in bed.agents["h0"]._receivers.values()
        )
        assert received == object_bytes

    def test_single_source_fetch_equivalent_to_unicast(self):
        bed = TcpTestbed()
        start_multi_source_fetch(
            bed.sim, [bed.agents["h12"]], bed.host_id("h0"), 200_000,
            transfer_id=4, registry=bed.registry,
        )
        bed.run()
        assert bed.registry.get(4).completed

    def test_requires_at_least_one_source(self):
        bed = TcpTestbed()
        with pytest.raises(ValueError):
            start_multi_source_fetch(bed.sim, [], bed.host_id("h0"), 1000, transfer_id=5)
