"""Tests for TCP: single flows, congestion response, Incast behaviour."""

import pytest

from repro.transport.tcp.config import TcpConfig
from repro.transport.tcp.segments import TcpSegment
from tests.conftest import TcpTestbed


class TestTcpConfig:
    def test_defaults_sane(self):
        config = TcpConfig()
        assert config.packet_bytes == 1500
        assert config.initial_cwnd_bytes == 10 * config.mss_bytes

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TcpConfig(mss_bytes=0)
        with pytest.raises(ValueError):
            TcpConfig(rtt_alpha=1.5)


class TestTcpSegment:
    def test_end_seq(self):
        segment = TcpSegment(flow_id=1, src_host=0, dst_host=1, seq=1000, length=500)
        assert segment.end_seq == 1500


class TestSingleFlow:
    def test_reaches_near_line_rate_on_idle_network(self):
        bed = TcpTestbed()
        bed.agents["h0"].start_flow(1, bed.host_id("h12"), 1_000_000, label="fg")
        bed.run()
        record = bed.registry.get(1)
        assert record.completed
        assert record.goodput_gbps > 0.8

    def test_no_retransmissions_on_idle_network(self):
        bed = TcpTestbed()
        sender = bed.agents["h0"].start_flow(1, bed.host_id("h12"), 500_000)
        bed.run()
        assert sender.completed
        assert sender.retransmissions == 0
        assert sender.timeouts == 0

    def test_rtt_estimate_matches_fabric(self):
        bed = TcpTestbed()
        sender = bed.agents["h0"].start_flow(1, bed.host_id("h15"), 500_000)
        bed.run()
        # The unloaded fat-tree RTT is ~200 microseconds; a full drop-tail
        # queue (100 x 12 us) adds up to ~1.2 ms of queueing on top.
        assert sender.srtt is not None
        assert 50e-6 < sender.srtt < 5e-3

    def test_small_flow_completes(self):
        bed = TcpTestbed()
        bed.agents["h0"].start_flow(1, bed.host_id("h1"), 2_000, label="small")
        bed.run()
        assert bed.registry.get(1).completed

    def test_duplicate_flow_id_rejected(self):
        bed = TcpTestbed()
        bed.agents["h0"].start_flow(1, bed.host_id("h1"), 1000)
        with pytest.raises(ValueError):
            bed.agents["h0"].start_flow(1, bed.host_id("h2"), 1000)

    def test_receiver_state_tracks_bytes(self):
        bed = TcpTestbed()
        bed.agents["h0"].start_flow(1, bed.host_id("h3"), 100_000)
        bed.run()
        receiver = bed.agents["h3"].receiver(1)
        assert receiver.cumulative_ack == 100_000

    def test_cwnd_grows_beyond_initial_window(self):
        bed = TcpTestbed()
        sender = bed.agents["h0"].start_flow(1, bed.host_id("h12"), 1_000_000)
        bed.run()
        assert sender.cwnd > sender.config.initial_cwnd_bytes


class TestCongestionResponse:
    def test_concurrent_flows_share_a_link_and_lose_packets(self):
        bed = TcpTestbed(seed=3)
        destination = bed.host_id("h0")
        senders = []
        for index, name in enumerate(["h4", "h5", "h6", "h8", "h9", "h12", "h13", "h14"]):
            senders.append(bed.agents[name].start_flow(10 + index, destination, 400_000,
                                                       label="converge"))
        bed.run(until=10.0)
        assert all(sender.completed for sender in senders)
        # Eight senders into one 1 Gbps link with 100-packet buffers must lose
        # packets and recover (fast retransmit and/or timeout).
        total_recoveries = sum(s.fast_retransmits + s.timeouts for s in senders)
        assert total_recoveries > 0
        assert bed.network.total_dropped_packets > 0

    def test_incast_collapse_with_many_synchronised_senders(self):
        bed = TcpTestbed(seed=4)
        destination = bed.host_id("h0")
        sender_names = [name for name in bed.network.host_names if name != "h0"][:12]
        for index, name in enumerate(sender_names):
            bed.agents[name].start_flow(100 + index, destination, 256_000, label="incast")
        bed.run(until=10.0)
        records = bed.registry.completed_records
        assert len(records) == len(sender_names)
        total_bytes = sum(record.transfer_bytes for record in records)
        span = max(r.completion_time for r in records) - min(r.start_time for r in records)
        aggregate_gbps = total_bytes * 8 / span / 1e9
        # Classic Incast: goodput collapses far below the 1 Gbps receiver link.
        assert aggregate_gbps < 0.5
        assert any(sender.timeouts > 0
                   for name in sender_names
                   for sender in [bed.agents[name].sender(100 + sender_names.index(name))])


class TestTrimmedPacketHandling:
    def test_trimmed_packets_are_ignored_as_losses(self):
        from repro.network.packet import Packet
        from repro.transport.tcp.config import TCP_PROTOCOL

        bed = TcpTestbed()
        agent = bed.agents["h1"]
        segment = TcpSegment(flow_id=5, src_host=0, dst_host=1, seq=0, length=1436)
        packet = Packet(protocol=TCP_PROTOCOL, src=0, dst=1, size_bytes=1500, payload=segment)
        trimmed = packet.trim()
        agent.handle_packet(trimmed)  # must not raise nor create receiver state
        with pytest.raises(KeyError):
            agent.receiver(5)
