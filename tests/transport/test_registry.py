"""Tests for the transfer registry."""

import pytest

from repro.transport.base import TransferRegistry


class TestTransferRegistry:
    def test_record_lifecycle(self):
        registry = TransferRegistry()
        record = registry.record_start(1, 1_000_000, 0.5, protocol="tcp", label="fg")
        assert not record.completed
        registry.record_completion(1, 1.5)
        assert record.completed
        assert record.flow_completion_time == pytest.approx(1.0)
        assert record.goodput_bps == pytest.approx(8_000_000)
        assert record.goodput_gbps == pytest.approx(0.008)

    def test_duplicate_start_rejected(self):
        registry = TransferRegistry()
        registry.record_start(1, 100, 0.0)
        with pytest.raises(ValueError):
            registry.record_start(1, 100, 0.0)

    def test_duplicate_completion_rejected(self):
        registry = TransferRegistry()
        registry.record_start(1, 100, 0.0)
        registry.record_completion(1, 1.0)
        with pytest.raises(ValueError):
            registry.record_completion(1, 2.0)

    def test_completion_of_unknown_transfer_rejected(self):
        with pytest.raises(KeyError):
            TransferRegistry().record_completion(9, 1.0)

    def test_goodput_of_incomplete_transfer_raises(self):
        registry = TransferRegistry()
        record = registry.record_start(1, 100, 0.0)
        with pytest.raises(ValueError):
            _ = record.goodput_bps

    def test_filters_and_fractions(self):
        registry = TransferRegistry()
        registry.record_start(1, 100, 0.0, label="a")
        registry.record_start(2, 100, 0.0, label="b")
        registry.record_start(3, 100, 0.0, label="a")
        registry.record_completion(1, 1.0)
        registry.record_completion(2, 2.0)
        assert len(registry) == 3
        assert len(registry.completed_records) == 2
        assert len(registry.incomplete_records) == 1
        assert registry.completion_fraction() == pytest.approx(2 / 3)
        assert len(registry.goodputs_gbps("a")) == 1
        assert len(registry.goodputs_gbps()) == 2

    def test_contains_and_get(self):
        registry = TransferRegistry()
        registry.record_start(5, 10, 0.0)
        assert 5 in registry
        assert 6 not in registry
        assert registry.get(5).transfer_bytes == 10

    def test_empty_completion_fraction(self):
        assert TransferRegistry().completion_fraction() == 0.0

    def test_metadata_stored(self):
        registry = TransferRegistry()
        record = registry.record_start(1, 10, 0.0, replicas=3)
        assert record.metadata == {"replicas": 3}
