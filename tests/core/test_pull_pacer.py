"""Tests for the shared per-host pull pacer."""

import pytest

from repro.core.config import PolyraptorConfig
from repro.core.pull_queue import PullPacer
from repro.network.packet import make_control_packet
from tests.conftest import PolyraptorTestbed


def make_pacer():
    bed = PolyraptorTestbed()
    host = bed.network.host("h0")
    pacer = PullPacer(bed.sim, host, PolyraptorConfig())
    return bed, host, pacer


def pull_builder(host, sent_log, tag):
    def build():
        sent_log.append((host.sim.now, tag))
        # A throwaway protocol name: these synthetic pulls are only used to
        # observe the pacer's send timing, not to exercise a real session.
        return make_control_packet("pacer-test", host.node_id, 1, payload=tag,
                                   created_at=host.sim.now)
    return build


class TestPacing:
    def test_interval_matches_symbol_serialisation_time(self):
        _, host, pacer = make_pacer()
        config = PolyraptorConfig()
        expected = config.symbol_packet_bytes * 8 / host.link_rate_bps
        assert pacer.pull_interval_s == pytest.approx(expected)

    def test_first_pull_sent_immediately(self):
        bed, host, pacer = make_pacer()
        sent = []
        pacer.enqueue(1, pull_builder(host, sent, "a"))
        assert sent and sent[0][0] == 0.0

    def test_subsequent_pulls_are_paced(self):
        bed, host, pacer = make_pacer()
        sent = []
        for index in range(4):
            pacer.enqueue(1, pull_builder(host, sent, index))
        bed.run(until=0.01)
        times = [t for t, _ in sent]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap == pytest.approx(pacer.pull_interval_s) for gap in gaps)

    def test_aggregate_rate_capped_across_sessions(self):
        bed, host, pacer = make_pacer()
        sent = []
        for session in (1, 2, 3):
            for index in range(5):
                pacer.enqueue(session, pull_builder(host, sent, (session, index)))
        bed.run(until=0.01)
        times = sorted(t for t, _ in sent)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Regardless of how many sessions are pulling, pulls leave at most one
        # per symbol-serialisation interval.
        assert min(gaps) >= pacer.pull_interval_s * 0.999

    def test_round_robin_across_sessions(self):
        bed, host, pacer = make_pacer()
        sent = []
        for session in (1, 2):
            for index in range(3):
                pacer.enqueue(session, pull_builder(host, sent, session))
        bed.run(until=0.01)
        order = [tag for _, tag in sent]
        # Sessions are interleaved rather than session 1 being drained first
        # (the first pull goes out immediately, before session 2 has queued).
        assert len(order) == 6
        assert set(order[:4]) == {1, 2}
        assert order != [1, 1, 1, 2, 2, 2]

    def test_counts(self):
        bed, host, pacer = make_pacer()
        sent = []
        pacer.enqueue(1, pull_builder(host, sent, "x"))
        bed.run(until=0.01)
        assert pacer.pulls_sent == 1
        assert pacer.pending_pulls == 0


class TestCancellation:
    def test_cancel_session_discards_pending(self):
        bed, host, pacer = make_pacer()
        sent = []
        for index in range(5):
            pacer.enqueue(1, pull_builder(host, sent, index))
        pacer.cancel_session(1)
        bed.run(until=0.01)
        # The first pull went out immediately; the rest were discarded.
        assert len(sent) == 1
        assert pacer.pulls_discarded >= 4

    def test_builder_returning_none_counts_as_discarded(self):
        bed, host, pacer = make_pacer()
        pacer.enqueue(1, lambda: None)
        bed.run(until=0.01)
        assert pacer.pulls_sent == 0
        assert pacer.pulls_discarded == 1

    def test_pending_for_session(self):
        bed, host, pacer = make_pacer()
        sent = []
        for index in range(3):
            pacer.enqueue(7, pull_builder(host, sent, index))
        # One was sent immediately; two remain queued.
        assert pacer.pending_for_session(7) == 2
        assert pacer.pending_for_session(99) == 0
