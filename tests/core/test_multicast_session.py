"""Tests for one-to-many (multicast) Polyraptor sessions."""

import pytest

from repro.core.config import PolyraptorConfig
from repro.rq.block import partition_object
from tests.conftest import PolyraptorTestbed


def start_multicast(bed, session_id, object_bytes, receivers, **kwargs):
    bed.network.create_multicast_group(session_id, "h0", receivers)
    return bed.agents["h0"].start_push_session(
        session_id,
        object_bytes,
        [bed.host_id(name) for name in receivers],
        multicast_group=session_id,
        label="multicast",
        **kwargs,
    )


class TestMulticastPush:
    def test_all_receivers_decode_and_session_completes(self):
        bed = PolyraptorTestbed()
        receivers = ["h4", "h8", "h12"]
        session = start_multicast(bed, 1, 500_000, receivers)
        bed.run()
        assert session.completed
        assert bed.registry.get(1).completed
        for name in receivers:
            assert bed.agents[name].receiver_session(1).completed

    def test_sender_transmits_roughly_one_copy_not_n_copies(self):
        bed = PolyraptorTestbed()
        object_bytes = 500_000
        receivers = ["h4", "h8", "h12"]
        session = start_multicast(bed, 1, object_bytes, receivers)
        bed.run()
        config = bed.config
        source_symbols = partition_object(
            object_bytes, config.symbol_size_bytes, config.max_symbols_per_block
        ).total_source_symbols
        # The whole point of multicast replication: the sender emits ~K symbols
        # for 3 receivers, not 3K (multi-unicast would).  Allow generous slack
        # for pulls in flight when receivers complete.
        assert session.symbols_sent < 1.5 * source_symbols

    def test_multicast_goodput_close_to_unicast(self):
        unicast = PolyraptorTestbed(seed=3)
        unicast.agents["h0"].start_push_session(1, 400_000, [unicast.host_id("h12")],
                                                label="multicast")
        unicast.run()
        multicast = PolyraptorTestbed(seed=3)
        start_multicast(multicast, 1, 400_000, ["h4", "h8", "h12"])
        multicast.run()
        single = unicast.registry.get(1).goodput_gbps
        triple = multicast.registry.get(1).goodput_gbps
        # On an idle fabric, replicating to three receivers costs almost nothing.
        assert triple > 0.8 * single

    def test_aggregation_paces_at_slowest_receiver(self):
        bed = PolyraptorTestbed()
        receivers = ["h4", "h8", "h12"]
        start_multicast(bed, 1, 400_000, receivers)
        # Load one receiver with an extra unicast session so it pulls slower.
        bed.agents["h5"].start_push_session(2, 400_000, [bed.host_id("h4")], label="cross")
        bed.run()
        assert bed.registry.get(1).completed
        assert bed.registry.get(2).completed
        # The multicast session cannot be faster than the busy receiver allows.
        assert bed.registry.get(1).goodput_gbps <= bed.registry.get(2).goodput_gbps * 1.5

    def test_single_receiver_group_behaves_like_unicast(self):
        bed = PolyraptorTestbed()
        session = start_multicast(bed, 1, 200_000, ["h9"])
        bed.run()
        assert session.completed
        assert bed.registry.get(1).goodput_gbps > 0.5

    def test_completion_only_after_last_receiver(self):
        bed = PolyraptorTestbed()
        receivers = ["h4", "h8", "h12"]
        session = start_multicast(bed, 1, 300_000, receivers)
        bed.run()
        receiver_times = [
            bed.agents[name].receiver_session(1).completion_time for name in receivers
        ]
        assert session.completion_time >= max(receiver_times)


class TestStragglerExtension:
    def test_straggler_detached_when_enabled(self):
        config = PolyraptorConfig(straggler_detection=True, straggler_lag_symbols=6)
        bed = PolyraptorTestbed(config=config)
        receivers = ["h4", "h8", "h12"]
        session = start_multicast(bed, 1, 600_000, receivers)
        # Make h4 a straggler by keeping its downlink busy with two other sessions.
        bed.agents["h5"].start_push_session(2, 600_000, [bed.host_id("h4")], label="cross")
        bed.agents["h6"].start_push_session(3, 600_000, [bed.host_id("h4")], label="cross")
        bed.run(until=10.0)
        assert session.completed
        assert session.detached_count >= 1

    def test_no_detachment_when_disabled(self):
        bed = PolyraptorTestbed()  # straggler_detection defaults to False
        receivers = ["h4", "h8", "h12"]
        session = start_multicast(bed, 1, 400_000, receivers)
        bed.agents["h5"].start_push_session(2, 400_000, [bed.host_id("h4")], label="cross")
        bed.run()
        assert session.detached_count == 0

    def test_straggler_policy_never_detaches_everyone(self):
        from repro.core.straggler import StragglerPolicy

        policy = StragglerPolicy(enabled=True, lag_symbols=1)
        pulls = {1: 0, 2: 0, 3: 100}
        stragglers = policy.find_stragglers(pulls, {1, 2, 3})
        assert stragglers == {1, 2}

    def test_straggler_policy_disabled_returns_empty(self):
        from repro.core.straggler import StragglerPolicy

        policy = StragglerPolicy(enabled=False)
        assert policy.find_stragglers({1: 0, 2: 100}, {1, 2}) == set()

    def test_straggler_policy_single_receiver_returns_empty(self):
        from repro.core.straggler import StragglerPolicy

        policy = StragglerPolicy(enabled=True, lag_symbols=1)
        assert policy.find_stragglers({1: 0}, {1}) == set()
