"""Tests for Polyraptor configuration and packet payload types."""

import pytest

from repro.core.config import PolyraptorConfig
from repro.core.packets import DonePayload, PullPayload, RequestPayload, SymbolPayload


class TestPolyraptorConfig:
    def test_defaults(self):
        config = PolyraptorConfig()
        assert config.symbol_packet_bytes == config.symbol_size_bytes + config.header_bytes
        assert config.decode_overhead_symbols == 2
        assert not config.carry_payload
        assert not config.straggler_detection

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PolyraptorConfig(symbol_size_bytes=0)
        with pytest.raises(ValueError):
            PolyraptorConfig(initial_window_symbols=0)
        with pytest.raises(ValueError):
            PolyraptorConfig(decode_overhead_symbols=-1)
        with pytest.raises(ValueError):
            PolyraptorConfig(stall_timeout_s=0)

    def test_frozen(self):
        config = PolyraptorConfig()
        with pytest.raises(AttributeError):
            config.symbol_size_bytes = 100


class TestPayloads:
    def test_symbol_payload_source_flag(self):
        source = SymbolPayload(session_id=1, sender_host=0, block_number=0, esi=3,
                               block_symbol_count=10, num_blocks=1, object_bytes=100)
        repair = SymbolPayload(session_id=1, sender_host=0, block_number=0, esi=10,
                               block_symbol_count=10, num_blocks=1, object_bytes=100)
        assert source.is_source_symbol
        assert not repair.is_source_symbol

    def test_pull_payload_fields(self):
        pull = PullPayload(session_id=1, receiver_host=5, pull_sequence=3, block_hint=0)
        assert pull.block_hint == 0
        assert pull.pull_sequence == 3

    def test_request_payload_fields(self):
        request = RequestPayload(session_id=1, receiver_host=2, object_bytes=1000,
                                 sender_index=1, num_senders=3)
        assert request.num_senders == 3

    def test_done_payload_fields(self):
        done = DonePayload(session_id=1, receiver_host=2)
        assert done.session_id == 1

    def test_payloads_hashable(self):
        # Frozen dataclasses can be used as dict keys / set members in traces.
        done_a = DonePayload(session_id=1, receiver_host=2)
        done_b = DonePayload(session_id=1, receiver_host=2)
        assert done_a == done_b
        assert len({done_a, done_b}) == 1
