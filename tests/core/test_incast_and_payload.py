"""Tests for Incast behaviour and for real-payload (encode/decode) sessions."""

import os

import pytest

from repro.core.config import PolyraptorConfig
from repro.utils.units import KILOBYTE
from tests.conftest import PolyraptorTestbed


class TestIncastElimination:
    def test_many_synchronised_senders_do_not_collapse(self):
        bed = PolyraptorTestbed(seed=2)
        destination = bed.host_id("h0")
        sender_names = [name for name in bed.network.host_names if name != "h0"][:12]
        for index, name in enumerate(sender_names):
            bed.agents[name].start_push_session(100 + index, 70 * KILOBYTE, [destination],
                                                label="incast")
        bed.run(until=10.0)
        records = [bed.registry.get(100 + i) for i in range(len(sender_names))]
        assert all(record.completed for record in records)
        total_bytes = sum(record.transfer_bytes for record in records)
        span = max(r.completion_time for r in records) - min(r.start_time for r in records)
        aggregate_gbps = total_bytes * 8 / span / 1e9
        # The receiver link is 1 Gbps; Polyraptor should keep it well utilised.
        assert aggregate_gbps > 0.6

    def test_trimming_occurs_but_nothing_is_dropped(self):
        bed = PolyraptorTestbed(seed=2)
        destination = bed.host_id("h0")
        sender_names = [name for name in bed.network.host_names if name != "h0"][:12]
        for index, name in enumerate(sender_names):
            bed.agents[name].start_push_session(100 + index, 256 * KILOBYTE, [destination],
                                                label="incast")
        bed.run(until=10.0)
        assert bed.network.total_trimmed_packets > 0
        assert bed.network.total_dropped_packets == 0

    def test_incast_scales_with_sender_count(self):
        def aggregate_for(count):
            bed = PolyraptorTestbed(seed=5)
            destination = bed.host_id("h0")
            names = [name for name in bed.network.host_names if name != "h0"][:count]
            for index, name in enumerate(names):
                bed.agents[name].start_push_session(100 + index, 128 * KILOBYTE,
                                                    [destination], label="incast")
            bed.run(until=10.0)
            records = [bed.registry.get(100 + i) for i in range(count)]
            total = sum(r.transfer_bytes for r in records)
            span = max(r.completion_time for r in records) - min(r.start_time for r in records)
            return total * 8 / span / 1e9

        few = aggregate_for(2)
        many = aggregate_for(10)
        # More senders must not collapse the aggregate goodput (the TCP
        # baseline collapses by an order of magnitude here).
        assert many > 0.5 * few


class TestPayloadMode:
    @pytest.fixture
    def payload_config(self):
        return PolyraptorConfig(carry_payload=True, symbol_size_bytes=512,
                                max_symbols_per_block=64)

    def test_unicast_push_delivers_exact_bytes(self, payload_config):
        bed = PolyraptorTestbed(config=payload_config)
        data = os.urandom(60_000)
        bed.agents["h0"].start_push_session(1, len(data), [bed.host_id("h9")],
                                            object_data=data)
        bed.run()
        receiver = bed.agents["h9"].receiver_session(1)
        assert receiver.completed
        assert receiver.received_data == data

    def test_multicast_push_delivers_exact_bytes_to_all(self, payload_config):
        bed = PolyraptorTestbed(config=payload_config)
        data = os.urandom(40_000)
        receivers = ["h4", "h8"]
        bed.network.create_multicast_group(1, "h0", receivers)
        bed.agents["h0"].start_push_session(
            1, len(data), [bed.host_id(name) for name in receivers],
            multicast_group=1, object_data=data,
        )
        bed.run()
        for name in receivers:
            assert bed.agents[name].receiver_session(1).received_data == data

    def test_fetch_delivers_exact_bytes(self, payload_config):
        bed = PolyraptorTestbed(config=payload_config)
        data = os.urandom(50_000)
        senders = ["h4", "h12"]
        for name in senders:
            bed.agents[name].store_object(1, data)
        bed.agents["h0"].start_fetch_session(
            1, len(data), [bed.host_id(name) for name in senders]
        )
        bed.run()
        assert bed.agents["h0"].receiver_session(1).received_data == data

    def test_payload_mode_requires_object_data(self, payload_config):
        bed = PolyraptorTestbed(config=payload_config)
        with pytest.raises(ValueError):
            bed.agents["h0"].start_push_session(1, 1000, [bed.host_id("h2")])

    def test_payload_survives_congestion_induced_trimming(self, payload_config):
        bed = PolyraptorTestbed(config=payload_config, seed=4)
        destination = bed.host_id("h0")
        blobs = {}
        sender_names = ["h4", "h8", "h12", "h13"]
        for index, name in enumerate(sender_names):
            data = os.urandom(30_000)
            blobs[name] = data
            bed.agents[name].start_push_session(10 + index, len(data), [destination],
                                                object_data=data, label="incast")
        bed.run(until=10.0)
        assert bed.network.total_trimmed_packets > 0
        for index, name in enumerate(sender_names):
            receiver = bed.agents["h0"].receiver_session(10 + index)
            assert receiver.received_data == blobs[name]
