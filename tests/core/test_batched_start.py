"""The sender's initial window must be encoded through the batched path.

PR 1 made ``ObjectEncoder.symbol_block`` produce a whole run of symbols as
one symbol-plane pass; these tests pin down that ``SenderSession.start()``
uses it (instead of one encode call per symbol) and that the batched payloads
are byte-identical to the per-symbol path.
"""

from __future__ import annotations

import pytest

from repro.core.config import PolyraptorConfig
from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.runner import build_environment
from repro.network.topology import FatTreeTopology
from repro.rq.block import ObjectEncoder

PAYLOAD_CONFIG = ExperimentConfig(
    fattree_k=4,
    max_sim_time_s=10.0,
    polyraptor=PolyraptorConfig(carry_payload=True, initial_window_symbols=12),
)

OBJECT_BYTES = 48_000


def _start_session_and_capture(monkeypatch, config=PAYLOAD_CONFIG):
    """Start a payload push session and capture the packets start() emits."""
    topology = FatTreeTopology(config.fattree_k)
    env = build_environment(Protocol.POLYRAPTOR, config, topology=topology)
    agent = env.polyraptor_agents["h0"]
    payload = bytes(range(256)) * (OBJECT_BYTES // 256)
    sent = []
    monkeypatch.setattr(agent.host, "send", sent.append)
    agent.start_push_session(
        1, len(payload), [env.network.host_id("h8")], object_data=payload
    )
    return agent, payload, sent


class TestBatchedInitialWindow:
    def test_start_emits_the_full_window(self, monkeypatch):
        _, _, sent = _start_session_and_capture(monkeypatch)
        assert len(sent) == PAYLOAD_CONFIG.polyraptor.initial_window_symbols

    def test_window_payloads_match_per_symbol_encoding(self, monkeypatch):
        agent, payload, sent = _start_session_and_capture(monkeypatch)
        reference = ObjectEncoder(
            payload,
            symbol_size=agent.config.symbol_size_bytes,
            max_symbols_per_block=agent.config.max_symbols_per_block,
        )
        for packet in sent:
            symbol = packet.payload
            expected = reference.symbol(symbol.block_number, symbol.esi).data
            assert symbol.data == expected

    def test_start_never_uses_the_per_symbol_encode_path(self, monkeypatch):
        def _forbidden(self, block_number, esi):
            raise AssertionError("start() must batch through symbol_block")

        monkeypatch.setattr(ObjectEncoder, "symbol", _forbidden)
        _, _, sent = _start_session_and_capture(monkeypatch)
        assert len(sent) == PAYLOAD_CONFIG.polyraptor.initial_window_symbols
        assert all(packet.payload.data is not None for packet in sent)

    def test_identity_mode_start_still_works(self, monkeypatch):
        config = ExperimentConfig(
            fattree_k=4,
            max_sim_time_s=10.0,
            polyraptor=PolyraptorConfig(initial_window_symbols=6),
        )
        topology = FatTreeTopology(config.fattree_k)
        env = build_environment(Protocol.POLYRAPTOR, config, topology=topology)
        agent = env.polyraptor_agents["h0"]
        sent = []
        monkeypatch.setattr(agent.host, "send", sent.append)
        agent.start_push_session(1, OBJECT_BYTES, [env.network.host_id("h8")])
        assert len(sent) == 6
        assert all(packet.payload.data is None for packet in sent)
