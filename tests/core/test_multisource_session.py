"""Tests for many-to-one (multi-source fetch) Polyraptor sessions."""

import pytest

from repro.core.config import PolyraptorConfig
from tests.conftest import PolyraptorTestbed


class TestMultiSourceFetch:
    def test_fetch_completes_from_three_senders(self):
        bed = PolyraptorTestbed()
        senders = ["h4", "h8", "h12"]
        bed.agents["h0"].start_fetch_session(
            1, 500_000, [bed.host_id(name) for name in senders], label="fetch"
        )
        bed.run()
        record = bed.registry.get(1)
        assert record.completed
        assert record.goodput_gbps > 0.5

    def test_no_duplicate_symbols_across_senders(self):
        bed = PolyraptorTestbed()
        senders = ["h4", "h8", "h12"]
        bed.agents["h0"].start_fetch_session(
            1, 500_000, [bed.host_id(name) for name in senders]
        )
        bed.run()
        receiver = bed.agents["h0"].receiver_session(1)
        assert receiver.completed
        # Senders partition the symbol space, so the receiver should see
        # essentially no duplicates (a handful can arrive after a block
        # completes, but never because two senders emitted the same ESI).
        assert receiver.duplicate_symbols <= receiver.symbols_received * 0.1

    def test_all_senders_contribute(self):
        bed = PolyraptorTestbed()
        senders = ["h4", "h8", "h12"]
        bed.agents["h0"].start_fetch_session(
            1, 600_000, [bed.host_id(name) for name in senders]
        )
        bed.run()
        contributions = [
            bed.agents[name].sender_session(1).symbols_sent for name in senders
        ]
        assert all(count > 0 for count in contributions)
        # Natural load balancing on an idle fabric: contributions are similar.
        assert max(contributions) < 3 * min(contributions)

    def test_senders_partition_source_symbols(self):
        bed = PolyraptorTestbed()
        senders = ["h4", "h8"]
        bed.agents["h0"].start_fetch_session(
            1, 300_000, [bed.host_id(name) for name in senders]
        )
        bed.run()
        sessions = [bed.agents[name].sender_session(1) for name in senders]
        assert all(session.sender_index == index for index, session in enumerate(sessions))
        assert all(session.num_senders == 2 for session in sessions)

    def test_single_sender_fetch_is_unicast_specialisation(self):
        bed = PolyraptorTestbed()
        bed.agents["h0"].start_fetch_session(1, 300_000, [bed.host_id("h12")])
        bed.run()
        assert bed.registry.get(1).completed

    def test_fetch_from_three_not_slower_than_from_one(self):
        single = PolyraptorTestbed(seed=7)
        single.agents["h0"].start_fetch_session(1, 500_000, [single.host_id("h12")],
                                                label="fetch")
        single.run()
        triple = PolyraptorTestbed(seed=7)
        triple.agents["h0"].start_fetch_session(
            1, 500_000, [triple.host_id(name) for name in ("h4", "h8", "h12")], label="fetch"
        )
        triple.run()
        assert (triple.registry.get(1).goodput_gbps
                >= 0.9 * single.registry.get(1).goodput_gbps)

    def test_fetch_session_requires_senders(self):
        bed = PolyraptorTestbed()
        with pytest.raises(ValueError):
            bed.agents["h0"].start_fetch_session(1, 1000, [])

    def test_load_balancing_favours_less_loaded_sender(self):
        bed = PolyraptorTestbed()
        senders = ["h4", "h12"]
        # h4 is simultaneously pushing another session, so it has less spare
        # uplink capacity than h12.
        bed.agents["h4"].start_push_session(2, 800_000, [bed.host_id("h9")], label="cross")
        bed.agents["h0"].start_fetch_session(
            1, 800_000, [bed.host_id(name) for name in senders], label="fetch"
        )
        bed.run()
        busy = bed.agents["h4"].sender_session(1).symbols_sent
        idle = bed.agents["h12"].sender_session(1).symbols_sent
        assert idle >= busy
