"""Tests for one-to-one Polyraptor sessions (push)."""

import pytest

from repro.core.config import PolyraptorConfig
from tests.conftest import PolyraptorTestbed


class TestUnicastPush:
    def test_session_completes_and_reaches_near_line_rate(self):
        bed = PolyraptorTestbed()
        bed.agents["h0"].start_push_session(1, 1_000_000, [bed.host_id("h12")], label="fg")
        bed.run()
        record = bed.registry.get(1)
        assert record.completed
        assert record.goodput_gbps > 0.8

    def test_sender_sends_initial_window_then_pull_clocked(self):
        bed = PolyraptorTestbed()
        session = bed.agents["h0"].start_push_session(1, 500_000, [bed.host_id("h12")])
        bed.run()
        config = bed.config
        receiver = bed.agents["h12"].receiver_session(1)
        # Every symbol beyond the initial window was triggered by a pull.
        assert session.symbols_sent >= receiver.symbols_received
        assert session.pulls_received >= session.symbols_sent - config.initial_window_symbols

    def test_source_symbols_sent_before_repair(self):
        bed = PolyraptorTestbed()
        session = bed.agents["h0"].start_push_session(1, 200_000, [bed.host_id("h9")])
        bed.run()
        # On an idle network nothing is lost, so no repair symbols are needed
        # beyond (at most) a handful triggered by in-flight pulls at the end.
        assert session.source_symbols_sent >= session.repair_symbols_sent
        assert session.source_symbols_sent > 0

    def test_receiver_counts_match_object_size(self):
        bed = PolyraptorTestbed()
        object_bytes = 300_000
        bed.agents["h0"].start_push_session(1, object_bytes, [bed.host_id("h5")])
        bed.run()
        receiver = bed.agents["h5"].receiver_session(1)
        assert receiver.completed
        needed_symbols = receiver.oti.total_source_symbols
        assert receiver.symbols_received >= needed_symbols

    def test_done_stops_the_sender(self):
        bed = PolyraptorTestbed()
        session = bed.agents["h0"].start_push_session(1, 100_000, [bed.host_id("h3")])
        bed.run()
        assert session.completed
        sent_at_completion = session.symbols_sent
        bed.run(until=bed.sim.now + 0.01)
        assert session.symbols_sent == sent_at_completion

    def test_healthy_session_never_retries_done(self):
        """The sender's DONE-ACK arrives well before the first retry fires."""
        bed = PolyraptorTestbed()
        bed.agents["h0"].start_push_session(1, 100_000, [bed.host_id("h3")])
        bed.run()
        receiver = bed.agents["h3"].receiver_session(1)
        assert receiver.completed
        assert receiver.done_retries == 0
        assert not receiver._done_timer.running

    def test_small_object_single_window(self):
        bed = PolyraptorTestbed()
        bed.agents["h0"].start_push_session(1, 5_000, [bed.host_id("h2")], label="tiny")
        bed.run()
        assert bed.registry.get(1).completed

    def test_lost_done_is_retransmitted_until_sender_completes(self):
        """DONE is unacknowledged: if the fabric eats it (e.g. a fault-downed
        link), the receiver's capped-backoff retries must still complete the
        sender, instead of it waiting pull-clocked forever."""
        bed = PolyraptorTestbed()
        rack = bed.topology.host_rack("h3")
        # Kill only the receiver->rack direction: symbols still arrive, but
        # everything the receiver sends (its DONE included) is dropped.  The
        # object fits in the initial window, so no pulls are needed to decode.
        reverse_wire = bed.network.link_between("h3", rack)
        reverse_wire.set_state(False)
        heal_at = 6 * bed.config.stall_timeout_s
        bed.sim.schedule(heal_at, reverse_wire.set_state, True)

        session = bed.agents["h0"].start_push_session(1, 5_000, [bed.host_id("h3")])
        bed.run()

        receiver = bed.agents["h3"].receiver_session(1)
        assert receiver.completed
        assert receiver.completion_time < heal_at  # decoded while DONE path was dead
        assert receiver.done_retries >= 1          # at least one DONE was re-sent
        assert session.completed                   # ... and a retry got through
        assert bed.registry.get(1).completed
        assert receiver.done_retries <= bed.config.done_retry_limit
        assert not receiver._done_timer.running    # the sender's ack stopped the retries

    def test_duplicate_session_id_rejected(self):
        bed = PolyraptorTestbed()
        bed.agents["h0"].start_push_session(1, 10_000, [bed.host_id("h2")])
        with pytest.raises(ValueError):
            bed.agents["h0"].start_push_session(1, 10_000, [bed.host_id("h3")])

    def test_multiple_concurrent_sessions_to_one_receiver_share_fairly(self):
        bed = PolyraptorTestbed()
        destination = bed.host_id("h0")
        for index, name in enumerate(["h4", "h8", "h12"]):
            bed.agents[name].start_push_session(10 + index, 400_000, [destination], label="share")
        bed.run()
        goodputs = bed.registry.goodputs_gbps("share")
        assert len(goodputs) == 3
        # The receiver's pull pacer shares its link roughly evenly.
        assert max(goodputs) / min(goodputs) < 2.0
        assert sum(goodputs) < 1.05  # cannot exceed the receiver link

    def test_no_data_packets_dropped_with_trimming_switches(self):
        bed = PolyraptorTestbed()
        destination = bed.host_id("h0")
        for index, name in enumerate(["h4", "h8", "h12", "h13"]):
            bed.agents[name].start_push_session(20 + index, 200_000, [destination])
        bed.run()
        assert bed.network.total_dropped_packets == 0
        assert bed.registry.completion_fraction() == 1.0


class TestReceiverSessionInternals:
    def test_lowest_incomplete_block_progression(self):
        bed = PolyraptorTestbed(config=PolyraptorConfig(max_symbols_per_block=8))
        bed.agents["h0"].start_push_session(1, 100_000, [bed.host_id("h3")])
        bed.run()
        receiver = bed.agents["h3"].receiver_session(1)
        assert receiver.completed
        assert receiver.lowest_incomplete_block() is None
        assert receiver.oti.num_source_blocks > 1

    def test_stall_timer_recovers_from_total_initial_loss(self):
        # Even if every initial-window symbol were lost, the stall timer keeps
        # the session alive; here we simply verify sessions complete with a
        # very small stall timeout (more stall events, same outcome).
        config = PolyraptorConfig(stall_timeout_s=50e-6)
        bed = PolyraptorTestbed(config=config)
        bed.agents["h0"].start_push_session(1, 200_000, [bed.host_id("h12")])
        bed.run()
        assert bed.registry.get(1).completed
