"""Tests for PolyraptorAgent dispatch, error handling and trace integration."""

import pytest

from repro.core.agent import POLYRAPTOR_PROTOCOL, PolyraptorAgent
from repro.core.packets import DonePayload, PullPayload, RequestPayload
from repro.network.packet import Packet, make_control_packet
from repro.sim.trace import TraceLog
from tests.conftest import PolyraptorTestbed


class TestAgentDispatch:
    def test_unknown_payload_type_rejected(self):
        bed = PolyraptorTestbed()
        agent = bed.agents["h0"]
        packet = make_control_packet(POLYRAPTOR_PROTOCOL, 1, 0, payload={"bogus": True})
        with pytest.raises(TypeError):
            agent.handle_packet(packet)

    def test_pull_for_unknown_session_is_ignored(self):
        bed = PolyraptorTestbed()
        agent = bed.agents["h0"]
        pull = PullPayload(session_id=999, receiver_host=1, pull_sequence=1)
        agent.handle_packet(make_control_packet(POLYRAPTOR_PROTOCOL, 1, 0, payload=pull))

    def test_done_for_unknown_session_is_ignored(self):
        bed = PolyraptorTestbed()
        agent = bed.agents["h0"]
        done = DonePayload(session_id=999, receiver_host=1)
        agent.handle_packet(make_control_packet(POLYRAPTOR_PROTOCOL, 1, 0, payload=done))

    def test_duplicate_request_does_not_create_second_sender(self):
        bed = PolyraptorTestbed()
        agent = bed.agents["h4"]
        request = RequestPayload(session_id=5, receiver_host=bed.host_id("h0"),
                                 object_bytes=50_000, sender_index=0, num_senders=1)
        packet = make_control_packet(POLYRAPTOR_PROTOCOL, bed.host_id("h0"),
                                     bed.host_id("h4"), payload=request)
        agent.handle_packet(packet)
        first = agent.sender_session(5)
        agent.handle_packet(packet)
        assert agent.sender_session(5) is first

    def test_receiver_session_created_on_first_symbol(self):
        bed = PolyraptorTestbed()
        bed.agents["h0"].start_push_session(1, 50_000, [bed.host_id("h9")])
        assert not bed.agents["h9"].has_receiver_session(1)
        bed.run(until=0.001)
        assert bed.agents["h9"].has_receiver_session(1)

    def test_duplicate_fetch_session_rejected(self):
        bed = PolyraptorTestbed()
        bed.agents["h0"].start_fetch_session(1, 10_000, [bed.host_id("h4")])
        with pytest.raises(ValueError):
            bed.agents["h0"].start_fetch_session(1, 10_000, [bed.host_id("h5")])

    def test_sender_session_lookup_unknown_raises(self):
        bed = PolyraptorTestbed()
        with pytest.raises(KeyError):
            bed.agents["h0"].sender_session(123)


class TestSenderSessionValidation:
    def test_requires_receivers(self):
        bed = PolyraptorTestbed()
        with pytest.raises(ValueError):
            bed.agents["h0"].start_push_session(1, 1000, [])

    def test_invalid_sender_index_rejected(self):
        from repro.core.sender import SenderSession

        bed = PolyraptorTestbed()
        with pytest.raises(ValueError):
            SenderSession(bed.agents["h0"], 1, 1000, [bed.host_id("h1")],
                          sender_index=3, num_senders=2)

    def test_multicast_with_multiple_senders_rejected(self):
        from repro.core.sender import SenderSession

        bed = PolyraptorTestbed()
        with pytest.raises(ValueError):
            SenderSession(bed.agents["h0"], 1, 1000, [bed.host_id("h1")],
                          multicast_group=5, sender_index=0, num_senders=2)


class TestTraceIntegration:
    def test_switch_trims_are_traced(self):
        trace = TraceLog(enabled=True, categories={"switch.trim"})
        bed = PolyraptorTestbed(seed=3)
        # Rebuild a testbed with tracing by instantiating agents over a traced network.
        from repro.network.network import Network, NetworkConfig
        from repro.network.topology import FatTreeTopology
        from repro.sim.engine import Simulator
        from repro.sim.randomness import RandomStreams
        from repro.transport.base import TransferRegistry

        sim = Simulator()
        network = Network(sim, FatTreeTopology(4), NetworkConfig(), RandomStreams(3),
                          trace=trace)
        registry = TransferRegistry()
        agents = {
            host.name: PolyraptorAgent(sim, host, bed.config, registry, trace)
            for host in network.hosts
        }
        destination = network.host_id("h0")
        for index, name in enumerate(["h4", "h8", "h12", "h13"]):
            agents[name].start_push_session(10 + index, 200_000, [destination])
        sim.run(until=5.0)
        assert network.total_trimmed_packets > 0
        assert trace.count("switch.trim") == network.total_trimmed_packets
