"""Tests for argument validation helpers."""

import pytest

from repro.utils.validation import check_non_negative, check_positive, check_probability


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 5) == 5
        assert check_positive("x", 0.001) == 0.001

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("y", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="y"):
            check_non_negative("y", -0.5)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        assert check_probability("p", 0.5) == 0.5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.1)
        with pytest.raises(ValueError):
            check_probability("p", 1.1)
