"""Tests for the CDF / rank-curve helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.cdf import Cdf, confidence_interval_95, rank_curve


class TestCdf:
    def test_from_samples_sorts(self):
        cdf = Cdf.from_samples([3.0, 1.0, 2.0])
        assert cdf.values == (1.0, 2.0, 3.0)

    def test_len(self):
        assert len(Cdf.from_samples([1, 2, 3, 4])) == 4

    def test_median_odd(self):
        assert Cdf.from_samples([5, 1, 3]).median() == 3

    def test_mean(self):
        assert Cdf.from_samples([1, 2, 3, 4]).mean() == pytest.approx(2.5)

    def test_quantile_extremes(self):
        cdf = Cdf.from_samples(range(100))
        assert cdf.quantile(0.0) == 0
        assert cdf.quantile(1.0) == 99

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([1]).quantile(1.5)

    def test_empty_cdf_raises(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([]).mean()
        with pytest.raises(ValueError):
            Cdf.from_samples([]).quantile(0.5)

    def test_fraction_at_or_below(self):
        cdf = Cdf.from_samples([1, 2, 3, 4])
        assert cdf.fraction_at_or_below(2) == pytest.approx(0.5)
        assert cdf.fraction_at_or_below(0) == 0.0
        assert cdf.fraction_at_or_below(10) == 1.0

    def test_points_monotone(self):
        points = Cdf.from_samples([5, 3, 1]).points()
        values = [v for v, _ in points]
        probabilities = [p for _, p in points]
        assert values == sorted(values)
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_quantiles_are_samples(self, samples):
        cdf = Cdf.from_samples(samples)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert cdf.quantile(q) in cdf.values


class TestRankCurve:
    def test_rank_curve_sorted_ascending(self):
        curve = rank_curve([0.9, 0.1, 0.5])
        assert curve == [(0, 0.1), (1, 0.5), (2, 0.9)]

    def test_rank_curve_empty(self):
        assert rank_curve([]) == []

    @given(st.lists(st.floats(min_value=0, max_value=10), max_size=100))
    def test_rank_curve_preserves_multiset(self, samples):
        curve = rank_curve(samples)
        assert sorted(value for _, value in curve) == sorted(samples)
        assert [rank for rank, _ in curve] == list(range(len(samples)))


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        mean, half_width = confidence_interval_95([4.2])
        assert mean == 4.2
        assert half_width == 0.0

    def test_identical_samples_zero_width(self):
        mean, half_width = confidence_interval_95([2.0, 2.0, 2.0])
        assert mean == 2.0
        assert half_width == pytest.approx(0.0)

    def test_known_value(self):
        # Samples 1..5: mean 3, sample std sqrt(2.5), stderr sqrt(0.5).
        mean, half_width = confidence_interval_95([1, 2, 3, 4, 5])
        assert mean == pytest.approx(3.0)
        assert half_width == pytest.approx(1.96 * (2.5 / 5) ** 0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval_95([])
