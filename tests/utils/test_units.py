"""Tests for unit conversions and formatting."""

import pytest

from repro.utils.units import (
    BITS_PER_BYTE,
    GBPS,
    GIGABYTE,
    KILOBYTE,
    MBPS,
    MEGABYTE,
    MICROSECOND,
    MILLISECOND,
    bits_to_bytes,
    bytes_to_bits,
    format_bytes,
    format_rate,
    format_time,
    serialization_delay,
)


class TestConversions:
    def test_bytes_to_bits(self):
        assert bytes_to_bits(1) == 8
        assert bytes_to_bits(1500) == 12000

    def test_bits_to_bytes(self):
        assert bits_to_bytes(8) == 1
        assert bits_to_bytes(12000) == 1500

    def test_roundtrip(self):
        assert bits_to_bytes(bytes_to_bits(12345)) == 12345

    def test_constants_consistent(self):
        assert BITS_PER_BYTE == 8
        assert GIGABYTE == 1000 * MEGABYTE == 1_000_000 * KILOBYTE
        assert GBPS == 1000 * MBPS


class TestSerializationDelay:
    def test_full_packet_on_gigabit(self):
        # 1500 bytes at 1 Gbps = 12 microseconds.
        assert serialization_delay(1500, 1 * GBPS) == pytest.approx(12 * MICROSECOND)

    def test_scales_inversely_with_rate(self):
        assert serialization_delay(1500, 10 * GBPS) == pytest.approx(1.2 * MICROSECOND)

    def test_zero_bytes(self):
        assert serialization_delay(0, GBPS) == 0.0

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            serialization_delay(1500, 0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            serialization_delay(1500, -1)


class TestFormatting:
    def test_format_time_prefixes(self):
        assert format_time(0) == "0s"
        assert format_time(1.5).endswith("s")
        assert "ms" in format_time(3 * MILLISECOND)
        assert "us" in format_time(12 * MICROSECOND)
        assert "ns" in format_time(5e-9)

    def test_format_bytes_prefixes(self):
        assert format_bytes(500) == "500B"
        assert "KB" in format_bytes(2 * KILOBYTE)
        assert "MB" in format_bytes(4 * MEGABYTE)
        assert "GB" in format_bytes(2 * GIGABYTE)

    def test_format_rate_prefixes(self):
        assert "Gbps" in format_rate(1 * GBPS)
        assert "Mbps" in format_rate(30 * MBPS)
        assert format_rate(100) == "100bps"
