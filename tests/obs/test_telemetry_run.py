"""Integration tests: telemetry through the runner, executor, and CLI trace.

The central contracts: telemetry OFF leaves results byte-identical to a
build without the telemetry layer; telemetry ON observes without perturbing
(every transfer metric matches the OFF run exactly); and sharded sweeps
record byte-identical telemetry for any worker count.
"""

import json
from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig, Protocol
from repro.experiments.parallel import (
    RunJob,
    clear_telemetry,
    collected_telemetry,
    execute_jobs,
)
from repro.experiments.report import format_trace, sparkline
from repro.experiments.runner import run_transfers
from repro.network.topology import FatTreeTopology
from repro.obs import TelemetryConfig, read_telemetry_jsonl, write_telemetry_jsonl
from repro.sim.trace import TraceLog
from repro.utils.units import KILOBYTE
from repro.workloads.spec import TransferKind, TransferSpec


TINY = ExperimentConfig(
    fattree_k=4,
    num_foreground_transfers=6,
    object_bytes=96 * KILOBYTE,
    background_fraction=0.2,
    max_sim_time_s=30.0,
)


def _workload(count=4, size=64_000):
    return [
        TransferSpec(transfer_id=i, kind=TransferKind.UNICAST, client=f"h{i}",
                     peers=(f"h{i + 8}",), size_bytes=size, start_time=0.0)
        for i in range(count)
    ]


def _canonical(result):
    return json.dumps(result.canonical_dict(), sort_keys=True, default=str)


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.enabled
        assert config.sample_period_s == pytest.approx(1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_period_s=0.0)
        with pytest.raises(ValueError):
            TelemetryConfig(max_samples=0)
        with pytest.raises(ValueError):
            TelemetryConfig(phase_jitter=1.5)


class TestRunnerTelemetry:
    @pytest.fixture(scope="class")
    def runs(self):
        topology = FatTreeTopology(4)
        transfers = _workload()
        on_config = replace(TINY, telemetry=TelemetryConfig())
        out = {}
        for tag, config in (("off", TINY), ("on", on_config)):
            out[tag] = run_transfers(
                Protocol.POLYRAPTOR, config, transfers, topology=topology
            )
        out["on_again"] = run_transfers(
            Protocol.POLYRAPTOR, on_config, transfers, topology=topology
        )
        return out

    def test_off_has_no_telemetry_key(self, runs):
        assert runs["off"].telemetry is None
        assert "telemetry" not in runs["off"].canonical_dict()

    def test_on_does_not_perturb_transfers(self, runs):
        """The sampler only observes: every per-transfer metric is identical.

        Only ``events_processed`` may differ (the sampler's own ticks are
        events), which is deterministic and documented.
        """
        off = runs["off"].canonical_dict()
        on = runs["on"].canonical_dict()
        on.pop("telemetry")
        off.pop("events_processed")
        on.pop("events_processed")
        assert json.dumps(off, sort_keys=True, default=str) == json.dumps(
            on, sort_keys=True, default=str
        )

    def test_on_is_reproducible(self, runs):
        assert _canonical(runs["on"]) == _canonical(runs["on_again"])

    def test_telemetry_payload_shape(self, runs):
        telemetry = runs["on"].telemetry
        assert telemetry["schema"] == 1
        assert telemetry["ticks"] >= 1
        assert telemetry["series"]  # a loaded fabric records something
        assert "fct_ms" in telemetry["metrics"]
        assert telemetry["metrics"]["fct_ms"]["count"] == 4
        # every series payload is the plain ring-buffer dict
        for series in telemetry["series"].values():
            assert set(series) == {"t", "v", "dropped", "total"}
            assert len(series["t"]) == len(series["v"])

    def test_sim_time_not_extended_by_sampler(self, runs):
        assert runs["on"].sim_time_s == runs["off"].sim_time_s

    def test_sampler_stops_when_sim_drains(self):
        """An empty workload drains immediately: the sampler must not spin."""
        config = replace(TINY, telemetry=TelemetryConfig())
        result = run_transfers(
            Protocol.POLYRAPTOR, config, [], topology=FatTreeTopology(4)
        )
        assert result.telemetry["ticks"] <= 1
        assert result.sim_time_s == TINY.max_sim_time_s

    def test_trace_counters_flow_into_registry(self):
        config = replace(TINY, telemetry=TelemetryConfig())
        trace = TraceLog(enabled=True)
        # An incast onto one host overloads its edge link, so the trimming
        # fabric records switch.trim events -- which must surface as
        # ``trace.*`` counters in the telemetry metrics snapshot.
        incast = [
            TransferSpec(transfer_id=i, kind=TransferKind.UNICAST,
                         client=f"h{i + 4}", peers=("h0",), size_bytes=64_000,
                         start_time=0.0)
            for i in range(6)
        ]
        result = run_transfers(
            Protocol.POLYRAPTOR, config, incast, trace=trace,
            topology=FatTreeTopology(4),
        )
        metrics = result.telemetry["metrics"]
        trace_counts = {k: v for k, v in metrics.items() if k.startswith("trace.")}
        assert trace_counts, "an enabled trace should count events into the registry"
        assert sum(trace_counts.values()) == len(trace) + trace.dropped


class TestFaultTelemetry:
    def test_fault_counters_sampled(self):
        from repro.faults.schedule import FaultSchedule, link_down

        config = replace(TINY, telemetry=TelemetryConfig())
        schedule = FaultSchedule((link_down(0.001, "edge0_0", "agg0_0"),))
        result = run_transfers(
            Protocol.POLYRAPTOR, config, _workload(), topology=FatTreeTopology(4),
            fault_schedule=schedule,
        )
        names = set(result.telemetry["series"])
        assert any(name.startswith("faults.") for name in names)
        assert result.completion_fraction == 1.0


class TestShardedTelemetry:
    def _jobs(self):
        config = replace(TINY, telemetry=TelemetryConfig())
        transfers = tuple(_workload())
        return [
            RunJob(key=(seed, protocol.value), protocol=protocol,
                   config=config.with_seed(seed), transfers=transfers)
            for seed in (1, 2) for protocol in (Protocol.POLYRAPTOR, Protocol.TCP)
        ]

    def _collect(self, num_workers):
        clear_telemetry()
        execute_jobs(self._jobs(), num_workers=num_workers, label="sweep")
        records = collected_telemetry()
        return json.dumps([r.canonical() for r in records], sort_keys=True)

    def test_jobs2_matches_sequential(self):
        assert self._collect(1) == self._collect(2)

    def test_no_telemetry_collects_nothing(self):
        clear_telemetry()
        jobs = [
            RunJob(key=1, protocol=Protocol.POLYRAPTOR, config=TINY,
                   transfers=tuple(_workload(2)))
        ]
        execute_jobs(jobs, num_workers=1, label="plain")
        assert collected_telemetry() == []


class TestTraceRendering:
    def test_sparkline_scales_and_pads(self):
        line = sparkline([0.0, 1.0], width=10)
        assert len(line) == 10
        assert line[0] == " "

    def test_sparkline_constant_and_empty(self):
        assert set(sparkline([5.0, 5.0], width=4)) != {" "}
        assert sparkline([], width=4) == "    "

    def test_cli_trace_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        config = replace(TINY, telemetry=TelemetryConfig())
        result = run_transfers(
            Protocol.POLYRAPTOR, config, _workload(), topology=FatTreeTopology(4)
        )
        from repro.obs.recorder import TelemetryRecord

        path = tmp_path / "telemetry.jsonl"
        write_telemetry_jsonl(
            [TelemetryRecord(label="demo", key=1, data=result.telemetry)], path
        )
        assert main(["trace", str(path), "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "label='demo'" in out
        assert "|" in out

    def test_format_trace_filters_series(self):
        telemetry = {
            "meta": {"schema": 1},
            "runs": [{"label": "x", "key": 1, "ticks": 2, "metrics": {}}],
            "series": [
                {"label": "x", "key": 1, "name": "queue.depth.p0",
                 "t": [0.0], "v": [1.0], "dropped": 0, "total": 1},
                {"label": "x", "key": 1, "name": "tfrc.rate.h0",
                 "t": [0.0], "v": [2.0], "dropped": 0, "total": 1},
            ],
        }
        text = format_trace(telemetry, series="queue.*")
        assert "queue.depth.p0" in text
        assert "tfrc.rate.h0" not in text

    def test_format_trace_empty(self):
        assert "no runs" in format_trace({"meta": {}, "runs": [], "series": []})


class TestCliTelemetryExport:
    def test_incast_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "incast.jsonl"
        exit_code = main([
            "incast", "--fanins", "2", "--response-kb", "32",
            "--max-sim-time", "5", "--telemetry", str(path),
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert path.exists()
        parsed = read_telemetry_jsonl(path)
        assert parsed["runs"]
        assert "telemetry: wrote" in captured.err
        # stdout stays the experiment tables only
        assert "telemetry" not in captured.out

    def test_csv_suffix_switches_format(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "incast.csv"
        exit_code = main([
            "incast", "--fanins", "2", "--response-kb", "32",
            "--max-sim-time", "5", "--telemetry", str(path),
        ])
        capsys.readouterr()
        assert exit_code == 0
        header = path.read_text().splitlines()[0]
        assert header == "label,key,series,t,value"
