"""Tests for the flight recorder's buffers and export formats."""

import csv
import json

import pytest

from repro.obs.recorder import (
    TELEMETRY_SCHEMA,
    FlightRecorder,
    SeriesBuffer,
    TelemetryRecord,
    read_telemetry_jsonl,
    write_telemetry_csv,
    write_telemetry_jsonl,
)


class TestSeriesBuffer:
    def test_append_and_last(self):
        series = SeriesBuffer("s", max_samples=4)
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        assert len(series) == 2
        assert series.last == 2.0
        assert series.dropped == 0

    def test_empty_last_is_none(self):
        assert SeriesBuffer("s", max_samples=4).last is None

    def test_ring_evicts_oldest_and_counts_dropped(self):
        series = SeriesBuffer("s", max_samples=2)
        for t in range(5):
            series.append(float(t), float(t) * 10)
        assert len(series) == 2
        assert series.dropped == 3
        assert series.total == 5
        assert series.as_dict()["t"] == [3.0, 4.0]
        assert series.as_dict()["v"] == [30.0, 40.0]

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            SeriesBuffer("s", max_samples=0)


class TestFlightRecorder:
    def test_sparse_zero_baseline_skips_idle_series(self):
        recorder = FlightRecorder()
        recorder.record(0.0, "idle", 0.0)
        assert len(recorder) == 0
        assert recorder.series("idle") is None

    def test_unchanged_values_are_deduplicated(self):
        recorder = FlightRecorder()
        for t in range(5):
            recorder.record(float(t), "plateau", 7.0)
        series = recorder.series("plateau")
        assert len(series) == 1
        assert series.as_dict() == {"t": [0.0], "v": [7.0], "dropped": 0, "total": 1}

    def test_changes_are_recorded_including_return_to_zero(self):
        recorder = FlightRecorder()
        recorder.record(0.0, "q", 3.0)
        recorder.record(1.0, "q", 3.0)
        recorder.record(2.0, "q", 0.0)
        assert recorder.series("q").as_dict()["v"] == [3.0, 0.0]
        assert recorder.num_points == 2

    def test_as_dict_is_name_sorted(self):
        recorder = FlightRecorder()
        recorder.record(0.0, "b", 1.0)
        recorder.record(0.0, "a", 1.0)
        assert list(recorder.as_dict()) == ["a", "b"]

    def test_max_samples_propagates_to_series(self):
        recorder = FlightRecorder(max_samples=2)
        for t in range(4):
            recorder.record(float(t), "s", float(t + 1))
        assert recorder.series("s").dropped == 2

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            FlightRecorder(max_samples=0)


def _sample_records():
    return [
        TelemetryRecord(
            label="sweep",
            key=[1, "polyraptor"],
            data={
                "schema": TELEMETRY_SCHEMA,
                "ticks": 3,
                "series": {
                    "queue.depth.p0": {"t": [0.1, 0.2], "v": [1.0, 2.0],
                                       "dropped": 0, "total": 2},
                },
                "metrics": {"fct_ms": {"bounds": [1.0], "buckets": [1, 0],
                                       "count": 1, "sum": 0.4}},
            },
        )
    ]


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        lines = write_telemetry_jsonl(_sample_records(), path)
        assert lines == 3  # meta + run + one series
        parsed = read_telemetry_jsonl(path)
        assert parsed["meta"]["schema"] == TELEMETRY_SCHEMA
        assert parsed["runs"][0]["ticks"] == 3
        assert parsed["runs"][0]["key"] == [1, "polyraptor"]
        assert parsed["series"][0]["name"] == "queue.depth.p0"
        assert parsed["series"][0]["v"] == [1.0, 2.0]

    def test_missing_meta_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "run"}) + "\n")
        with pytest.raises(ValueError, match="meta"):
            read_telemetry_jsonl(path)

    def test_unknown_kind_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ValueError, match="mystery"):
            read_telemetry_jsonl(path)

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "meta", "schema": 999}) + "\n")
        with pytest.raises(ValueError, match="schema"):
            read_telemetry_jsonl(path)

    def test_deterministic_bytes(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        write_telemetry_jsonl(_sample_records(), first)
        write_telemetry_jsonl(_sample_records(), second)
        assert first.read_bytes() == second.read_bytes()


class TestCsvExport:
    def test_rows_and_header(self, tmp_path):
        path = tmp_path / "telemetry.csv"
        rows = write_telemetry_csv(_sample_records(), path)
        assert rows == 2
        with path.open(newline="") as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == ["label", "key", "series", "t", "value"]
        assert parsed[1][0] == "sweep"
        assert json.loads(parsed[1][1]) == [1, "polyraptor"]
        assert float(parsed[1][3]) == 0.1
        assert float(parsed[2][4]) == 2.0
