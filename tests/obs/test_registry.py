"""Tests for the metric registry primitives (gauges, histograms, rates)."""

import pytest

from repro.obs.registry import (
    DEFAULT_FCT_BOUNDS_MS,
    Gauge,
    Histogram,
    MetricRegistry,
    WindowedRate,
)
from repro.sim.stats import Counter


class TestGauge:
    def test_starts_at_zero(self):
        assert Gauge("g").value == 0.0

    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_coerces_to_float(self):
        gauge = Gauge("g")
        gauge.set(7)
        assert isinstance(gauge.value, float)


class TestHistogram:
    def test_buckets_include_overflow(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        assert len(hist.buckets) == 3

    def test_observe_routes_to_buckets(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 5.0):
            hist.observe(value)
        assert hist.buckets == [2, 1, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(8.0)

    def test_as_dict_is_json_safe(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        snapshot = hist.as_dict()
        assert snapshot == {"bounds": [1.0], "buckets": [1, 0], "count": 1, "sum": 0.5}

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_rejects_duplicate_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 1.0))

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())


class TestMetricRegistry:
    def test_counter_created_once(self):
        registry = MetricRegistry()
        counter = registry.counter("c")
        counter.increment(3)
        assert registry.counter("c") is counter
        assert isinstance(counter, Counter)
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")
        with pytest.raises(TypeError):
            registry.histogram("m")

    def test_contains(self):
        registry = MetricRegistry()
        assert "g" not in registry
        registry.gauge("g")
        assert "g" in registry

    def test_histogram_default_bounds(self):
        registry = MetricRegistry()
        assert registry.histogram("fct_ms").bounds == DEFAULT_FCT_BOUNDS_MS

    def test_snapshot_is_name_sorted_and_json_safe(self):
        registry = MetricRegistry()
        registry.gauge("z").set(1.0)
        registry.counter("a").increment(2)
        registry.histogram("m", bounds=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a", "m", "z"]
        assert snapshot["a"] == 2
        assert snapshot["z"] == 1.0
        assert snapshot["m"]["count"] == 1


class TestWindowedRate:
    def test_no_events_rate_is_zero(self):
        assert WindowedRate().rate(5.0) == 0.0

    def test_zero_span_rate_is_zero(self):
        """The t=0 edge: one event at the query instant divides by nothing."""
        rate = WindowedRate(window_s=10.0)
        rate.record(0.0)
        assert rate.rate(0.0) == 0.0

    def test_partial_window_uses_observed_span(self):
        rate = WindowedRate(window_s=10.0)
        rate.record(0.0)
        rate.record(1.0)
        rate.record(2.0)
        # 3 events over 2 observed seconds, not diluted by the 10 s window.
        assert rate.rate(2.0) == pytest.approx(1.5)

    def test_full_window_divides_by_window(self):
        rate = WindowedRate(window_s=2.0)
        for t in range(5):
            rate.record(float(t))
        # events at t=2,3,4 survive the trailing 2 s window ending at t=4
        # (the horizon is inclusive); the divisor clamps to the window.
        assert rate.rate(4.0) == pytest.approx(1.5)

    def test_old_events_age_out(self):
        rate = WindowedRate(window_s=1.0)
        rate.record(0.0, count=100.0)
        assert rate.rate(50.0) == 0.0

    def test_reset_restarts_the_window(self):
        rate = WindowedRate(window_s=10.0)
        rate.record(0.0)
        rate.reset()
        assert rate.total == 0.0
        assert rate.rate(1.0) == 0.0

    def test_counts_accumulate(self):
        rate = WindowedRate(window_s=10.0)
        rate.record(0.0, count=2.0)
        rate.record(1.0, count=4.0)
        assert rate.total == 6.0
        assert rate.rate(1.0) == pytest.approx(6.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowedRate(window_s=0.0)
