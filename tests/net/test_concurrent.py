"""Concurrent, multi-source server behaviour: session lifecycle, grant
hygiene, busy caps, TTL/idle reaping and MTU negotiation over real UDP."""

import asyncio
import hashlib

import pytest

from repro.net.client import FetchError, fetch_object_async
from repro.net.server import (
    ObjectStore,
    PolyraptorServerProtocol,
    deterministic_object,
)
from repro.net.wire import (
    OPEN_ERR_BUSY,
    OpenErrPayload,
    OpenOkPayload,
    OpenPayload,
    decode_frame,
    encode_frame,
    max_symbol_size_for_mtu,
)


async def _start_server(store, **kwargs):
    loop = asyncio.get_running_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        lambda: PolyraptorServerProtocol(store, **kwargs),
        local_addr=("127.0.0.1", 0),
    )
    port = transport.get_extra_info("sockname")[1]
    return transport, protocol, port


async def _wait_for(predicate, timeout_s=5.0, what="condition"):
    """Poll ``predicate()`` until true (events like grant retirement land a
    beat after the fetch coroutine returns)."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while not predicate():
        if loop.time() > deadline:
            pytest.fail(f"timed out waiting for {what}")
        await asyncio.sleep(0.01)


class _Probe(asyncio.DatagramProtocol):
    """A bare socket that decodes whatever the server sends back."""

    def connection_made(self, transport):
        self.transport = transport
        self.replies = asyncio.Queue()

    def datagram_received(self, data, addr):
        self.replies.put_nowait(decode_frame(data).payload)


async def _raw_open(port, name, symbol_size=0):
    """Send one OPEN and return the server's reply payload."""
    loop = asyncio.get_running_loop()
    transport, probe = await loop.create_datagram_endpoint(
        _Probe, remote_addr=("127.0.0.1", port)
    )
    try:
        probe.transport.sendto(
            encode_frame(OpenPayload(object_name=name, symbol_size=symbol_size))
        )
        return await asyncio.wait_for(probe.replies.get(), 2.0)
    finally:
        transport.close()


def test_eight_way_concurrent_fetches_leave_no_state_behind():
    """The acceptance stress: 8 simultaneous sessions on one socket, every
    transfer hash-verified, and afterwards the server's grant and session
    maps are empty -- no leaked grants, no reused session ids."""

    async def scenario():
        store = ObjectStore()
        names = [f"obj-{i}" for i in range(8)]
        for name in names:
            store.put(name, deterministic_object(60_000, seed=name))
        transport, protocol, port = await _start_server(store)
        try:
            blobs = await asyncio.gather(
                *(
                    fetch_object_async(
                        name, port=port, transfer_timeout_s=30.0, loss_seed=i
                    )
                    for i, name in enumerate(names)
                )
            )
            for name, blob in zip(names, blobs):
                assert hashlib.sha256(blob).digest() == hashlib.sha256(
                    store.get(name)
                ).digest()
            await _wait_for(
                lambda: protocol.sessions_completed == 8
                and not protocol._grants
                and not protocol._grant_info
                and not protocol._sessions,
                what="all sessions retired",
            )
        finally:
            transport.close()
        ids = protocol.issued_session_ids
        assert len(ids) == 8
        assert len(set(ids)) == 8, f"session ids were reused: {ids}"
        snapshot = protocol.registry.snapshot()
        assert snapshot["net.server.sessions_completed"] == 8
        assert snapshot["net.server.grants_active"] == 0
        assert snapshot["net.server.sessions_active"] == 0
        assert snapshot["net.server.symbols_sent"] > 0

    asyncio.run(scenario())


def test_sequential_fetches_get_distinct_session_ids():
    """Regression for the grant leak: completing a session must retire its
    grant, so re-fetching the same object gets a fresh session id instead of
    the stale grant's."""

    async def scenario():
        store = ObjectStore()
        store.put("twice", deterministic_object(40_000, seed="twice"))
        transport, protocol, port = await _start_server(store)
        try:
            first = await fetch_object_async("twice", port=port, transfer_timeout_s=20.0)
            await _wait_for(
                lambda: not protocol._grant_info, what="first grant retired"
            )
            second = await fetch_object_async("twice", port=port, transfer_timeout_s=20.0)
            await _wait_for(
                lambda: not protocol._grant_info, what="second grant retired"
            )
        finally:
            transport.close()
        assert first == second == store.get("twice")
        assert len(protocol.issued_session_ids) == 2
        assert len(set(protocol.issued_session_ids)) == 2

    asyncio.run(scenario())


def test_multi_source_fetch_with_loss_hash_verifies():
    """Two replica holders, one decode: each server serves its partition of
    the symbol space and the client folds both into a single object, under
    10% induced loss on every path."""

    async def scenario():
        name, size = "replicated", 200_000
        blob = deterministic_object(size, seed=name)
        stores = []
        for _ in range(2):
            store = ObjectStore()
            store.put(name, blob)
            stores.append(store)
        s1 = await _start_server(stores[0])
        s2 = await _start_server(stores[1])
        try:
            data = await fetch_object_async(
                name,
                sources=[("127.0.0.1", s1[2]), ("127.0.0.1", s2[2])],
                loss_rate=0.10,
                loss_seed=11,
                transfer_timeout_s=30.0,
            )
            assert hashlib.sha256(data).digest() == hashlib.sha256(blob).digest()
            for _, protocol, _ in (s1, s2):
                await _wait_for(
                    lambda p=protocol: p.sessions_completed == 1
                    and not p._grant_info,
                    what="both sources completed and retired",
                )
                assert protocol.registry.snapshot()["net.server.symbols_sent"] > 0
        finally:
            s1[0].close()
            s2[0].close()

    asyncio.run(scenario())


def test_mismatched_replicas_abort_the_fetch():
    """Sources disagreeing on the object (different bytes behind the same
    name) must fail loudly, not decode garbage."""

    async def scenario():
        small, big = ObjectStore(), ObjectStore()
        small.put("skewed", deterministic_object(10_000, seed="skewed"))
        big.put("skewed", deterministic_object(20_000, seed="skewed"))
        s1 = await _start_server(small)
        s2 = await _start_server(big)
        try:
            with pytest.raises(FetchError, match="mismatched grants"):
                await fetch_object_async(
                    "skewed",
                    sources=[("127.0.0.1", s1[2]), ("127.0.0.1", s2[2])],
                    transfer_timeout_s=5.0,
                )
        finally:
            s1[0].close()
            s2[0].close()

    asyncio.run(scenario())


def test_busy_server_refuses_excess_opens_then_recovers():
    async def scenario():
        store = ObjectStore()
        store.put("big", deterministic_object(400_000, seed="big"))
        store.put("small", deterministic_object(10_000, seed="small"))
        transport, protocol, port = await _start_server(
            store, max_concurrent_sessions=1, max_rate_bps=50e6
        )
        try:
            first = asyncio.ensure_future(
                fetch_object_async(
                    "big", port=port, transfer_timeout_s=30.0, max_rate_bps=50e6
                )
            )
            await _wait_for(lambda: protocol._sessions, what="first session live")
            with pytest.raises(FetchError, match="busy"):
                await fetch_object_async(
                    "small", port=port, open_retries=1, transfer_timeout_s=5.0
                )
            assert protocol.busy_rejections >= 1
            data = await first
            assert data == store.get("big")
            # The cap frees up once the first session retires.
            await _wait_for(lambda: not protocol._grant_info, what="cap released")
            small = await fetch_object_async("small", port=port, transfer_timeout_s=20.0)
            assert small == store.get("small")
        finally:
            transport.close()

    asyncio.run(scenario())


def test_unstarted_grant_expires_after_ttl():
    """An OPEN that never progresses to a REQUEST must not pin server state
    forever: the sweep retires it after the TTL."""

    async def scenario():
        store = ObjectStore()
        store.put("idle", deterministic_object(5_000, seed="idle"))
        transport, protocol, port = await _start_server(
            store, grant_ttl_s=0.1, session_idle_timeout_s=10.0
        )
        try:
            reply = await _raw_open(port, "idle")
            assert isinstance(reply, OpenOkPayload)
            assert protocol._grant_info
            await _wait_for(lambda: not protocol._grant_info, what="grant expiry")
            assert protocol.grants_expired == 1
        finally:
            transport.close()

    asyncio.run(scenario())


def test_abandoned_session_is_reaped_after_idle_timeout():
    """A client that dies mid-transfer leaves a live sender behind; the idle
    sweep must close it and retire its grant."""

    async def scenario():
        store = ObjectStore()
        store.put("orphan", deterministic_object(400_000, seed="orphan"))
        transport, protocol, port = await _start_server(
            store,
            session_idle_timeout_s=0.15,
            grant_ttl_s=10.0,
            max_rate_bps=50e6,
        )
        try:
            fetch = asyncio.ensure_future(
                fetch_object_async(
                    "orphan", port=port, transfer_timeout_s=30.0, max_rate_bps=50e6
                )
            )
            await _wait_for(lambda: protocol._sessions, what="session start")
            fetch.cancel()
            with pytest.raises(asyncio.CancelledError):
                await fetch
            await _wait_for(
                lambda: not protocol._sessions and not protocol._grant_info,
                what="idle reap",
            )
            assert protocol.sessions_reaped == 1
            assert protocol.sessions_completed == 0
        finally:
            transport.close()

    asyncio.run(scenario())


def test_open_negotiates_symbol_size():
    async def scenario():
        store = ObjectStore()
        store.put("sized", deterministic_object(5_000, seed="sized"))
        # Unconstrained server: grants exactly the client's proposal.
        transport, protocol, port = await _start_server(store)
        try:
            reply = await _raw_open(port, "sized", symbol_size=512)
            assert isinstance(reply, OpenOkPayload)
            assert reply.symbol_size == 512
        finally:
            transport.close()
        # MTU-capped server: grants its cap to a client with no preference.
        transport, protocol, port = await _start_server(store, mtu=600)
        try:
            reply = await _raw_open(port, "sized")
            assert isinstance(reply, OpenOkPayload)
            assert reply.symbol_size == max_symbol_size_for_mtu(600)
        finally:
            transport.close()

    asyncio.run(scenario())


def test_mtu_constrained_fetch_completes_end_to_end():
    """--mtu changes the negotiated symbol size, hence the whole OTI
    partitioning on both ends; the transfer must still decode byte-exact."""

    async def scenario():
        store = ObjectStore()
        store.put("narrow", deterministic_object(50_000, seed="narrow"))
        transport, protocol, port = await _start_server(store)
        try:
            data = await fetch_object_async(
                "narrow", port=port, mtu=600, transfer_timeout_s=20.0
            )
        finally:
            transport.close()
        assert data == store.get("narrow")

    asyncio.run(scenario())


def test_unusable_mtu_is_rejected_client_side():
    async def scenario():
        with pytest.raises(FetchError, match="cannot carry"):
            await fetch_object_async("anything", port=1, mtu=60)

    asyncio.run(scenario())


def test_busy_refusal_carries_the_code():
    async def scenario():
        store = ObjectStore()
        store.put("one", deterministic_object(400_000, seed="one"))
        store.put("two", deterministic_object(5_000, seed="two"))
        transport, protocol, port = await _start_server(
            store, max_concurrent_sessions=1, max_rate_bps=50e6
        )
        try:
            fetch = asyncio.ensure_future(
                fetch_object_async(
                    "one", port=port, transfer_timeout_s=30.0, max_rate_bps=50e6
                )
            )
            await _wait_for(lambda: protocol._sessions, what="first session live")
            reply = await _raw_open(port, "two")
            assert isinstance(reply, OpenErrPayload)
            assert reply.code == OPEN_ERR_BUSY
            await fetch
        finally:
            transport.close()

    asyncio.run(scenario())
