"""ManualScheduler/NetTimer semantics and the net drivers' action plumbing."""

import pytest

from repro.net.driver import NetReceiverDriver, wire_config
from repro.net.scheduler import ManualScheduler, NetTimer
from repro.protocol.actions import KIND_CONTROL
from repro.protocol.receiver import ReceiverCore


class TestManualScheduler:
    def test_same_instant_callbacks_run_in_scheduling_order(self):
        scheduler = ManualScheduler()
        order = []
        scheduler.call_later(1.0, lambda: order.append("first"))
        scheduler.call_later(1.0, lambda: order.append("second"))
        scheduler.call_later(0.5, lambda: order.append("earlier"))
        scheduler.run_until(2.0)
        assert order == ["earlier", "first", "second"]

    def test_clock_lands_exactly_on_the_target(self):
        scheduler = ManualScheduler()
        scheduler.call_later(0.3, lambda: None)
        scheduler.run_until(1.0)
        assert scheduler.time() == 1.0
        scheduler.run_until(1.0)  # idempotent
        assert scheduler.time() == 1.0

    def test_callbacks_see_their_due_time(self):
        scheduler = ManualScheduler()
        seen = []
        scheduler.call_later(0.25, lambda: seen.append(scheduler.time()))
        scheduler.run_until(5.0)
        assert seen == [0.25]

    def test_cancelled_handles_never_fire(self):
        scheduler = ManualScheduler()
        fired = []
        handle = scheduler.call_later(0.1, lambda: fired.append(1))
        handle.cancel()
        scheduler.run_until(1.0)
        assert fired == []
        assert scheduler.next_time() is None

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ManualScheduler().call_later(-0.1, lambda: None)

    def test_run_until_a_past_target_never_rewinds_the_clock(self):
        """The deterministic clock is monotonic: a target before now clamps
        to now (firing nothing) instead of moving time backwards."""
        scheduler = ManualScheduler()
        scheduler.run_until(5.0)
        fired = []
        scheduler.call_later(1.0, lambda: fired.append(scheduler.time()))
        assert scheduler.run_until(3.0) == 0
        assert scheduler.time() == 5.0
        assert fired == []
        scheduler.run_until(6.5)  # pending work is intact and still due at 6.0
        assert fired == [6.0]

    def test_callbacks_can_schedule_more_work(self):
        scheduler = ManualScheduler()
        times = []

        def tick():
            times.append(scheduler.time())
            if len(times) < 3:
                scheduler.call_later(0.1, tick)

        scheduler.call_later(0.1, tick)
        scheduler.run_until(1.0)
        assert times == pytest.approx([0.1, 0.2, 0.3])


class TestNetTimer:
    def test_start_rearms_and_stop_disarms(self):
        scheduler = ManualScheduler()
        fired = []
        timer = NetTimer(scheduler, lambda: fired.append(scheduler.time()))
        timer.start(1.0)
        timer.start(2.0)  # restart supersedes the first arming
        assert timer.running
        scheduler.run_until(3.0)
        assert fired == [2.0]
        assert not timer.running
        timer.stop()  # stopping an unarmed timer is a no-op
        timer.start(1.0)
        timer.stop()
        scheduler.run_until(10.0)
        assert fired == [2.0]

    def test_callback_may_rearm_itself(self):
        scheduler = ManualScheduler()
        fired = []

        def on_fire():
            fired.append(scheduler.time())
            if len(fired) < 2:
                timer.start(1.0)

        timer = NetTimer(scheduler, on_fire)
        timer.start(1.0)
        scheduler.run_until(5.0)
        assert fired == [1.0, 2.0]


class TestWireConfig:
    def test_profile_enables_the_wire_essentials(self):
        config = wire_config()
        assert config.carry_payload
        assert config.pull_on_gap
        assert config.tfrc_pacing
        assert config.stall_timeout_s == pytest.approx(0.05)

    def test_overrides_win(self):
        config = wire_config(stall_timeout_s=0.2, tfrc_pacing=False)
        assert config.stall_timeout_s == 0.2
        assert not config.tfrc_pacing
        assert config.pull_on_gap  # untouched defaults remain


class TestNetReceiverDriver:
    def test_unexpected_action_is_rejected(self):
        config = wire_config(carry_payload=False)
        scheduler = ManualScheduler()
        core = ReceiverCore(config=config, session_id=1, object_bytes=1408,
                            local_host=1, expected_senders=[0])
        driver = NetReceiverDriver(core, scheduler, transmit=lambda a: None)
        with pytest.raises(TypeError, match="unexpected protocol action"):
            driver._apply_extra(object())

    def test_stall_timer_runs_on_the_scheduler(self):
        """The core's construction-time stall arming must land on the manual
        heap and re-issue pulls through the pacer when it fires."""
        config = wire_config(carry_payload=False, tfrc_pacing=False)
        scheduler = ManualScheduler()
        sent = []
        core = ReceiverCore(config=config, session_id=1, object_bytes=1408,
                            local_host=1, expected_senders=[0])
        NetReceiverDriver(core, scheduler, transmit=sent.append)
        assert scheduler.next_time() == pytest.approx(config.stall_timeout_s)
        scheduler.run_until(config.stall_timeout_s * 1.5)
        assert core.stall_events == 1
        assert [a.kind for a in sent] == [KIND_CONTROL]  # one stall pull out
