"""Seeded asyncio loopback integration: real UDP transfers end to end."""

import asyncio
import hashlib

import pytest

from repro.net.client import FetchError, fetch_object_async
from repro.net.server import (
    ObjectStore,
    PolyraptorServerProtocol,
    deterministic_object,
)


async def _start_server(store, port=0, **kwargs):
    """Bind a server on a loopback port (OS-assigned by default); return
    (transport, protocol, port)."""
    loop = asyncio.get_running_loop()
    transport, protocol = await loop.create_datagram_endpoint(
        lambda: PolyraptorServerProtocol(store, **kwargs),
        local_addr=("127.0.0.1", port),
    )
    port = transport.get_extra_info("sockname")[1]
    return transport, protocol, port


def _store(name: str, size: int) -> ObjectStore:
    store = ObjectStore()
    store.put(name, deterministic_object(size, seed=name))
    return store


def test_clean_path_transfer():
    async def scenario():
        store = _store("clean", 150_000)
        transport, protocol, port = await _start_server(store)
        try:
            data = await fetch_object_async("clean", port=port, transfer_timeout_s=20.0)
        finally:
            transport.close()
        assert data == store.get("clean")
        assert protocol.sessions_completed == 1
        assert protocol.malformed_frames == 0

    asyncio.run(scenario())


def test_induced_loss_recovers_and_hash_verifies():
    async def scenario():
        store = _store("lossy", 300_000)
        transport, protocol, port = await _start_server(store)
        try:
            data = await fetch_object_async(
                "lossy", port=port, loss_rate=0.15, loss_seed=42,
                transfer_timeout_s=30.0,
            )
        finally:
            transport.close()
        expected = store.get("lossy")
        assert hashlib.sha256(data).hexdigest() == hashlib.sha256(expected).hexdigest()
        assert protocol.sessions_completed == 1

    asyncio.run(scenario())


def test_receiver_restart_fetches_again_cleanly():
    """A receiver that dies mid-transfer and comes back gets a fresh session
    (new socket, new grant) and completes; the server survives the orphan."""

    async def scenario():
        store = _store("restart", 150_000)
        transport, protocol, port = await _start_server(store)
        try:
            first = asyncio.ensure_future(
                fetch_object_async("restart", port=port, transfer_timeout_s=20.0)
            )
            # Kill the first receiver almost immediately -- mid-handshake or
            # mid-stream depending on scheduling, both must be survivable.
            await asyncio.sleep(0.01)
            first.cancel()
            with pytest.raises(asyncio.CancelledError):
                await first
            data = await fetch_object_async("restart", port=port, transfer_timeout_s=20.0)
        finally:
            transport.close()
        assert data == store.get("restart")
        assert protocol.sessions_completed >= 1

    asyncio.run(scenario())


def test_server_restart_mid_transfer_resumes_and_completes():
    """Kill the server *after* the client has real progress and bring a
    fresh one up on the same port: the client's silent-source recovery
    re-OPENs (obtaining a brand-new grant from the restarted process),
    re-REQUESTs, and finishes the transfer with the symbols it already had."""

    async def scenario():
        store = _store("phoenix", 400_000)
        # Modest rates so the transfer takes tens of milliseconds -- long
        # enough to kill the server mid-stream deterministically.
        transport, protocol, port = await _start_server(store, max_rate_bps=50e6)
        fetch = asyncio.ensure_future(
            fetch_object_async(
                "phoenix", port=port, transfer_timeout_s=20.0,
                max_rate_bps=50e6, resume_interval_s=0.2,
            )
        )
        # Wait for a live session, then let some symbols flow.
        for _ in range(400):
            if protocol._sessions:
                break
            await asyncio.sleep(0.005)
        else:
            pytest.fail("no session ever started")
        await asyncio.sleep(0.02)
        drivers = list(protocol._sessions.values())
        assert drivers and drivers[0].core.symbols_sent > 0, "restart was not mid-transfer"
        assert protocol.sessions_completed == 0, "transfer finished before the restart"
        transport.close()
        await asyncio.sleep(0.05)

        transport2, protocol2, _ = await _start_server(
            store, max_rate_bps=50e6, port=port
        )
        try:
            data = await fetch
        finally:
            transport2.close()
        assert data == store.get("phoenix")
        assert protocol2.sessions_completed == 1
        # The restarted process issued its own fresh grant for the resume.
        assert protocol2.issued_session_ids

    asyncio.run(scenario())


def test_same_seed_drops_identical_frames():
    """The induced-loss stream is seeded: feeding one frame sequence into
    two equally seeded client protocols drops the exact same frames --
    reproducibility is what makes lossy CI legs debuggable."""
    from repro.core.packets import SymbolPayload
    from repro.net.client import _FetchProtocol
    from repro.net.wire import encode_frame

    frames = [
        encode_frame(
            SymbolPayload(
                session_id=1, sender_host=0, block_number=0, esi=i,
                block_symbol_count=64, num_blocks=1, object_bytes=64 * 1408,
                data=None, sequence=i + 1,
            )
        )
        for i in range(200)
    ]

    def drop_pattern(seed):
        async def run():
            protocol = _FetchProtocol(loss_rate=0.2, loss_seed=seed)
            protocol.connection_made(None)
            pattern = []
            before = 0
            for frame in frames:
                protocol.datagram_received(frame, ("127.0.0.1", 1))
                pattern.append(protocol.frames_dropped > before)
                before = protocol.frames_dropped
            return pattern

        return asyncio.run(run())

    first, second, other = drop_pattern(7), drop_pattern(7), drop_pattern(8)
    assert first == second
    assert any(first)
    assert first != other


def test_unknown_object_is_refused():
    async def scenario():
        transport, protocol, port = await _start_server(_store("present", 1_000))
        try:
            with pytest.raises(FetchError, match="refused"):
                await fetch_object_async("absent", port=port)
        finally:
            transport.close()

    asyncio.run(scenario())


def test_no_server_times_out_with_fetch_error():
    async def scenario():
        with pytest.raises(FetchError, match="no reply"):
            # Port 1 on loopback: nothing listens; OPEN retries then fails.
            await fetch_object_async(
                "anything", port=1, open_timeout_s=0.05, open_retries=2,
            )

    asyncio.run(scenario())


def test_server_ignores_junk_and_keeps_serving():
    async def scenario():
        store = _store("robust", 80_000)
        transport, protocol, port = await _start_server(store)
        loop = asyncio.get_running_loop()
        junk_transport, _ = await loop.create_datagram_endpoint(
            asyncio.DatagramProtocol, remote_addr=("127.0.0.1", port)
        )
        try:
            for junk in (b"", b"garbage", b"PQ", bytes(64)):
                junk_transport.sendto(junk)
            await asyncio.sleep(0.05)
            data = await fetch_object_async("robust", port=port, transfer_timeout_s=20.0)
        finally:
            junk_transport.close()
            transport.close()
        assert data == store.get("robust")
        assert protocol.malformed_frames >= 3  # b"" may be dropped by the OS

    asyncio.run(scenario())
