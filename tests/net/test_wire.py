"""Wire framing: round-trips for every frame type, rejection of everything else."""

import pytest

from repro.core.packets import (
    DoneAckPayload,
    DonePayload,
    PullPayload,
    RequestPayload,
    SymbolPayload,
)
from repro.net.wire import (
    MAGIC,
    OPEN_ERR_BUSY,
    OPEN_ERR_UNKNOWN_OBJECT,
    UDP_IPV4_OVERHEAD,
    WIRE_VERSION,
    OpenErrPayload,
    OpenOkPayload,
    OpenPayload,
    WireError,
    decode_frame,
    encode_frame,
    max_symbol_size_for_mtu,
)

ALL_PAYLOADS = [
    SymbolPayload(
        session_id=7, sender_host=3, block_number=1, esi=42,
        block_symbol_count=30, num_blocks=2, object_bytes=123456,
        data=b"\x01\x02\x03payload", sequence=9,
    ),
    SymbolPayload(
        session_id=7, sender_host=3, block_number=0, esi=0,
        block_symbol_count=1, num_blocks=1, object_bytes=1,
        data=None, sequence=1,
    ),
    PullPayload(session_id=7, receiver_host=5, pull_sequence=12,
                block_hint=3, congestion_echo=2, loss_estimate=0.125),
    PullPayload(session_id=7, receiver_host=5, pull_sequence=1,
                block_hint=None, congestion_echo=0, loss_estimate=0.0),
    RequestPayload(session_id=7, receiver_host=5, object_bytes=4_000_000,
                   sender_index=1, num_senders=3),
    DonePayload(session_id=7, receiver_host=5),
    DoneAckPayload(session_id=7, sender_host=3),
    OpenPayload(object_name="objects/dataset-β.bin"),
    OpenPayload(object_name="mtu-capped", symbol_size=1200),
    OpenOkPayload(session_id=99, object_bytes=2**40),
    OpenOkPayload(session_id=99, object_bytes=2**40, symbol_size=512),
    OpenErrPayload(reason="unknown object 'x'"),
    OpenErrPayload(reason="busy: 4 of 4 sessions in use", code=OPEN_ERR_BUSY),
]


PAYLOAD_IDS = [f"{type(p).__name__}-{i}" for i, p in enumerate(ALL_PAYLOADS)]


@pytest.mark.parametrize("payload", ALL_PAYLOADS, ids=PAYLOAD_IDS)
def test_round_trip_preserves_every_field(payload):
    frame = decode_frame(encode_frame(payload))
    assert frame.payload == payload


def test_symbol_sent_at_survives_the_round_trip():
    symbol = ALL_PAYLOADS[0]
    frame = decode_frame(encode_frame(symbol, sent_at=123.456789))
    assert frame.sent_at == 123.456789
    assert decode_frame(encode_frame(symbol)).sent_at == 0.0


def test_empty_symbol_data_is_distinct_from_none():
    symbol = SymbolPayload(
        session_id=1, sender_host=1, block_number=0, esi=0,
        block_symbol_count=1, num_blocks=1, object_bytes=1,
        data=b"", sequence=1,
    )
    assert decode_frame(encode_frame(symbol)).payload.data == b""


def test_bad_magic_rejected():
    frame = bytearray(encode_frame(DonePayload(session_id=1, receiver_host=2)))
    frame[0:2] = b"XX"
    with pytest.raises(WireError, match="magic"):
        decode_frame(bytes(frame))


def test_unsupported_version_rejected():
    frame = bytearray(encode_frame(DonePayload(session_id=1, receiver_host=2)))
    assert frame[2] == WIRE_VERSION
    frame[2] = WIRE_VERSION + 1
    with pytest.raises(WireError, match="version"):
        decode_frame(bytes(frame))


def test_unknown_frame_type_rejected():
    frame = bytearray(encode_frame(DonePayload(session_id=1, receiver_host=2)))
    frame[3] = 200
    with pytest.raises(WireError, match="unknown frame type"):
        decode_frame(bytes(frame))


@pytest.mark.parametrize("payload", ALL_PAYLOADS, ids=PAYLOAD_IDS)
def test_every_truncation_rejected_not_crashing(payload):
    """Cutting a valid frame at any point must raise WireError, never leak
    struct/index errors -- the server sits on an open port."""
    frame = encode_frame(payload)
    for cut in range(len(frame)):
        with pytest.raises(WireError):
            decode_frame(frame[:cut])


def test_trailing_garbage_rejected():
    done = encode_frame(DonePayload(session_id=1, receiver_host=2))
    with pytest.raises(WireError):
        decode_frame(done + b"\x00")
    dataless = encode_frame(SymbolPayload(
        session_id=1, sender_host=1, block_number=0, esi=0,
        block_symbol_count=1, num_blocks=1, object_bytes=1,
        data=None, sequence=1,
    ))
    with pytest.raises(WireError, match="trailing"):
        decode_frame(dataless + b"junk")


def test_open_name_length_mismatch_rejected():
    frame = bytearray(encode_frame(OpenPayload(object_name="abc")))
    frame[-1:] = b""  # shorten the name below the declared length
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_junk_datagrams_rejected():
    for junk in (b"", b"\x00", b"hello world", MAGIC, bytes(1000)):
        with pytest.raises(WireError):
            decode_frame(junk)


def test_invalid_utf8_name_rejected():
    frame = bytearray(encode_frame(OpenPayload(object_name="ab")))
    frame[-2:] = b"\xff\xfe"
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_unencodable_payload_rejected():
    with pytest.raises(WireError, match="cannot encode"):
        encode_frame(object())


def test_handshake_defaults_keep_the_fields_optional():
    """symbol_size=0 means 'no preference' / 'server default' and code
    defaults to the historical unknown-object refusal."""
    assert decode_frame(encode_frame(OpenPayload(object_name="x"))).payload.symbol_size == 0
    assert decode_frame(
        encode_frame(OpenOkPayload(session_id=1, object_bytes=2))
    ).payload.symbol_size == 0
    assert decode_frame(
        encode_frame(OpenErrPayload(reason="nope"))
    ).payload.code == OPEN_ERR_UNKNOWN_OBJECT


@pytest.mark.parametrize("mtu", [576, 1280, 1500, 9000])
def test_max_symbol_size_for_mtu_frames_actually_fit(mtu):
    """A full symbol frame at the derived size, plus UDP/IPv4 headers, must
    fit the MTU exactly at the limit -- that is the whole point of the bound."""
    size = max_symbol_size_for_mtu(mtu)
    assert size > 0
    symbol = SymbolPayload(
        session_id=1, sender_host=0, block_number=0, esi=0,
        block_symbol_count=1, num_blocks=1, object_bytes=size,
        data=bytes(size), sequence=1,
    )
    datagram = encode_frame(symbol, sent_at=123.456)
    assert len(datagram) + UDP_IPV4_OVERHEAD == mtu
    # One more payload byte would overflow the MTU.
    bigger = SymbolPayload(
        session_id=1, sender_host=0, block_number=0, esi=0,
        block_symbol_count=1, num_blocks=1, object_bytes=size + 1,
        data=bytes(size + 1), sequence=1,
    )
    assert len(encode_frame(bigger, sent_at=123.456)) + UDP_IPV4_OVERHEAD == mtu + 1
