"""Wire framing: round-trips for every frame type, rejection of everything else."""

import pytest

from repro.core.packets import (
    DoneAckPayload,
    DonePayload,
    PullPayload,
    RequestPayload,
    SymbolPayload,
)
from repro.net.wire import (
    MAGIC,
    WIRE_VERSION,
    OpenErrPayload,
    OpenOkPayload,
    OpenPayload,
    WireError,
    decode_frame,
    encode_frame,
)

ALL_PAYLOADS = [
    SymbolPayload(
        session_id=7, sender_host=3, block_number=1, esi=42,
        block_symbol_count=30, num_blocks=2, object_bytes=123456,
        data=b"\x01\x02\x03payload", sequence=9,
    ),
    SymbolPayload(
        session_id=7, sender_host=3, block_number=0, esi=0,
        block_symbol_count=1, num_blocks=1, object_bytes=1,
        data=None, sequence=1,
    ),
    PullPayload(session_id=7, receiver_host=5, pull_sequence=12,
                block_hint=3, congestion_echo=2, loss_estimate=0.125),
    PullPayload(session_id=7, receiver_host=5, pull_sequence=1,
                block_hint=None, congestion_echo=0, loss_estimate=0.0),
    RequestPayload(session_id=7, receiver_host=5, object_bytes=4_000_000,
                   sender_index=1, num_senders=3),
    DonePayload(session_id=7, receiver_host=5),
    DoneAckPayload(session_id=7, sender_host=3),
    OpenPayload(object_name="objects/dataset-β.bin"),
    OpenOkPayload(session_id=99, object_bytes=2**40),
    OpenErrPayload(reason="unknown object 'x'"),
]


PAYLOAD_IDS = [f"{type(p).__name__}-{i}" for i, p in enumerate(ALL_PAYLOADS)]


@pytest.mark.parametrize("payload", ALL_PAYLOADS, ids=PAYLOAD_IDS)
def test_round_trip_preserves_every_field(payload):
    frame = decode_frame(encode_frame(payload))
    assert frame.payload == payload


def test_symbol_sent_at_survives_the_round_trip():
    symbol = ALL_PAYLOADS[0]
    frame = decode_frame(encode_frame(symbol, sent_at=123.456789))
    assert frame.sent_at == 123.456789
    assert decode_frame(encode_frame(symbol)).sent_at == 0.0


def test_empty_symbol_data_is_distinct_from_none():
    symbol = SymbolPayload(
        session_id=1, sender_host=1, block_number=0, esi=0,
        block_symbol_count=1, num_blocks=1, object_bytes=1,
        data=b"", sequence=1,
    )
    assert decode_frame(encode_frame(symbol)).payload.data == b""


def test_bad_magic_rejected():
    frame = bytearray(encode_frame(DonePayload(session_id=1, receiver_host=2)))
    frame[0:2] = b"XX"
    with pytest.raises(WireError, match="magic"):
        decode_frame(bytes(frame))


def test_unsupported_version_rejected():
    frame = bytearray(encode_frame(DonePayload(session_id=1, receiver_host=2)))
    assert frame[2] == WIRE_VERSION
    frame[2] = WIRE_VERSION + 1
    with pytest.raises(WireError, match="version"):
        decode_frame(bytes(frame))


def test_unknown_frame_type_rejected():
    frame = bytearray(encode_frame(DonePayload(session_id=1, receiver_host=2)))
    frame[3] = 200
    with pytest.raises(WireError, match="unknown frame type"):
        decode_frame(bytes(frame))


@pytest.mark.parametrize("payload", ALL_PAYLOADS, ids=PAYLOAD_IDS)
def test_every_truncation_rejected_not_crashing(payload):
    """Cutting a valid frame at any point must raise WireError, never leak
    struct/index errors -- the server sits on an open port."""
    frame = encode_frame(payload)
    for cut in range(len(frame)):
        with pytest.raises(WireError):
            decode_frame(frame[:cut])


def test_trailing_garbage_rejected():
    done = encode_frame(DonePayload(session_id=1, receiver_host=2))
    with pytest.raises(WireError):
        decode_frame(done + b"\x00")
    dataless = encode_frame(SymbolPayload(
        session_id=1, sender_host=1, block_number=0, esi=0,
        block_symbol_count=1, num_blocks=1, object_bytes=1,
        data=None, sequence=1,
    ))
    with pytest.raises(WireError, match="trailing"):
        decode_frame(dataless + b"junk")


def test_open_name_length_mismatch_rejected():
    frame = bytearray(encode_frame(OpenPayload(object_name="abc")))
    frame[-1:] = b""  # shorten the name below the declared length
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_junk_datagrams_rejected():
    for junk in (b"", b"\x00", b"hello world", MAGIC, bytes(1000)):
        with pytest.raises(WireError):
            decode_frame(junk)


def test_invalid_utf8_name_rejected():
    frame = bytearray(encode_frame(OpenPayload(object_name="ab")))
    frame[-2:] = b"\xff\xfe"
    with pytest.raises(WireError):
        decode_frame(bytes(frame))


def test_unencodable_payload_rejected():
    with pytest.raises(WireError, match="cannot encode"):
        encode_frame(object())
