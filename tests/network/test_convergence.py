"""Tests for routing-convergence delay: stale tables, delayed installs, epochs.

``NetworkConfig.convergence_delay_s`` models control-plane lag: a recompute
snapshots the failure state immediately but installs the new tables only
after the (optionally seeded-jittered) delay.  These tests pin down the
contract: 0 delay is byte-for-byte the historical instantaneous behaviour,
a positive delay leaves stale tables black-holing traffic during the
window, installs apply their detection-time snapshot in epoch order, and a
stale install never overwrites a fresher one.
"""

import pytest

from repro.network.network import Network, NetworkConfig
from repro.network.packet import Packet
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams

DELAY = 0.005


def build_network(seed=1, **overrides):
    sim = Simulator()
    topology = FatTreeTopology(4)
    network = Network(sim, topology, NetworkConfig(**overrides), RandomStreams(seed))
    return sim, network


def full_tables(network):
    return {name: sw.unicast_next_hops() for name, sw in network.switches.items()}


class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append((self.sim.now, packet))


class TestConfigValidation:
    def test_defaults_are_instantaneous(self):
        config = NetworkConfig()
        assert config.convergence_delay_s == 0.0
        assert config.convergence_jitter == 0.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="convergence_delay_s"):
            NetworkConfig(convergence_delay_s=-0.1)
        with pytest.raises(ValueError, match="convergence_jitter"):
            NetworkConfig(convergence_jitter=-0.1)


class TestInstantaneousPath:
    def test_zero_delay_installs_synchronously(self):
        _, network = build_network()
        rack = network.topology.host_rack("h0")
        uplink = sorted(
            a for a in network.topology.graph.neighbors(rack) if a.startswith("agg")
        )[0]
        network.set_link_state(rack, uplink, up=False)
        seen = []
        changed = network.recompute_routes(on_installed=seen.append)
        assert changed > 0
        assert seen == [changed]
        assert network.pending_route_installs == 0
        assert network.route_installs == 1
        assert all(
            uplink not in hops
            for hops in network.switches[rack].unicast_next_hops().values()
        )


class TestDelayedInstall:
    def test_tables_stay_stale_until_the_lag_elapses(self):
        sim, network = build_network(convergence_delay_s=DELAY)
        before = full_tables(network)
        rack = network.topology.host_rack("h0")
        uplink = sorted(
            a for a in network.topology.graph.neighbors(rack) if a.startswith("agg")
        )[0]
        installed = []

        def fail_and_recompute():
            network.set_link_state(rack, uplink, up=False)
            assert network.recompute_routes(on_installed=installed.append) == 0

        sim.schedule_at(0.001, fail_and_recompute)
        sim.run(until=0.001 + DELAY / 2)
        # Mid-window: detection happened, nothing installed yet.
        assert full_tables(network) == before
        assert network.pending_route_installs == 1
        assert installed == []

        sim.run()
        assert installed and installed[0] > 0
        assert network.pending_route_installs == 0
        assert all(
            uplink not in hops
            for hops in network.switches[rack].unicast_next_hops().values()
        )

    def test_stale_tables_black_hole_during_the_window(self):
        sim, network = build_network(convergence_delay_s=DELAY)
        sink = Sink(sim)
        network.host("h1").register_protocol("test", sink)
        rack = network.topology.host_rack("h1")
        link = network.link_between(rack, "h1")

        def fail_and_recompute():
            network.set_link_state(rack, "h1", up=False)
            network.recompute_routes()

        sim.schedule_at(0.0005, fail_and_recompute)

        def send():
            src = network.host("h0")
            src.send(Packet(protocol="test", src=src.node_id,
                            dst=network.host_id("h1"), size_bytes=1500))

        # During the lag the stale table still points at the dead wire.
        sim.schedule_at(0.001, send)
        sim.run(until=0.003)
        assert sink.packets == []
        assert link.dropped_link_down >= 1
        # After convergence the entry is cleared: no_route, not a dead-wire drop.
        dead_wire_drops = link.dropped_link_down
        sim.run(until=0.01)
        sim.schedule_at(0.011, send)
        sim.run(until=0.02)
        assert link.dropped_link_down == dead_wire_drops
        assert network.switches[rack].dropped_no_route >= 1

    def test_install_applies_detection_time_snapshot(self):
        """Fault and recovery inside one lag window: the fault's install
        applies the broken snapshot, the recovery's install restores."""
        sim, network = build_network(convergence_delay_s=DELAY)
        before = full_tables(network)
        rack = network.topology.host_rack("h0")
        uplink = sorted(
            a for a in network.topology.graph.neighbors(rack) if a.startswith("agg")
        )[0]

        def fail():
            network.set_link_state(rack, uplink, up=False)
            network.recompute_routes()

        def recover():
            network.set_link_state(rack, uplink, up=True)
            network.recompute_routes()

        sim.schedule_at(0.001, fail)
        sim.schedule_at(0.002, recover)  # recovery detected before install 1 lands
        sim.run(until=0.001 + DELAY + 0.0005)
        # Install 1 (broken snapshot) has landed; the fabric avoids the
        # link even though it is physically up again, and the routing
        # table records which failure set it was computed around.
        assert network.routing_table.failed_edges == frozenset(
            {frozenset((rack, uplink))}
        )
        assert any(
            uplink not in hops
            for hops in network.switches[rack].unicast_next_hops().values()
        )
        sim.run()
        assert full_tables(network) == before
        assert network.routing_table.failed_edges == frozenset()
        assert network.routing_table.failed_nodes == frozenset()
        assert network.route_installs == 2

    def test_stale_epoch_never_overwrites_fresher_install(self):
        sim, network = build_network(convergence_delay_s=DELAY)
        rack = network.topology.host_rack("h0")
        uplink = sorted(
            a for a in network.topology.graph.neighbors(rack) if a.startswith("agg")
        )[0]
        network.set_link_state(rack, uplink, up=False)
        healthy_snapshot = (frozenset(), frozenset())
        broken_snapshot = (frozenset({frozenset((rack, uplink))}), frozenset())
        # Epoch 2 (broken) lands first; the out-of-order epoch 1 (healthy)
        # must be discarded, not installed over it.
        network._route_epoch = 2
        network._install_converged_routes(2, *broken_snapshot, None)
        tables_after_fresh = full_tables(network)
        installs = network.route_installs
        network._install_converged_routes(1, *healthy_snapshot, None)
        assert full_tables(network) == tables_after_fresh
        assert network.route_installs == installs

    def test_jitter_draws_are_seeded(self):
        """Equally seeded networks converge at identical (jittered) times."""
        outcomes = []
        for _ in range(2):
            sim, network = build_network(
                seed=5, convergence_delay_s=DELAY, convergence_jitter=0.5
            )
            rack = network.topology.host_rack("h0")
            uplink = sorted(
                a for a in network.topology.graph.neighbors(rack)
                if a.startswith("agg")
            )[0]
            times = []

            def fail(network=network, times=times):
                network.set_link_state(rack, uplink, up=False)
                network.recompute_routes(
                    on_installed=lambda _c, sim=sim, times=times: times.append(sim.now)
                )

            sim.schedule_at(0.001, fail)
            sim.run()
            outcomes.append(tuple(times))
        assert outcomes[0] == outcomes[1]
        assert len(outcomes[0]) == 1
        # Jitter stretched the lag beyond the base delay.
        assert outcomes[0][0] > 0.001 + DELAY

    def test_run_ending_before_install_leaves_it_pending(self):
        sim, network = build_network(convergence_delay_s=DELAY)
        rack = network.topology.host_rack("h0")
        uplink = sorted(
            a for a in network.topology.graph.neighbors(rack) if a.startswith("agg")
        )[0]
        before = full_tables(network)
        network.set_link_state(rack, uplink, up=False)
        network.recompute_routes()
        sim.run(until=DELAY / 10)
        assert network.pending_route_installs == 1
        assert full_tables(network) == before
