"""Tests for ECN/PCN marking and gray-failure path-loss detection.

Covers the ISSUE satellites: no marks below threshold, CE set above it,
EWMA hysteresis (marking persists briefly after a burst drains), marking
wired into switch queues but never host NICs, and gray detection flipping
the straggler policy's weights (lossy receivers detached, the cleanest one
never).
"""

from __future__ import annotations

import pytest

from repro.core.straggler import PathLossEstimator, StragglerPolicy
from repro.network.network import Network, NetworkConfig
from repro.network.packet import Packet, make_control_packet
from repro.network.queues import DropTailQueue, EcnMarker, TrimmingQueue
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def data_packet(flow_id=0):
    return Packet(protocol="t", src=0, dst=1, size_bytes=1500, flow_id=flow_id)


class TestEcnMarker:
    def test_no_marks_below_threshold(self):
        marker = EcnMarker(threshold_packets=4)
        for depth in (0, 1, 2, 3):
            packet = marker.maybe_mark(data_packet(), depth)
            assert not packet.ce
        assert marker.marks == 0

    def test_ce_set_at_and_above_threshold(self):
        marker = EcnMarker(threshold_packets=4)
        assert marker.maybe_mark(data_packet(), 4).ce
        assert marker.maybe_mark(data_packet(), 10).ce
        assert marker.marks == 2

    def test_marking_copies_do_not_mutate_original(self):
        marker = EcnMarker(threshold_packets=1)
        original = data_packet()
        marked = marker.maybe_mark(original, 5)
        assert marked.ce and not original.ce
        assert marked.packet_id == original.packet_id

    def test_already_marked_packet_not_recounted(self):
        marker = EcnMarker(threshold_packets=1)
        marked = marker.maybe_mark(data_packet(), 5)
        again = marker.maybe_mark(marked, 5)
        assert again is marked
        assert marker.marks == 1

    def test_ewma_hysteresis_keeps_marking_after_burst_drains(self):
        # High EWMA weight so a sustained burst saturates the average; once
        # the instantaneous depth collapses to 0, the EWMA is still above the
        # threshold and marking continues -- the PCN-style hysteresis.
        marker = EcnMarker(threshold_packets=8, ewma_weight=0.1)
        for _ in range(50):
            marker.observe(10)
        assert marker.ewma_depth > 9
        packet = marker.maybe_mark(data_packet(), 0)
        assert packet.ce  # instantaneous depth 0, EWMA still over threshold
        # The EWMA decays as empty samples accumulate; marking stops.
        for _ in range(30):
            marker.observe(0)
        assert not marker.maybe_mark(data_packet(), 0).ce

    def test_validation(self):
        with pytest.raises(ValueError):
            EcnMarker(threshold_packets=0)
        with pytest.raises(ValueError):
            EcnMarker(threshold_packets=4, ewma_weight=0.0)
        with pytest.raises(ValueError):
            EcnMarker(threshold_packets=4, ewma_threshold_packets=0.0)


class TestQueueMarking:
    def test_droptail_marks_data_over_threshold(self):
        queue = DropTailQueue(capacity_packets=50, marker=EcnMarker(threshold_packets=2))
        queued = [queue.enqueue(data_packet(i)) for i in range(5)]
        # Depth before append: 0, 1 below threshold; 2, 3, 4 at/above.
        assert [p.ce for p in queued] == [False, False, True, True, True]
        assert queue.ecn_marked == 3

    def test_droptail_without_marker_never_marks(self):
        queue = DropTailQueue(capacity_packets=5)
        assert not queue.enqueue(data_packet()).ce
        assert queue.ecn_marked == 0

    def test_droptail_control_packets_not_marked(self):
        queue = DropTailQueue(capacity_packets=50, marker=EcnMarker(threshold_packets=1))
        for _ in range(5):
            queue.enqueue(data_packet())
        control = queue.enqueue(make_control_packet("t", 0, 1, None))
        assert not control.ce

    def test_trimming_queue_marks_and_trimmed_packet_keeps_ce(self):
        queue = TrimmingQueue(data_capacity_packets=2, marker=EcnMarker(threshold_packets=2))
        queue.enqueue(data_packet(1))
        queue.enqueue(data_packet(2))
        # Data queue full: depth 2 >= threshold, so the overflow packet is
        # marked *and then* trimmed -- the surviving header carries CE back.
        overflow = queue.enqueue(data_packet(3))
        assert overflow.trimmed
        assert overflow.ce
        assert queue.ecn_marked == 1
        assert queue.trimmed_packets == 1


class TestNetworkWiring:
    def build(self, **overrides):
        sim = Simulator()
        topology = FatTreeTopology(4)
        config = NetworkConfig(**overrides)
        return Network(sim, topology, config, RandomStreams(1))

    def test_disabled_by_default(self):
        network = self.build()
        assert not network.config.ecn_enabled
        for switch in network.switches.values():
            for port in switch.ports.values():
                assert port.queue.marker is None
        assert network.total_ecn_marked == 0

    def test_enabled_marks_switch_queues_only(self):
        network = self.build(ecn_enabled=True, ecn_threshold_packets=3)
        markers = [
            port.queue.marker
            for switch in network.switches.values()
            for port in switch.ports.values()
        ]
        assert markers and all(m is not None for m in markers)
        assert all(m.threshold_packets == 3 for m in markers)
        # Each queue owns its own marker state (per-port EWMA/counters).
        assert len({id(m) for m in markers}) == len(markers)
        # Host NICs never mark: the fabric, not the endpoint, signals.
        for host in network.hosts:
            assert getattr(host.nic.queue, "marker", None) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(ecn_enabled=True, ecn_threshold_packets=0)
        with pytest.raises(ValueError):
            NetworkConfig(ecn_enabled=True, ecn_ewma_weight=1.5)


class TestPathLossEstimator:
    def test_clean_in_order_stream_estimates_zero(self):
        estimator = PathLossEstimator(window_symbols=8)
        for sequence in range(1, 30):
            assert estimator.on_symbol(sequence) == 0
        assert estimator.loss_estimate == 0.0
        assert estimator.windows_closed >= 3

    def test_gap_detected_as_missing(self):
        estimator = PathLossEstimator(window_symbols=100)
        estimator.on_symbol(1)
        assert estimator.on_symbol(2) == 0
        assert estimator.on_symbol(5) == 2  # 3 and 4 never arrived

    def test_reordering_is_not_loss(self):
        # 1, 3, 2: the gap 3 exposes one "missing" symbol, but 2's late
        # arrival repairs it -- the closed window must estimate zero loss.
        estimator = PathLossEstimator(window_symbols=4, ewma_weight=1.0)
        estimator.on_symbol(1)
        estimator.on_symbol(3)
        estimator.on_symbol(2)
        estimator.on_symbol(4)
        estimator.on_symbol(5)
        assert estimator.windows_closed == 1
        assert estimator.loss_estimate == 0.0

    def test_sustained_loss_converges_to_rate(self):
        # Every 4th symbol missing: 25% loss.
        estimator = PathLossEstimator(window_symbols=16, ewma_weight=0.5)
        for sequence in range(1, 200):
            if sequence % 4 != 0:
                estimator.on_symbol(sequence)
        assert estimator.loss_estimate == pytest.approx(0.25, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            PathLossEstimator(window_symbols=0)
        with pytest.raises(ValueError):
            PathLossEstimator(ewma_weight=1.5)


class TestFindLossy:
    POLICY = StragglerPolicy(loss_detection=True, loss_threshold=0.05)

    def test_detection_flips_weights(self):
        lossy = self.POLICY.find_lossy(
            {1: 0.0, 2: 0.20, 3: 0.01}, active_receivers={1, 2, 3}
        )
        assert lossy == {2}

    def test_disabled_policy_detects_nothing(self):
        policy = StragglerPolicy(loss_detection=False)
        assert policy.find_lossy({1: 0.9, 2: 0.9}, {1, 2}) == set()

    def test_unknown_receivers_count_as_clean(self):
        lossy = self.POLICY.find_lossy({2: 0.5}, active_receivers={1, 2})
        assert lossy == {2}

    def test_never_detaches_everyone(self):
        lossy = self.POLICY.find_lossy(
            {1: 0.30, 2: 0.20}, active_receivers={1, 2}
        )
        assert lossy == {1}  # the cleaner receiver (2) stays attached

    def test_single_receiver_never_detached(self):
        assert self.POLICY.find_lossy({1: 0.9}, {1}) == set()
