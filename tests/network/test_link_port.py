"""Tests for ports (serialisation) and links (propagation)."""

import pytest

from repro.network.link import Link, Port
from repro.network.node import Node
from repro.network.packet import Packet
from repro.network.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.utils.units import GBPS, MICROSECOND


class RecordingNode(Node):
    """A node that records packet arrival times."""

    def __init__(self, sim, node_id=0, name="sink"):
        super().__init__(sim, node_id, name)
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


def build_port(sim, sink, rate=1 * GBPS, delay=10 * MICROSECOND, capacity=100):
    link = Link(sim, sink, delay)
    return Port(sim, owner=sink, queue=DropTailQueue(capacity), rate_bps=rate, link=link)


def data_packet(size=1500):
    return Packet(protocol="t", src=0, dst=1, size_bytes=size)


class TestPortTiming:
    def test_single_packet_latency(self):
        sim = Simulator()
        sink = RecordingNode(sim)
        port = build_port(sim, sink)
        port.send(data_packet(1500))
        sim.run()
        # 12 us serialisation + 10 us propagation.
        assert sink.arrivals[0][0] == pytest.approx(22 * MICROSECOND)

    def test_back_to_back_packets_serialise_sequentially(self):
        sim = Simulator()
        sink = RecordingNode(sim)
        port = build_port(sim, sink)
        for _ in range(3):
            port.send(data_packet(1500))
        sim.run()
        times = [t for t, _ in sink.arrivals]
        assert times == pytest.approx([22e-6, 34e-6, 46e-6])

    def test_hop_count_incremented(self):
        sim = Simulator()
        sink = RecordingNode(sim)
        port = build_port(sim, sink)
        port.send(data_packet())
        sim.run()
        assert sink.arrivals[0][1].hops == 1

    def test_port_counters(self):
        sim = Simulator()
        sink = RecordingNode(sim)
        port = build_port(sim, sink)
        port.send(data_packet(1000))
        port.send(data_packet(500))
        sim.run()
        assert port.transmitted_packets == 2
        assert port.transmitted_bytes == 1500
        assert port.link.delivered_packets == 2

    def test_drop_reported_by_send(self):
        sim = Simulator()
        sink = RecordingNode(sim)
        port = build_port(sim, sink, capacity=1)
        # The first packet is dequeued immediately for serialisation; the
        # second occupies the single queue slot; the third must be dropped.
        assert port.send(data_packet()) is True
        assert port.send(data_packet()) is True
        assert port.send(data_packet()) is False

    def test_rejects_bad_rate(self):
        sim = Simulator()
        sink = RecordingNode(sim)
        link = Link(sim, sink, 0.0)
        with pytest.raises(ValueError):
            Port(sim, owner=sink, queue=DropTailQueue(), rate_bps=0, link=link)

    def test_rejects_negative_delay(self):
        sim = Simulator()
        sink = RecordingNode(sim)
        with pytest.raises(ValueError):
            Link(sim, sink, -1.0)

    def test_zero_delay_link(self):
        sim = Simulator()
        sink = RecordingNode(sim)
        port = build_port(sim, sink, delay=0.0)
        port.send(data_packet(1500))
        sim.run()
        assert sink.arrivals[0][0] == pytest.approx(12 * MICROSECOND)
