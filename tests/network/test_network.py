"""End-to-end tests of the assembled network (hosts + switches + routing)."""

import pytest

from repro.network.network import Network, NetworkConfig
from repro.network.packet import Packet
from repro.network.routing import RoutingMode
from repro.network.topology import FatTreeTopology
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.utils.units import MICROSECOND


class Sink:
    """A protocol endpoint that records deliveries."""

    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def handle_packet(self, packet):
        self.packets.append((self.sim.now, packet))


def build_network(seed=1, **config_overrides):
    sim = Simulator()
    topology = FatTreeTopology(4)
    config = NetworkConfig(**config_overrides)
    network = Network(sim, topology, config, RandomStreams(seed))
    return sim, network


class TestConstruction:
    def test_host_and_switch_counts(self):
        _, network = build_network()
        assert network.num_hosts == 16
        assert len(network.switches) == 20

    def test_host_lookup_by_name_and_id(self):
        _, network = build_network()
        host = network.host("h3")
        assert network.host(host.node_id) is host
        assert network.host_id("h3") == host.node_id

    def test_host_names_ordered_by_id(self):
        _, network = build_network()
        names = network.host_names
        assert names[0] == network.hosts[0].name
        assert len(names) == 16

    def test_invalid_switch_queue_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(switch_queue="magic")


class TestUnicastForwarding:
    def test_cross_pod_delivery_latency(self):
        sim, network = build_network()
        sink = Sink(sim)
        network.host("h15").register_protocol("test", sink)
        src = network.host("h0")
        src.send(Packet(protocol="test", src=src.node_id, dst=network.host_id("h15"),
                        size_bytes=1500))
        sim.run()
        assert len(sink.packets) == 1
        arrival_time, packet = sink.packets[0]
        # 6 hops x (12 us serialisation + 10 us propagation).
        assert arrival_time == pytest.approx(6 * 22 * MICROSECOND)
        assert packet.hops == 6

    def test_same_rack_delivery(self):
        sim, network = build_network()
        sink = Sink(sim)
        network.host("h1").register_protocol("test", sink)
        src = network.host("h0")
        src.send(Packet(protocol="test", src=src.node_id, dst=network.host_id("h1"),
                        size_bytes=1500))
        sim.run()
        assert sink.packets[0][1].hops == 2

    def test_unregistered_protocol_silently_dropped(self):
        sim, network = build_network()
        src = network.host("h0")
        src.send(Packet(protocol="nobody", src=src.node_id, dst=network.host_id("h2"),
                        size_bytes=1500))
        sim.run()
        assert network.host("h2").received_packets == 0

    def test_spraying_uses_multiple_core_switches(self):
        sim, network = build_network(routing_mode=RoutingMode.PACKET_SPRAY)
        sink = Sink(sim)
        network.host("h15").register_protocol("test", sink)
        src = network.host("h0")
        for _ in range(64):
            src.send(Packet(protocol="test", src=src.node_id, dst=network.host_id("h15"),
                            size_bytes=1500))
        sim.run()
        cores_used = {
            name for name, switch in network.switches.items()
            if name.startswith("core") and switch.forwarded_packets > 0
        }
        assert len(cores_used) >= 3

    def test_ecmp_flow_uses_single_path_per_flow(self):
        sim, network = build_network(routing_mode=RoutingMode.ECMP_FLOW)
        sink = Sink(sim)
        network.host("h15").register_protocol("test", sink)
        src = network.host("h0")
        for _ in range(64):
            src.send(Packet(protocol="test", src=src.node_id, dst=network.host_id("h15"),
                            size_bytes=1500, flow_id=77))
        sim.run()
        cores_used = {
            name for name, switch in network.switches.items()
            if name.startswith("core") and switch.forwarded_packets > 0
        }
        assert len(cores_used) == 1


class TestMulticastForwarding:
    def test_every_member_receives_one_copy(self):
        sim, network = build_network()
        sinks = {}
        receivers = ["h4", "h8", "h12"]
        for name in receivers:
            sinks[name] = Sink(sim)
            network.host(name).register_protocol("test", sinks[name])
        network.create_multicast_group(9, "h0", receivers)
        src = network.host("h0")
        src.send(Packet(protocol="test", src=src.node_id, dst=None, multicast_group=9,
                        size_bytes=1500))
        sim.run()
        assert all(len(sinks[name].packets) == 1 for name in receivers)

    def test_non_member_does_not_receive(self):
        sim, network = build_network()
        member_sink, outsider_sink = Sink(sim), Sink(sim)
        network.host("h4").register_protocol("test", member_sink)
        network.host("h5").register_protocol("test", outsider_sink)
        network.create_multicast_group(9, "h0", ["h4"])
        src = network.host("h0")
        src.send(Packet(protocol="test", src=src.node_id, dst=None, multicast_group=9,
                        size_bytes=1500))
        sim.run()
        assert len(member_sink.packets) == 1
        assert len(outsider_sink.packets) == 0

    def test_group_removal_stops_delivery(self):
        sim, network = build_network()
        sink = Sink(sim)
        network.host("h4").register_protocol("test", sink)
        network.create_multicast_group(9, "h0", ["h4"])
        network.remove_multicast_group(9)
        src = network.host("h0")
        src.send(Packet(protocol="test", src=src.node_id, dst=None, multicast_group=9,
                        size_bytes=1500))
        sim.run()
        assert len(sink.packets) == 0

    def test_duplicate_group_id_rejected(self):
        _, network = build_network()
        network.create_multicast_group(9, "h0", ["h4"])
        with pytest.raises(ValueError):
            network.create_multicast_group(9, "h1", ["h5"])

    def test_group_lookup(self):
        _, network = build_network()
        group = network.create_multicast_group(9, "h0", ["h4", "h8"])
        assert network.multicast_group(9) is group


class TestAggregateStatistics:
    def test_trim_counters_aggregate(self):
        sim, network = build_network(data_queue_capacity_packets=2)
        sink = Sink(sim)
        network.host("h15").register_protocol("test", sink)
        # Three senders converge on one receiver link: the shallow data queue
        # at the receiver's rack switch must trim.
        senders = ["h0", "h4", "h8"]
        for name in senders:
            src = network.host(name)
            for _ in range(100):
                src.send(Packet(protocol="test", src=src.node_id,
                                dst=network.host_id("h15"), size_bytes=1500))
        sim.run()
        assert network.total_trimmed_packets > 0
        assert network.total_forwarded_packets > 0
        trimmed_deliveries = sum(1 for _, p in sink.packets if p.trimmed)
        full_deliveries = sum(1 for _, p in sink.packets if not p.trimmed)
        assert trimmed_deliveries > 0
        assert full_deliveries > 0
        # Trimming never loses a packet outright: every header still arrives.
        assert trimmed_deliveries + full_deliveries == 300
