"""Tests for multicast tree construction and group tables."""

import pytest

from repro.network.multicast import build_multicast_tree, group_table_entries
from repro.network.routing import RoutingTable
from repro.network.topology import FatTreeTopology


@pytest.fixture(scope="module")
def fabric():
    topology = FatTreeTopology(4)
    return topology, RoutingTable(topology)


class TestTreeConstruction:
    def test_tree_reaches_every_receiver(self, fabric):
        topology, routing = fabric
        receivers = ["h4", "h8", "h15"]
        group = build_multicast_tree(topology, routing, 1, "h0", receivers)
        children = {}
        for parent, child in group.tree_edges:
            children.setdefault(parent, []).append(child)
        # Walk the tree from the source; every receiver must be reachable.
        reached = set()
        frontier = ["h0"]
        while frontier:
            node = frontier.pop()
            reached.add(node)
            frontier.extend(children.get(node, []))
        assert set(receivers) <= reached

    def test_tree_edges_exist_in_topology(self, fabric):
        topology, routing = fabric
        group = build_multicast_tree(topology, routing, 2, "h0", ["h5", "h9"])
        for parent, child in group.tree_edges:
            assert topology.graph.has_edge(parent, child)

    def test_single_receiver_tree_is_a_path(self, fabric):
        topology, routing = fabric
        group = build_multicast_tree(topology, routing, 3, "h0", ["h15"])
        assert len(group.tree_edges) == 6

    def test_shared_edges_not_duplicated(self, fabric):
        topology, routing = fabric
        # Two receivers in the same remote rack share most of the path.
        group = build_multicast_tree(topology, routing, 4, "h0", ["h14", "h15"])
        assert len(group.tree_edges) < 2 * 6

    def test_different_groups_can_use_different_trees(self, fabric):
        topology, routing = fabric
        trees = {
            build_multicast_tree(topology, routing, group_id, "h0", ["h15"]).tree_edges
            for group_id in range(10)
        }
        assert len(trees) >= 2

    def test_rejects_bad_receiver_sets(self, fabric):
        topology, routing = fabric
        with pytest.raises(ValueError):
            build_multicast_tree(topology, routing, 1, "h0", [])
        with pytest.raises(ValueError):
            build_multicast_tree(topology, routing, 1, "h0", ["h1", "h1"])
        with pytest.raises(ValueError):
            build_multicast_tree(topology, routing, 1, "h0", ["h0"])

    def test_num_receivers(self, fabric):
        topology, routing = fabric
        group = build_multicast_tree(topology, routing, 5, "h0", ["h4", "h8"])
        assert group.num_receivers == 2


class TestGroupTable:
    def test_entries_cover_all_tree_parents(self, fabric):
        topology, routing = fabric
        group = build_multicast_tree(topology, routing, 6, "h0", ["h4", "h8", "h12"])
        entries = group_table_entries(group)
        parents = {parent for parent, _ in group.tree_edges}
        assert set(entries) == parents

    def test_children_are_sorted_and_unique(self, fabric):
        topology, routing = fabric
        group = build_multicast_tree(topology, routing, 7, "h0", ["h4", "h8", "h12"])
        for children in group_table_entries(group).values():
            assert list(children) == sorted(set(children))
