"""Tests for the queue disciplines (drop-tail and NDP-style trimming)."""

import pytest

from repro.network.packet import Packet, PacketKind, make_control_packet
from repro.network.queues import DropTailQueue, TrimmingQueue


def data_packet(flow_id=0):
    return Packet(protocol="t", src=0, dst=1, size_bytes=1500, flow_id=flow_id)


class TestDropTailQueue:
    def test_fifo_order(self):
        queue = DropTailQueue(capacity_packets=10)
        first, second = data_packet(1), data_packet(2)
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second
        assert queue.dequeue() is None

    def test_drops_when_full(self):
        queue = DropTailQueue(capacity_packets=2)
        assert queue.enqueue(data_packet()) is not None
        assert queue.enqueue(data_packet()) is not None
        assert queue.enqueue(data_packet()) is None
        assert queue.dropped_packets == 1
        assert len(queue) == 2

    def test_queued_bytes(self):
        queue = DropTailQueue()
        queue.enqueue(data_packet())
        queue.enqueue(data_packet())
        assert queue.queued_bytes == 3000

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity_packets=0)


class TestTrimmingQueue:
    def test_data_packets_accepted_up_to_capacity(self):
        queue = TrimmingQueue(data_capacity_packets=3)
        for _ in range(3):
            accepted = queue.enqueue(data_packet())
            assert accepted is not None and not accepted.trimmed
        assert queue.data_queue_length == 3
        assert queue.trimmed_packets == 0

    def test_overflow_trims_instead_of_dropping(self):
        queue = TrimmingQueue(data_capacity_packets=2)
        for _ in range(2):
            queue.enqueue(data_packet())
        overflow = queue.enqueue(data_packet())
        assert overflow is not None
        assert overflow.trimmed
        assert overflow.size_bytes == overflow.header_bytes
        assert queue.trimmed_packets == 1
        assert queue.dropped_packets == 0
        assert queue.priority_queue_length == 1

    def test_control_packets_go_to_priority_queue(self):
        queue = TrimmingQueue()
        queue.enqueue(make_control_packet("t", 0, 1, None))
        assert queue.priority_queue_length == 1
        assert queue.data_queue_length == 0

    def test_priority_served_before_data(self):
        queue = TrimmingQueue()
        data = data_packet()
        control = make_control_packet("t", 0, 1, None)
        queue.enqueue(data)
        queue.enqueue(control)
        assert queue.dequeue() is control
        assert queue.dequeue() is data

    def test_headers_dropped_when_priority_queue_full(self):
        queue = TrimmingQueue(data_capacity_packets=1, header_capacity_packets=2)
        queue.enqueue(data_packet())
        for _ in range(2):
            queue.enqueue(data_packet())  # trimmed into the priority queue
        result = queue.enqueue(data_packet())  # priority queue now full
        assert result is None
        assert queue.dropped_headers == 1
        assert queue.dropped_packets == 1

    def test_starvation_guard_serves_data_eventually(self):
        queue = TrimmingQueue(data_service_ratio=3)
        data = data_packet()
        queue.enqueue(data)
        for _ in range(10):
            queue.enqueue(make_control_packet("t", 0, 1, None))
        served = [queue.dequeue() for _ in range(5)]
        assert data in served

    def test_len_counts_both_queues(self):
        queue = TrimmingQueue()
        queue.enqueue(data_packet())
        queue.enqueue(make_control_packet("t", 0, 1, None))
        assert len(queue) == 2
        assert queue.queued_bytes > 0

    def test_dequeue_empty_returns_none(self):
        assert TrimmingQueue().dequeue() is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TrimmingQueue(data_capacity_packets=0)
        with pytest.raises(ValueError):
            TrimmingQueue(header_capacity_packets=0)
        with pytest.raises(ValueError):
            TrimmingQueue(data_service_ratio=0)
