"""Tests for routing tables and next-hop selection."""

import random

import pytest

from repro.network.routing import RoutingMode, RoutingTable, select_next_hop, stable_hash
from repro.network.topology import FatTreeTopology


@pytest.fixture(scope="module")
def fattree_routing():
    topology = FatTreeTopology(4)
    return topology, RoutingTable(topology)


class TestRoutingTable:
    def test_edge_switch_single_hop_to_local_host(self, fattree_routing):
        topology, table = fattree_routing
        rack = topology.host_rack("h0")
        assert table.next_hops(rack, "h0") == ("h0",)

    def test_edge_switch_has_multiple_uplinks_to_remote_host(self, fattree_routing):
        topology, table = fattree_routing
        rack = topology.host_rack("h0")
        remote = "h15"
        hops = table.next_hops(rack, remote)
        assert len(hops) == 2  # k/2 aggregation switches
        assert all(hop.startswith("agg") for hop in hops)

    def test_unknown_route_raises(self, fattree_routing):
        _, table = fattree_routing
        with pytest.raises(KeyError):
            table.next_hops("edge0_0", "not-a-host")

    def test_path_is_valid_shortest_path(self, fattree_routing):
        topology, table = fattree_routing
        path = table.path("h0", "h15")
        assert path[0] == "h0" and path[-1] == "h15"
        for a, b in zip(path, path[1:]):
            assert topology.graph.has_edge(a, b)
        # Inter-pod paths in a fat-tree have 6 edges (host-edge-agg-core-agg-edge-host).
        assert len(path) == 7

    def test_path_same_host(self, fattree_routing):
        _, table = fattree_routing
        assert table.path("h0", "h0") == ["h0"]

    def test_different_tie_breaks_can_take_different_paths(self, fattree_routing):
        _, table = fattree_routing
        paths = {tuple(table.path("h0", "h15", tie_break=t)) for t in range(8)}
        assert len(paths) >= 2

    def test_intra_rack_path_length(self, fattree_routing):
        _, table = fattree_routing
        path = table.path("h0", "h1")
        assert len(path) == 3  # host - edge - host


class TestRoutingRebuild:
    def test_rebuild_without_failures_restores_original_table(self):
        topology = FatTreeTopology(4)
        table = RoutingTable(topology)
        rack = topology.host_rack("h0")
        original = {
            (switch, host): table.next_hops_or_empty(switch, host)
            for switch in topology.switches
            for host in topology.hosts
        }
        table.rebuild(failed_edges=[(rack, "agg0_0")], failed_nodes=["core0"])
        assert table.next_hops(rack, "h15") == ("agg0_1",)
        table.rebuild()
        restored = {
            (switch, host): table.next_hops_or_empty(switch, host)
            for switch in topology.switches
            for host in topology.hosts
        }
        assert restored == original

    def test_failed_edge_removes_hop(self):
        topology = FatTreeTopology(4)
        table = RoutingTable(topology)
        rack = topology.host_rack("h0")
        assert len(table.next_hops(rack, "h15")) == 2
        table.rebuild(failed_edges=[(rack, "agg0_0")])
        assert table.next_hops(rack, "h15") == ("agg0_1",)

    def test_failed_node_has_no_entries_and_is_avoided(self):
        topology = FatTreeTopology(4)
        table = RoutingTable(topology, failed_nodes=["agg0_0"])
        assert table.next_hops_or_empty("agg0_0", "h15") == ()
        rack = topology.host_rack("h0")
        assert table.next_hops(rack, "h15") == ("agg0_1",)

    def test_unreachable_host_yields_empty_set_not_raise(self):
        topology = FatTreeTopology(4)
        rack = topology.host_rack("h0")
        table = RoutingTable(topology, failed_edges=[(rack, "h0")])
        assert table.next_hops_or_empty(rack, "h0") == ()

    def test_path_avoids_failed_equipment(self):
        topology = FatTreeTopology(4)
        table = RoutingTable(topology, failed_nodes=["agg0_0"])
        for tie_break in range(4):
            assert "agg0_0" not in table.path("h0", "h15", tie_break=tie_break)

    def test_path_raises_for_host_with_dead_uplink(self):
        topology = FatTreeTopology(4)
        rack = topology.host_rack("h0")
        table = RoutingTable(topology, failed_edges=[(rack, "h0")])
        with pytest.raises(KeyError):
            table.path("h0", "h15")


class TestNextHopSelection:
    def test_single_hop_shortcut(self):
        assert select_next_hop(RoutingMode.PACKET_SPRAY, ("a",), 1, 2, 3, 4) == "a"

    def test_empty_hops_rejected(self):
        with pytest.raises(ValueError):
            select_next_hop(RoutingMode.ECMP_FLOW, (), 1, 2, 3, 4)

    def test_single_path_mode_always_first(self):
        hops = ("a", "b", "c")
        for draw in range(10):
            assert select_next_hop(RoutingMode.SINGLE_PATH, hops, draw, 0, 1, draw) == "a"

    def test_ecmp_consistent_per_flow(self):
        hops = ("a", "b", "c", "d")
        choices = {
            select_next_hop(RoutingMode.ECMP_FLOW, hops, 42, 1, 2, draw) for draw in range(20)
        }
        assert len(choices) == 1

    def test_ecmp_spreads_across_flows(self):
        hops = ("a", "b", "c", "d")
        choices = {
            select_next_hop(RoutingMode.ECMP_FLOW, hops, flow, 1, 2, 0) for flow in range(200)
        }
        assert choices == set(hops)

    def test_spray_uses_draw(self):
        hops = ("a", "b", "c", "d")
        rng = random.Random(0)
        counts = {hop: 0 for hop in hops}
        for _ in range(400):
            hop = select_next_hop(RoutingMode.PACKET_SPRAY, hops, 7, 1, 2, rng.getrandbits(30))
            counts[hop] += 1
        assert min(counts.values()) > 50  # roughly uniform

    def test_stable_hash_deterministic(self):
        assert stable_hash(1, 2, 3) == stable_hash(1, 2, 3)
        assert stable_hash(1, 2, 3) != stable_hash(3, 2, 1)
