"""Tests for the packet model."""

import pytest

from repro.network.packet import DEFAULT_HEADER_BYTES, Packet, PacketKind, make_control_packet


def make_data_packet(**overrides):
    defaults = dict(protocol="test", src=0, dst=1, size_bytes=1500)
    defaults.update(overrides)
    return Packet(**defaults)


class TestPacketConstruction:
    def test_defaults(self):
        packet = make_data_packet()
        assert packet.kind is PacketKind.DATA
        assert not packet.priority
        assert not packet.trimmed
        assert packet.header_bytes == DEFAULT_HEADER_BYTES
        assert packet.payload_bytes == 1500 - DEFAULT_HEADER_BYTES

    def test_unique_ids(self):
        ids = {make_data_packet().packet_id for _ in range(100)}
        assert len(ids) == 100

    def test_requires_destination_or_group(self):
        with pytest.raises(ValueError):
            Packet(protocol="t", src=0, dst=None, size_bytes=100)

    def test_multicast_flag(self):
        packet = Packet(protocol="t", src=0, dst=None, multicast_group=9, size_bytes=100)
        assert packet.is_multicast

    def test_size_below_header_rejected(self):
        with pytest.raises(ValueError):
            make_data_packet(size_bytes=10)


class TestTrimming:
    def test_trim_produces_header_only_priority_packet(self):
        original = make_data_packet()
        trimmed = original.trim()
        assert trimmed.size_bytes == original.header_bytes
        assert trimmed.kind is PacketKind.HEADER
        assert trimmed.trimmed
        assert trimmed.priority
        assert trimmed.payload_bytes == 0
        # Protocol metadata survives trimming.
        assert trimmed.payload is original.payload
        assert trimmed.src == original.src and trimmed.dst == original.dst

    def test_trim_does_not_modify_original(self):
        original = make_data_packet()
        original.trim()
        assert original.size_bytes == 1500
        assert not original.trimmed

    def test_only_data_packets_can_be_trimmed(self):
        control = make_control_packet("t", 0, 1, payload=None)
        with pytest.raises(ValueError):
            control.trim()


class TestReplication:
    def test_copy_for_replication_gets_new_id(self):
        packet = make_data_packet()
        copy = packet.copy_for_replication()
        assert copy.packet_id != packet.packet_id
        assert copy.size_bytes == packet.size_bytes
        assert copy.payload is packet.payload


class TestControlPackets:
    def test_control_packet_is_priority(self):
        packet = make_control_packet("t", 3, 4, payload={"x": 1}, flow_id=9)
        assert packet.kind is PacketKind.CONTROL
        assert packet.priority
        assert packet.flow_id == 9
        assert packet.payload == {"x": 1}
        assert packet.size_bytes == DEFAULT_HEADER_BYTES
