"""Tests for topology generators."""

import pytest

from repro.network.topology import (
    FatTreeTopology,
    LeafSpineTopology,
    NodeRole,
    Topology,
    single_rack,
)


class TestFatTree:
    @pytest.mark.parametrize("k,hosts,switches", [(2, 2, 5), (4, 16, 20), (6, 54, 45)])
    def test_node_counts(self, k, hosts, switches):
        topo = FatTreeTopology(k)
        assert topo.num_hosts == hosts == k ** 3 // 4
        assert len(topo.switches) == switches == 5 * k * k // 4

    def test_host_degree_is_one(self):
        topo = FatTreeTopology(4)
        for host in topo.hosts:
            assert topo.graph.degree[host] == 1

    def test_switch_degree_is_k(self):
        topo = FatTreeTopology(4)
        for switch in topo.switches:
            assert topo.graph.degree[switch] == 4

    def test_rejects_odd_or_small_k(self):
        with pytest.raises(ValueError):
            FatTreeTopology(3)
        with pytest.raises(ValueError):
            FatTreeTopology(0)

    def test_roles_assigned(self):
        topo = FatTreeTopology(4)
        roles = set(topo.roles.values())
        assert roles == {NodeRole.HOST, NodeRole.EDGE, NodeRole.AGGREGATION, NodeRole.CORE}

    def test_with_at_least_hosts(self):
        topo = FatTreeTopology.with_at_least_hosts(250)
        assert topo.k == 10
        assert topo.num_hosts == 250

    def test_host_rack_and_rackmates(self):
        topo = FatTreeTopology(4)
        rack = topo.host_rack("h0")
        assert topo.roles[rack] is NodeRole.EDGE
        rackmates = topo.hosts_in_same_rack("h0")
        assert "h0" in rackmates
        assert len(rackmates) == 2  # k/2 hosts per edge switch

    def test_host_rack_rejects_switch(self):
        topo = FatTreeTopology(4)
        with pytest.raises(KeyError):
            topo.host_rack("core0")


class TestLeafSpine:
    def test_counts(self):
        topo = LeafSpineTopology(num_leaves=4, num_spines=2, hosts_per_leaf=8)
        assert topo.num_hosts == 32
        assert len(topo.switches) == 6

    def test_every_leaf_connects_to_every_spine(self):
        topo = LeafSpineTopology(3, 2, 4)
        for leaf_index in range(3):
            neighbours = set(topo.graph.neighbors(f"leaf{leaf_index}"))
            assert {"spine0", "spine1"} <= neighbours

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            LeafSpineTopology(0, 1, 1)


class TestSingleRackAndValidation:
    def test_single_rack(self):
        topo = single_rack(6)
        assert topo.num_hosts == 6
        assert len(topo.switches) == 1

    def test_single_rack_too_small(self):
        with pytest.raises(ValueError):
            single_rack(1)

    def test_validate_rejects_disconnected(self):
        topo = Topology("broken")
        topo.add_node("a", NodeRole.HOST)
        topo.add_node("b", NodeRole.HOST)
        with pytest.raises(ValueError):
            topo.validate()

    def test_validate_rejects_multihomed_host(self):
        topo = Topology("multihomed")
        topo.add_node("s1", NodeRole.EDGE)
        topo.add_node("s2", NodeRole.EDGE)
        topo.add_node("h", NodeRole.HOST)
        topo.add_link("s1", "s2")
        topo.add_link("h", "s1")
        topo.add_link("h", "s2")
        with pytest.raises(ValueError):
            topo.validate()

    def test_add_link_requires_existing_nodes(self):
        topo = Topology("t")
        topo.add_node("a", NodeRole.HOST)
        with pytest.raises(KeyError):
            topo.add_link("a", "missing")
