"""Unit coverage for ReceiverCore's public completion-handshake surface."""

from repro.core.config import PolyraptorConfig
from repro.core.packets import DoneAckPayload, SymbolPayload
from repro.protocol.receiver import ReceiverCore


def _core(expected_senders):
    return ReceiverCore(
        config=PolyraptorConfig(),
        session_id=7,
        object_bytes=1408 * 10,
        local_host=1,
        expected_senders=expected_senders,
    )


def _ack(sender):
    return DoneAckPayload(session_id=7, sender_host=sender)


def test_done_fully_acked_requires_every_expected_sender():
    core = _core([0, 2, 4])
    assert not core.done_fully_acked
    core.on_done_ack(_ack(0))
    core.on_done_ack(_ack(2))
    assert not core.done_fully_acked
    core.on_done_ack(_ack(4))
    assert core.done_fully_acked


def test_duplicate_acks_are_idempotent():
    core = _core([0])
    core.on_done_ack(_ack(0))
    core.on_done_ack(_ack(0))
    assert core.done_fully_acked


def test_senders_discovered_mid_transfer_must_also_ack():
    """A sender that showed up via symbols (multicast, repair peers) joins
    the handshake even when it was never in expected_senders."""
    core = _core([0])
    core.on_symbol(
        SymbolPayload(
            session_id=7, sender_host=6, block_number=0, esi=0,
            block_symbol_count=10, num_blocks=1, object_bytes=1408 * 10,
            data=None, sequence=1,
        ),
        trimmed=False,
        now=0.001,
    )
    core.on_done_ack(_ack(0))
    assert not core.done_fully_acked
    core.on_done_ack(_ack(6))
    assert core.done_fully_acked
